//! Derive macros for the vendored `serde` shim.
//!
//! With no access to `syn`/`quote`, the derive input is parsed directly
//! from the raw token stream. Supported shapes — which cover every derived
//! type in this workspace — are:
//!
//! * structs with named fields,
//! * enums whose variants are unit variants or struct variants with named
//!   fields.
//!
//! Generated code targets the shim's value-tree model: structs become
//! `Value::Map`s keyed by field name, unit variants become `Value::Str`
//! and struct variants a single-entry map `{variant: {fields…}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<String>>,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extracts the field names from the braces of a struct body or struct
/// variant: `[attrs] [pub] name: Type, …`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next(); // pub(crate) etc.
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other}"),
            }
        };
        fields.push(name);
        // Skip the `: Type` part up to the next top-level comma.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let name = loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => panic!("unexpected token in enum body: {other}"),
            }
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                let _ = tokens.next();
                Some(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("tuple enum variants are not supported by the serde shim derive")
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant and the trailing comma.
        let mut depth = 0i32;
        while let Some(tok) = tokens.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    let _ = tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    let _ = tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    let _ = tokens.next();
                }
                _ => {
                    let _ = tokens.next();
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => panic!("unexpected token before struct/enum: {other}"),
            None => panic!("empty derive input"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    // Generic parameters are not needed by any derived type in this
    // workspace; reject them loudly rather than generating wrong code.
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("generic types are not supported by the serde shim derive")
        }
        other => panic!("expected braced body, got {other:?}"),
    };
    if kind == "struct" {
        Input::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        Input::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),"
                        ),
                        Some(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(vec![\
                                     (String::from(\"{vname}\"), ::serde::Value::Map(vec![{entries}]))\
                                 ]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    };
    out.parse()
        .expect("serde shim derive produced invalid Rust")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => return Ok({name}::{vname}),")
                })
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    v.fields.as_ref().map(|fields| {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!(
                            "if let Ok(inner) = value.get(\"{vname}\") {{\n\
                                 return Ok({name}::{vname} {{ {inits} }});\n\
                             }}",
                            inits = inits.join(", ")
                        )
                    })
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Str(tag) = value {{\n\
                             match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         {map_arms}\n\
                         Err(::serde::Error(format!(\n\
                             \"no variant of {name} matches {{value:?}}\"\n\
                         )))\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                map_arms = map_arms.join("\n")
            )
        }
    };
    out.parse()
        .expect("serde shim derive produced invalid Rust")
}
