//! A vendored, self-contained implementation of the subset of the
//! `crossbeam-epoch` API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency under the same crate name. It provides
//! tagged atomic pointers ([`Atomic`], [`Owned`], [`Shared`]) and
//! epoch-based memory reclamation ([`pin`], [`Guard::defer_destroy`]) with
//! the classic three-epoch scheme:
//!
//! * every participating thread registers a [`Local`] slot holding its
//!   current pinned epoch;
//! * retired garbage is stamped with the global epoch at flush time;
//! * the global epoch only advances when every pinned participant has
//!   observed the current epoch, so garbage stamped `e` may be reclaimed
//!   once the global epoch reaches `e + 2` — at that point no live guard
//!   can still hold a reference into it.
//!
//! The implementation favours obvious correctness over throughput: all
//! epoch bookkeeping uses `SeqCst`, and garbage is flushed to a global
//! mutex-protected list in amortised batches.

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::ptr;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of deferred destructions buffered thread-locally before they are
/// flushed to the global garbage list (and a collection cycle is attempted).
const FLUSH_THRESHOLD: usize = 64;

#[inline]
fn tag_mask<T>() -> usize {
    mem::align_of::<T>() - 1
}

#[inline]
fn decompose<T>(data: usize) -> (usize, usize) {
    (data & !tag_mask::<T>(), data & tag_mask::<T>())
}

// ---------------------------------------------------------------------------
// Deferred destruction
// ---------------------------------------------------------------------------

struct Deferred {
    call: unsafe fn(usize),
    data: usize,
}

// Garbage is executed by whichever thread triggers a collection; the
// structures retired through this shim are owned by the shared data
// structure, not by any one thread.
unsafe impl Send for Deferred {}

impl Deferred {
    unsafe fn execute(self) {
        unsafe { (self.call)(self.data) }
    }
}

unsafe fn drop_box<T>(raw: usize) {
    unsafe { drop(Box::from_raw(raw as *mut T)) }
}

// ---------------------------------------------------------------------------
// Global and per-thread epoch state
// ---------------------------------------------------------------------------

struct Local {
    /// `0` when not pinned, otherwise `(epoch << 1) | 1`.
    epoch: AtomicUsize,
    guard_count: Cell<usize>,
    buffer: UnsafeCell<Vec<Deferred>>,
}

// `Local` is shared with the registry only so the collector can read
// `epoch`; the `Cell`/`UnsafeCell` fields are touched exclusively by the
// owning thread.
unsafe impl Sync for Local {}
unsafe impl Send for Local {}

struct Global {
    epoch: AtomicUsize,
    registry: Mutex<Vec<Arc<Local>>>,
    garbage: Mutex<Vec<(usize, Vec<Deferred>)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(1),
        registry: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

struct Handle {
    local: Arc<Local>,
}

impl Drop for Handle {
    fn drop(&mut self) {
        // Flush whatever the dying thread still buffers, then unregister.
        flush_and_collect(&self.local);
        let mut registry = global().registry.lock().unwrap();
        registry.retain(|l| !Arc::ptr_eq(l, &self.local));
    }
}

thread_local! {
    static HANDLE: Handle = {
        let local = Arc::new(Local {
            epoch: AtomicUsize::new(0),
            guard_count: Cell::new(0),
            buffer: UnsafeCell::new(Vec::new()),
        });
        global().registry.lock().unwrap().push(Arc::clone(&local));
        Handle { local }
    };
}

/// Moves the thread-local buffer into the global garbage list (stamped with
/// the current global epoch), then attempts to advance the epoch and free
/// everything old enough to be unreachable.
fn flush_and_collect(local: &Local) {
    let g = global();
    let buffered = {
        let buffer = unsafe { &mut *local.buffer.get() };
        if buffer.is_empty() {
            None
        } else {
            Some(mem::take(buffer))
        }
    };

    let mut ready = Vec::new();
    {
        let mut garbage = g.garbage.lock().unwrap();
        if let Some(bag) = buffered {
            let stamp = g.epoch.load(Ordering::SeqCst);
            garbage.push((stamp, bag));
        }

        // Try to advance the global epoch: allowed only when every pinned
        // participant has observed the current epoch.
        let current = g.epoch.load(Ordering::SeqCst);
        let registry = g.registry.lock().unwrap();
        let all_current = registry.iter().all(|l| {
            let e = l.epoch.load(Ordering::SeqCst);
            e & 1 == 0 || e >> 1 == current
        });
        drop(registry);
        if all_current {
            let _ =
                g.epoch
                    .compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst);
        }

        let now = g.epoch.load(Ordering::SeqCst);
        garbage.retain_mut(|(stamp, bag)| {
            if stamp.wrapping_add(2) <= now {
                ready.append(bag);
                false
            } else {
                true
            }
        });
    }
    // Run destructors outside the locks: they may themselves retire more
    // garbage (nodes dropping child queues), which re-enters this module.
    for d in ready {
        unsafe { d.execute() };
    }
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// A handle that keeps the current thread pinned to an epoch.
///
/// While a guard exists, memory retired via [`Guard::defer_destroy`] by any
/// thread after the pin cannot be freed, so [`Shared`] pointers loaded
/// through it remain valid.
pub struct Guard {
    // A raw pointer (never a reference) into the owning thread's `Local`;
    // also makes `Guard` `!Send`/`!Sync`, which is load-bearing: `drop`
    // and `defer_destroy` mutate the `Cell`/`UnsafeCell` fields that only
    // the owning thread may touch.
    local: *const Local,
}

/// Pins the current thread and returns a guard for loading shared pointers.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        let local = &h.local;
        let count = local.guard_count.get();
        if count == 0 {
            let g = global();
            loop {
                let epoch = g.epoch.load(Ordering::SeqCst);
                local.epoch.store((epoch << 1) | 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == epoch {
                    break;
                }
                // The epoch moved between the read and our announcement:
                // re-announce so the collector never sees us lagging.
            }
        }
        local.guard_count.set(count + 1);
        Guard {
            local: Arc::as_ptr(local),
        }
    })
}

/// Returns a dummy guard that does not pin anything.
///
/// # Safety
///
/// Callers must guarantee exclusive access to the data structure (as in
/// `Drop` implementations); deferred destructions through this guard run
/// immediately.
pub unsafe fn unprotected() -> &'static Guard {
    // Private wrapper so only this null-local sentinel is `Sync`; a guard
    // with a null `local` owns no thread-local state, so sharing it is
    // harmless (deferred destructions through it run immediately).
    struct UnprotectedGuard(Guard);
    unsafe impl Sync for UnprotectedGuard {}
    static UNPROTECTED: UnprotectedGuard = UnprotectedGuard(Guard { local: ptr::null() });
    &UNPROTECTED.0
}

impl Guard {
    /// Schedules the pointed-to object to be dropped once no pinned thread
    /// can still hold a reference to it.
    ///
    /// # Safety
    ///
    /// `ptr` must be a valid, uniquely-retired pointer that is no longer
    /// reachable for threads pinning after this call.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let (raw, _) = decompose::<T>(ptr.data);
        if raw == 0 {
            return;
        }
        let deferred = Deferred {
            call: drop_box::<T>,
            data: raw,
        };
        if self.local.is_null() {
            // Unprotected guard: the caller asserts exclusive access.
            unsafe { deferred.execute() };
            return;
        }
        let local = unsafe { &*self.local };
        let should_flush = {
            let buffer = unsafe { &mut *local.buffer.get() };
            buffer.push(deferred);
            buffer.len() >= FLUSH_THRESHOLD
        };
        if should_flush {
            flush_and_collect(local);
        }
    }

    /// Flushes this thread's buffered garbage and attempts a collection.
    pub fn flush(&self) {
        if let Some(local) = unsafe { self.local.as_ref() } {
            flush_and_collect(local);
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(local) = unsafe { self.local.as_ref() } {
            let count = local.guard_count.get();
            local.guard_count.set(count - 1);
            if count == 1 {
                local.epoch.store(0, Ordering::SeqCst);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------------

/// Types that can be moved into an [`Atomic`] slot.
pub trait Pointer<T> {
    /// Consumes the pointer, returning its raw tagged representation.
    fn into_usize(self) -> usize;
    /// Rebuilds the pointer from a raw tagged representation.
    ///
    /// # Safety
    ///
    /// `data` must come from a matching [`Pointer::into_usize`] call.
    unsafe fn from_usize(data: usize) -> Self;
}

/// An owned, heap-allocated object that has not been published yet.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }

    /// Returns the same allocation with the tag bits set to `tag`.
    pub fn with_tag(self, tag: usize) -> Self {
        let data = self.into_usize();
        let (raw, _) = decompose::<T>(data);
        Owned {
            data: raw | (tag & tag_mask::<T>()),
            _marker: PhantomData,
        }
    }

    /// Publishes the allocation, converting it into a [`Shared`].
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.into_usize(),
            _marker: PhantomData,
        }
    }

    /// Converts into the underlying box, discarding the tag.
    pub fn into_box(self) -> Box<T> {
        let (raw, _) = decompose::<T>(self.into_usize());
        unsafe { Box::from_raw(raw as *mut T) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        if raw != 0 {
            unsafe { drop(Box::from_raw(raw as *mut T)) }
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let (raw, _) = decompose::<T>(self.data);
        unsafe { &*(raw as *const T) }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (raw, _) = decompose::<T>(self.data);
        unsafe { &mut *(raw as *mut T) }
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

/// A tagged pointer valid for the lifetime of a [`Guard`].
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> PartialEq for Shared<'g, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<'g, T> Eq for Shared<'g, T> {}

impl<'g, T> fmt::Debug for Shared<'g, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("raw", &(raw as *const T))
            .field("tag", &tag)
            .finish()
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the untagged pointer is null.
    pub fn is_null(&self) -> bool {
        let (raw, _) = decompose::<T>(self.data);
        raw == 0
    }

    /// The untagged raw pointer.
    pub fn as_raw(&self) -> *const T {
        let (raw, _) = decompose::<T>(self.data);
        raw as *const T
    }

    /// The tag stored in the unused low bits.
    pub fn tag(&self) -> usize {
        let (_, tag) = decompose::<T>(self.data);
        tag
    }

    /// The same pointer with the tag bits set to `tag`.
    pub fn with_tag(self, tag: usize) -> Self {
        let (raw, _) = decompose::<T>(self.data);
        Shared {
            data: raw | (tag & tag_mask::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and protected by the guard it was
    /// loaded through.
    pub unsafe fn deref(&self) -> &'g T {
        let (raw, _) = decompose::<T>(self.data);
        unsafe { &*(raw as *const T) }
    }

    /// Converts to a reference, or `None` when null.
    ///
    /// # Safety
    ///
    /// Same contract as [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        let (raw, _) = decompose::<T>(self.data);
        if raw == 0 {
            None
        } else {
            Some(unsafe { &*(raw as *const T) })
        }
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointed-to object.
    pub unsafe fn into_owned(self) -> Owned<T> {
        unsafe { Owned::from_usize(self.data) }
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_usize(self) -> usize {
        self.data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> From<*const T> for Shared<'g, T> {
    fn from(raw: *const T) -> Self {
        Shared {
            data: raw as usize,
            _marker: PhantomData,
        }
    }
}

/// The error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the slot actually held.
    pub current: Shared<'g, T>,
    /// The not-installed new value, handed back to the caller.
    pub new: P,
}

/// An atomic, taggable pointer to a heap allocation.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocates `value` and stores a pointer to it.
    pub fn new(value: T) -> Self {
        Atomic {
            data: AtomicUsize::new(Owned::new(value).into_usize()),
            _marker: PhantomData,
        }
    }

    /// An atomic null pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Loads the pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        unsafe { Shared::from_usize(self.data.load(ord)) }
    }

    /// Stores `new` into the slot. The previous pointee is *not* reclaimed.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Swaps the pointer, returning the previous value.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        unsafe { Shared::from_usize(self.data.swap(new.into_usize(), ord)) }
    }

    /// Installs `new` if the slot still holds `current`.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.into_usize(), new_data, success, failure)
        {
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            Err(actual) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(actual) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> Clone for Atomic<T> {
    fn clone(&self) -> Self {
        Atomic {
            data: AtomicUsize::new(self.data.load(Ordering::Relaxed)),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:#x})", self.data.load(Ordering::Relaxed))
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            data: AtomicUsize::new(owned.into_usize()),
            _marker: PhantomData,
        }
    }
}

impl<'g, T> From<Shared<'g, T>> for Atomic<T> {
    fn from(shared: Shared<'g, T>) -> Self {
        Atomic {
            data: AtomicUsize::new(shared.into_usize()),
            _marker: PhantomData,
        }
    }
}

impl<T> From<T> for Atomic<T> {
    fn from(value: T) -> Self {
        Atomic::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    #[test]
    fn tagging_roundtrip() {
        let guard = pin();
        let shared = Owned::new(42u64).into_shared(&guard);
        assert_eq!(shared.tag(), 0);
        let tagged = shared.with_tag(1);
        assert_eq!(tagged.tag(), 1);
        assert_eq!(unsafe { *tagged.deref() }, 42);
        assert_eq!(tagged.with_tag(0), shared);
        unsafe { guard.defer_destroy(shared) };
    }

    #[test]
    fn cas_returns_error_with_new_value() {
        let guard = pin();
        let slot: Atomic<u64> = Atomic::new(1);
        let current = slot.load(Ordering::Acquire, &guard);
        let stale = Shared::null();
        let err = slot
            .compare_exchange(
                stale,
                Owned::new(2),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .unwrap_err();
        assert_eq!(err.current, current);
        drop(err.new);
        unsafe { guard.defer_destroy(current) };
    }

    #[test]
    fn deferred_destruction_eventually_runs() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let n = 4 * FLUSH_THRESHOLD;
        for _ in 0..n {
            let guard = pin();
            let shared = Owned::new(Counted).into_shared(&guard);
            unsafe { guard.defer_destroy(shared) };
        }
        // Repeated pin/unpin lets the epoch advance; most garbage must be
        // reclaimed by now (everything but the last partial buffer).
        let guard = pin();
        guard.flush();
        drop(guard);
        let guard = pin();
        guard.flush();
        drop(guard);
        pin().flush();
        assert!(DROPS.load(Ordering::SeqCst) >= n - FLUSH_THRESHOLD);
    }

    #[test]
    fn unprotected_defer_runs_immediately() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        unsafe {
            let guard = unprotected();
            let shared = Owned::new(Counted).into_shared(guard);
            guard.defer_destroy(shared);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
