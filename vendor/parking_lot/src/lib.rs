//! A vendored stand-in for the tiny subset of `parking_lot` this workspace
//! uses: non-poisoning [`Mutex`] and [`RwLock`] wrappers over the standard
//! library primitives. Poisoning is swallowed (a panicking critical section
//! hands the lock to the next owner unchanged), which matches `parking_lot`
//! semantics closely enough for the coarse-lock baseline tree.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_not_poisoned_by_panics() {
        let lock = std::sync::Arc::new(Mutex::new(0));
        let l2 = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("poison attempt");
        })
        .join();
        *lock.lock() += 1;
        assert_eq!(*lock.lock(), 1);
    }
}
