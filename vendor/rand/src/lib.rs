//! A vendored stand-in for the subset of the `rand` crate this workspace
//! uses: a seedable [`rngs::StdRng`] (xoshiro256** seeded through
//! SplitMix64) plus the [`Rng`] conveniences `gen`, `gen_range` and
//! `gen_bool`. Everything is deterministic per seed, which is exactly what
//! the workload generators and property tests rely on.

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG by expanding a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from the full value range by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::draw(rng) as i128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                (self.start as $wide).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $wide;
                (start as $wide).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1i64..=10);
            assert!((1..=10).contains(&w));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn full_range_inclusive_sampling_works() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not panic on the widest inclusive range.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
