//! A vendored stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through an owned [`Value`] tree: [`Serialize`] renders a type into a
//! `Value`, [`Deserialize`] rebuilds it from one. The companion
//! `serde_derive` proc-macro derives both traits for plain structs and
//! enums, and `serde_json` converts `Value` to and from JSON text. The
//! observable API (`#[derive(Serialize, Deserialize)]`,
//! `serde_json::to_string`, `serde_json::from_str`) matches what the
//! workload crate relies on.

use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the interchange format of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{key}`"))),
            other => Err(Error(format!("expected map with `{key}`, got {other:?}"))),
        }
    }
}

/// The error type shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error(format!(
                        "expected integer for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self as u64 <= i64::MAX as u64 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    other => Err(Error(format!(
                        "expected unsigned integer for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(n) => Ok(*n),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(Error(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Static workload names round-trip through deserialization only in
        // tests; leaking the handful of short strings involved is fine.
        String::from_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::I64(i64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(value.get("secs")?)?;
        let nanos = u32::from_value(value.get("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}
