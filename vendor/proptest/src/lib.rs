//! A vendored stand-in for the subset of `proptest` this workspace uses.
//!
//! The shim keeps proptest's surface — the [`proptest!`] macro,
//! [`Strategy`] combinators (`prop_map`, tuples, ranges, [`prop_oneof!`],
//! `collection::vec`, `any`), `ProptestConfig::with_cases` and the
//! `prop_assert*` macros — but drops shrinking: a failing case panics with
//! the generated inputs in the message (every run is deterministic per test
//! name and case index, so failures reproduce exactly).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case index)
/// unless `PROPTEST_SEED` overrides the base seed.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        let mut hash = base ^ 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash.wrapping_add(u64::from(case))),
        }
    }

    fn gen_in<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.inner.gen_range(range)
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed alternatives ([`prop_oneof!`]).
pub struct OneOf<T> {
    alternatives: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            alternatives: self.alternatives.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> OneOf<T> {
    /// Builds the union; panics when empty or all-zero-weighted.
    pub fn new(alternatives: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = alternatives.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        OneOf {
            alternatives,
            total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_in(0..self.total_weight);
        for (weight, alternative) in &self.alternatives {
            let weight = u64::from(*weight);
            if roll < weight {
                return alternative.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_in(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_in(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy for the full value range of `T` (`any::<i64>()` etc).
#[derive(Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(&mut rng.inner)
    }
}

/// A strategy drawing `T` uniformly from its whole value range.
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The admissible lengths of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_in(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Runs one property with fresh inputs per case. Used by [`proptest!`];
/// exposed for completeness.
#[doc(hidden)]
pub fn __run_cases(cases: u32, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        body(&mut rng);
    }
}

/// Declares property tests: `fn name(pattern in strategy, …) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::__run_cases(config.cases, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
            });
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choice between strategies yielding the same value type; arms may carry
/// `weight => strategy` relative weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $alternative:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($alternative))),+
        ])
    };
    ($($alternative:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($alternative))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            xs in collection::vec(-5i64..5, 1..20),
            y in 0i64..=9,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|x| (-5..5).contains(x)));
            prop_assert!((0..=9).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0i64..10).prop_map(|x| x * 2),
            (100i64..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!((0..20).contains(&v) && v % 2 == 0 || (101..111).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        super::__run_cases(8, "det", |rng| a.push(crate::any::<i64>().generate(rng)));
        super::__run_cases(8, "det", |rng| b.push(crate::any::<i64>().generate(rng)));
        assert_eq!(a, b);
    }
}
