//! A vendored stand-in for the subset of `criterion` this workspace uses.
//!
//! Bench functions keep their exact criterion shape (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`), but the statistics engine is
//! replaced by a simple timed loop: every benchmark runs a short warm-up,
//! then iterates until a time budget is spent, and prints the mean
//! iteration time (plus throughput when configured). That is enough to
//! compare implementations locally and to keep `cargo bench` working
//! without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

/// How many iterations [`Bencher::iter`] runs at most per benchmark.
const MAX_ITERS: u64 = 10_000;

/// The per-benchmark measurement budget (can be overridden via
/// `measurement_time`, clamped to keep full suites fast offline).
const DEFAULT_BUDGET: Duration = Duration::from_millis(200);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (fresh input per iteration).
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing engine handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration and iteration count of the last run.
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly within the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
        self.result = Some((nanos, iters));
    }

    /// Times `routine` with a fresh `setup` product per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if total >= self.budget {
                break;
            }
        }
        let nanos = total.as_nanos() as f64 / iters as f64;
        self.result = Some((nanos, iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target sample count (accepted for API parity; the shim's
    /// loop is time-bounded instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API parity).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        // Offline benches favour completing the whole suite over tight
        // confidence intervals; cap the per-bench budget.
        self.budget = duration.min(Duration::from_secs(2));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            budget: self.budget,
            result: None,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            budget: self.budget,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        report_line(&self.name, id, bencher, self.throughput);
    }
}

fn report_line(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let prefix = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let Some((nanos, iters)) = bencher.result else {
        println!("{prefix}: no measurement recorded");
        return;
    };
    let mut line = format!("{prefix}: {} per iter ({iters} iters)", format_nanos(nanos));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (nanos / 1e9);
        line.push_str(&format!(", {per_sec:.0} {unit}/s"));
    }
    println!("{line}");
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: DEFAULT_BUDGET,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            budget: DEFAULT_BUDGET,
            result: None,
        };
        f(&mut bencher);
        report_line("", id, &bencher, None);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = &$cfg; $crate::Criterion::default() };
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
