//! JSON rendering and parsing for the vendored `serde` shim.
//!
//! Provides the two entry points the workspace uses — [`to_string`] and
//! [`from_str`] — by converting between JSON text and the shim's
//! [`serde::Value`] tree.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

fn render(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so floats stay
                // floats across a round-trip.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".to_owned()))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(fields));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".to_owned()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".to_owned()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_owned()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_owned()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_owned()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".to_owned()))?;
                    self.pos = start + len;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error("invalid UTF-8".to_owned()))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let value = Value::Map(vec![
            ("name".to_owned(), Value::Str("range \"mix\"\n".to_owned())),
            (
                "threads".to_owned(),
                Value::Seq(vec![Value::I64(1), Value::I64(2)]),
            ),
            ("ratio".to_owned(), Value::F64(0.5)),
            ("count".to_owned(), Value::I64(-3)),
            ("big".to_owned(), Value::U64(u64::MAX)),
            ("flag".to_owned(), Value::Bool(true)),
            ("nothing".to_owned(), Value::Null),
        ]);
        let text = to_string(&ValueWrap(value.clone())).unwrap();
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(parser.parse_value().unwrap(), value);
    }

    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&ValueWrap(Value::F64(2.0))).unwrap();
        assert_eq!(text, "2.0");
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(parser.parse_value().unwrap(), Value::F64(2.0));
    }
}
