//! The purely functional (persistent) augmented treap.
//!
//! This is the data structure underneath the paper's baseline competitor
//! ("persistent data structures" / path-copying trees, §I related work and
//! the evaluation's orange lines): a balanced search tree in which every
//! update produces a new version that shares all unmodified subtrees with the
//! old one. Reads run on an immutable snapshot; the concurrent wrapper in
//! [`crate::tree`] installs new versions with a CAS-retry loop (the lock-free
//! universal construction).
//!
//! Balance comes from treap priorities derived deterministically from the key
//! (a splitmix64 hash), so the expected height is `O(log N)` without any
//! random-number state. Every node also caches its subtree size and the
//! augmentation value of its subtree, which yields the same `O(log N)`
//! aggregate range queries as the augmented external BST.

use std::sync::Arc;

use wft_seq::{Augmentation, Key, Value};

/// A node of the persistent treap. Nodes are immutable; updates copy the path
/// from the root to the modified position.
#[derive(Debug)]
pub struct PNode<K: Key, V: Value, A: Augmentation<K, V>> {
    /// The node's key.
    pub key: K,
    /// The associated value.
    pub value: V,
    /// Heap priority (max-heap): deterministic hash of the key.
    pub priority: u64,
    /// Number of keys in this subtree.
    pub size: u64,
    /// Augmentation value of this subtree.
    pub agg: A::Agg,
    /// Left child.
    pub left: Link<K, V, A>,
    /// Right child.
    pub right: Link<K, V, A>,
}

/// An optional shared subtree.
pub type Link<K, V, A> = Option<Arc<PNode<K, V, A>>>;

/// splitmix64: cheap, well-distributed deterministic priority for a key hash.
fn priority_of<K: std::hash::Hash>(key: &K) -> u64 {
    use std::hash::Hasher;
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    let mut z = hasher.finish().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Size of an optional subtree.
pub fn size<K: Key, V: Value, A: Augmentation<K, V>>(link: &Link<K, V, A>) -> u64 {
    link.as_ref().map_or(0, |n| n.size)
}

/// Augmentation value of an optional subtree.
pub fn agg<K: Key, V: Value, A: Augmentation<K, V>>(link: &Link<K, V, A>) -> A::Agg {
    link.as_ref().map_or_else(A::identity, |n| n.agg.clone())
}

/// Creates a node from a key/value pair and two subtrees, recomputing the
/// cached size and aggregate.
fn mk<K: Key, V: Value, A: Augmentation<K, V>>(
    key: K,
    value: V,
    priority: u64,
    left: Link<K, V, A>,
    right: Link<K, V, A>,
) -> Arc<PNode<K, V, A>> {
    let entry_agg = A::of_entry(&key, &value);
    let with_left = A::combine(&agg::<K, V, A>(&left), &entry_agg);
    let total = A::combine(&with_left, &agg::<K, V, A>(&right));
    Arc::new(PNode {
        size: 1 + size::<K, V, A>(&left) + size::<K, V, A>(&right),
        agg: total,
        key,
        value,
        priority,
        left,
        right,
    })
}

/// Splits `root` into `(< key, >= key)`.
fn split<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    key: &K,
) -> (Link<K, V, A>, Link<K, V, A>) {
    match root {
        None => (None, None),
        Some(node) => {
            if &node.key < key {
                let (lo, hi) = split::<K, V, A>(&node.right, key);
                (
                    Some(mk::<K, V, A>(
                        node.key,
                        node.value.clone(),
                        node.priority,
                        node.left.clone(),
                        lo,
                    )),
                    hi,
                )
            } else {
                let (lo, hi) = split::<K, V, A>(&node.left, key);
                (
                    lo,
                    Some(mk::<K, V, A>(
                        node.key,
                        node.value.clone(),
                        node.priority,
                        hi,
                        node.right.clone(),
                    )),
                )
            }
        }
    }
}

/// Merges two treaps where every key of `lo` is smaller than every key of
/// `hi`.
fn merge<K: Key, V: Value, A: Augmentation<K, V>>(
    lo: &Link<K, V, A>,
    hi: &Link<K, V, A>,
) -> Link<K, V, A> {
    match (lo, hi) {
        (None, _) => hi.clone(),
        (_, None) => lo.clone(),
        (Some(l), Some(r)) => {
            if l.priority >= r.priority {
                Some(mk::<K, V, A>(
                    l.key,
                    l.value.clone(),
                    l.priority,
                    l.left.clone(),
                    merge::<K, V, A>(&l.right, hi),
                ))
            } else {
                Some(mk::<K, V, A>(
                    r.key,
                    r.value.clone(),
                    r.priority,
                    merge::<K, V, A>(lo, &r.left),
                    r.right.clone(),
                ))
            }
        }
    }
}

/// Returns the value stored under `key`, if any.
pub fn get<'a, K: Key, V: Value, A: Augmentation<K, V>>(
    mut root: &'a Link<K, V, A>,
    key: &K,
) -> Option<&'a V> {
    while let Some(node) = root {
        if key < &node.key {
            root = &node.left;
        } else if key > &node.key {
            root = &node.right;
        } else {
            return Some(&node.value);
        }
    }
    None
}

/// Inserts `key → value` if absent. Returns the new root and whether the key
/// was inserted (`false` leaves the version unchanged, mirroring the paper's
/// `insert` semantics).
pub fn insert<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    key: K,
    value: V,
) -> (Link<K, V, A>, bool) {
    if get::<K, V, A>(root, &key).is_some() {
        return (root.clone(), false);
    }
    let (lo, hi) = split::<K, V, A>(root, &key);
    let node = Some(mk::<K, V, A>(key, value, priority_of(&key), None, None));
    (merge::<K, V, A>(&merge::<K, V, A>(&lo, &node), &hi), true)
}

/// Inserts `key → value` unconditionally, overwriting any existing value.
/// Returns the new root and the replaced value, if any. Because the whole
/// new version is published by the caller's single CAS, the upsert is atomic
/// even though it is built as remove-then-insert over immutable versions.
pub fn replace<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    key: K,
    value: V,
) -> (Link<K, V, A>, Option<V>) {
    let (without, prior) = remove::<K, V, A>(root, &key);
    let (with, inserted) = insert::<K, V, A>(&without, key, value);
    debug_assert!(inserted, "the key was just removed from this version");
    (with, prior)
}

/// Removes `key` if present. Returns the new root and the removed value.
pub fn remove<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    key: &K,
) -> (Link<K, V, A>, Option<V>) {
    match root {
        None => (None, None),
        Some(node) => {
            if key < &node.key {
                let (new_left, removed) = remove::<K, V, A>(&node.left, key);
                if removed.is_none() {
                    (root.clone(), None)
                } else {
                    (
                        Some(mk::<K, V, A>(
                            node.key,
                            node.value.clone(),
                            node.priority,
                            new_left,
                            node.right.clone(),
                        )),
                        removed,
                    )
                }
            } else if key > &node.key {
                let (new_right, removed) = remove::<K, V, A>(&node.right, key);
                if removed.is_none() {
                    (root.clone(), None)
                } else {
                    (
                        Some(mk::<K, V, A>(
                            node.key,
                            node.value.clone(),
                            node.priority,
                            node.left.clone(),
                            new_right,
                        )),
                        removed,
                    )
                }
            } else {
                (
                    merge::<K, V, A>(&node.left, &node.right),
                    Some(node.value.clone()),
                )
            }
        }
    }
}

/// Aggregate of every entry with key `>= min` in the subtree (`O(height)`).
fn agg_ge<K: Key, V: Value, A: Augmentation<K, V>>(root: &Link<K, V, A>, min: &K) -> A::Agg {
    match root {
        None => A::identity(),
        Some(node) => {
            if &node.key < min {
                agg_ge::<K, V, A>(&node.right, min)
            } else {
                let here = A::of_entry(&node.key, &node.value);
                let left_part = agg_ge::<K, V, A>(&node.left, min);
                let right_part = agg::<K, V, A>(&node.right);
                A::combine(&A::combine(&left_part, &here), &right_part)
            }
        }
    }
}

/// Aggregate of every entry with key `<= max` in the subtree (`O(height)`).
fn agg_le<K: Key, V: Value, A: Augmentation<K, V>>(root: &Link<K, V, A>, max: &K) -> A::Agg {
    match root {
        None => A::identity(),
        Some(node) => {
            if &node.key > max {
                agg_le::<K, V, A>(&node.left, max)
            } else {
                let here = A::of_entry(&node.key, &node.value);
                let left_part = agg::<K, V, A>(&node.left);
                let right_part = agg_le::<K, V, A>(&node.right, max);
                A::combine(&A::combine(&left_part, &here), &right_part)
            }
        }
    }
}

/// Aggregate of every entry with key in `[min, max]` (`O(height)`).
pub fn range_agg<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    min: &K,
    max: &K,
) -> A::Agg {
    if min > max {
        return A::identity();
    }
    match root {
        None => A::identity(),
        Some(node) => {
            if &node.key < min {
                range_agg::<K, V, A>(&node.right, min, max)
            } else if &node.key > max {
                range_agg::<K, V, A>(&node.left, min, max)
            } else {
                let here = A::of_entry(&node.key, &node.value);
                let left_part = agg_ge::<K, V, A>(&node.left, min);
                let right_part = agg_le::<K, V, A>(&node.right, max);
                A::combine(&A::combine(&left_part, &here), &right_part)
            }
        }
    }
}

/// Collects every `(key, value)` with key in `[min, max]`, in key order.
pub fn collect_range<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    min: &K,
    max: &K,
    out: &mut Vec<(K, V)>,
) {
    if min > max {
        return;
    }
    if let Some(node) = root {
        if &node.key > min {
            collect_range::<K, V, A>(&node.left, min, max, out);
        }
        if min <= &node.key && &node.key <= max {
            out.push((node.key, node.value.clone()));
        }
        if &node.key < max {
            collect_range::<K, V, A>(&node.right, min, max, out);
        }
    }
}

/// All entries in key order.
pub fn entries<K: Key, V: Value, A: Augmentation<K, V>>(
    root: &Link<K, V, A>,
    out: &mut Vec<(K, V)>,
) {
    if let Some(node) = root {
        entries::<K, V, A>(&node.left, out);
        out.push((node.key, node.value.clone()));
        entries::<K, V, A>(&node.right, out);
    }
}

/// Builds a treap from sorted, de-duplicated entries in `O(n log n)`.
pub fn from_sorted<K: Key, V: Value, A: Augmentation<K, V>>(entries: &[(K, V)]) -> Link<K, V, A> {
    let mut root: Link<K, V, A> = None;
    for (k, v) in entries {
        let (new_root, _) = insert::<K, V, A>(&root, *k, v.clone());
        root = new_root;
    }
    root
}

/// Height of the treap (tests and diagnostics).
pub fn height<K: Key, V: Value, A: Augmentation<K, V>>(root: &Link<K, V, A>) -> usize {
    root.as_ref().map_or(0, |n| {
        1 + height::<K, V, A>(&n.left).max(height::<K, V, A>(&n.right))
    })
}

/// Validates the BST ordering, the heap property and the cached size/agg of
/// every node. Panics on violation; tests only.
pub fn check_invariants<K: Key, V: Value, A: Augmentation<K, V>>(root: &Link<K, V, A>) -> u64 {
    fn walk<K: Key, V: Value, A: Augmentation<K, V>>(
        link: &Link<K, V, A>,
        lo: Option<&K>,
        hi: Option<&K>,
        max_priority: Option<u64>,
    ) -> u64 {
        match link {
            None => 0,
            Some(node) => {
                if let Some(lo) = lo {
                    assert!(&node.key > lo, "BST order violated (left bound)");
                }
                if let Some(hi) = hi {
                    assert!(&node.key < hi, "BST order violated (right bound)");
                }
                if let Some(p) = max_priority {
                    assert!(node.priority <= p, "heap property violated");
                }
                let nl = walk::<K, V, A>(&node.left, lo, Some(&node.key), Some(node.priority));
                let nr = walk::<K, V, A>(&node.right, Some(&node.key), hi, Some(node.priority));
                assert_eq!(node.size, nl + nr + 1, "cached size is stale");
                let mut collected = Vec::new();
                entries::<K, V, A>(link, &mut collected);
                let expect = collected
                    .iter()
                    .fold(A::identity(), |acc, (k, v)| A::insert_delta(&acc, k, v));
                assert_eq!(&node.agg, &expect, "cached aggregate is stale");
                nl + nr + 1
            }
        }
    }
    walk::<K, V, A>(root, None, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wft_seq::{ReferenceMap, Size, Sum};

    type L = Link<i64, i64, Size>;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut root: L = None;
        let (r, ok) = insert::<i64, i64, Size>(&root, 5, 50);
        assert!(ok);
        root = r;
        let (r, ok) = insert::<i64, i64, Size>(&root, 5, 51);
        assert!(!ok, "duplicate insert must fail");
        root = r;
        assert_eq!(get::<i64, i64, Size>(&root, &5), Some(&50));
        let (r, removed) = remove::<i64, i64, Size>(&root, &5);
        assert_eq!(removed, Some(50));
        root = r;
        assert_eq!(get::<i64, i64, Size>(&root, &5), None);
        let (_, removed) = remove::<i64, i64, Size>(&root, &5);
        assert_eq!(removed, None);
    }

    #[test]
    fn versions_are_persistent() {
        let mut versions: Vec<L> = vec![None];
        for k in 0..100 {
            let (next, ok) = insert::<i64, i64, Size>(versions.last().unwrap(), k, k);
            assert!(ok);
            versions.push(next);
        }
        // Every historical version still answers queries for its own era.
        for (i, version) in versions.iter().enumerate() {
            assert_eq!(size::<i64, i64, Size>(version) as usize, i);
            assert_eq!(range_agg::<i64, i64, Size>(version, &0, &1000), i as u64);
        }
    }

    #[test]
    fn expected_logarithmic_height() {
        let entries_vec: Vec<(i64, i64)> = (0..10_000).map(|k| (k, k)).collect();
        let root = from_sorted::<i64, i64, Size>(&entries_vec);
        let h = height::<i64, i64, Size>(&root);
        assert!(
            h < 60,
            "height {h} too large for 10k deterministic-priority keys"
        );
        check_invariants::<i64, i64, Size>(&root);
    }

    #[test]
    fn range_agg_matches_reference() {
        let mut root: Link<i64, i64, Sum> = None;
        let mut oracle: ReferenceMap<i64, i64> = ReferenceMap::new();
        for k in (0..500).step_by(3) {
            let (r, _) = insert::<i64, i64, Sum>(&root, k, k * 2);
            root = r;
            oracle.insert(k, k * 2);
        }
        for (min, max) in [(0, 499), (10, 20), (-5, 2), (498, 1000), (50, 10)] {
            assert_eq!(
                range_agg::<i64, i64, Sum>(&root, &min, &max),
                oracle.range_agg::<Sum>(min, max),
                "range [{min}, {max}]"
            );
        }
    }

    #[test]
    fn collect_range_is_sorted_and_complete() {
        let entries_vec: Vec<(i64, i64)> = (0..200).map(|k| (k, k)).collect();
        let root = from_sorted::<i64, i64, Size>(&entries_vec);
        let mut out = Vec::new();
        collect_range::<i64, i64, Size>(&root, &37, &142, &mut out);
        let expect: Vec<(i64, i64)> = (37..=142).map(|k| (k, k)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn randomized_against_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut root: L = None;
        let mut oracle: ReferenceMap<i64, i64> = ReferenceMap::new();
        for _ in 0..5_000 {
            let k = rng.gen_range(0..300);
            match rng.gen_range(0..4) {
                0 | 1 => {
                    let (r, ok) = insert::<i64, i64, Size>(&root, k, k);
                    root = r;
                    assert_eq!(ok, oracle.insert(k, k));
                }
                2 => {
                    let (r, removed) = remove::<i64, i64, Size>(&root, &k);
                    root = r;
                    assert_eq!(removed, oracle.remove_entry(&k));
                }
                _ => {
                    let hi = k + rng.gen_range(0i64..50);
                    assert_eq!(
                        range_agg::<i64, i64, Size>(&root, &k, &hi),
                        oracle.count(k, hi)
                    );
                }
            }
        }
        check_invariants::<i64, i64, Size>(&root);
        let mut got = Vec::new();
        entries::<i64, i64, Size>(&root, &mut got);
        assert_eq!(got, oracle.entries());
    }
}
