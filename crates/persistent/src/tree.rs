//! The concurrent persistent tree: a lock-free universal construction over
//! the functional treap.
//!
//! This is the baseline the paper compares against (§III, the orange lines of
//! Figures 7–9): every read-only operation loads the current version pointer
//! and runs on that immutable snapshot; every update computes a new version
//! by path copying and tries to install it with a single CAS, retrying from
//! scratch on failure. The construction is lock-free (some operation always
//! makes progress) but not wait-free (an individual update can be starved),
//! and every successful update copies an `O(log N)` path — the costs the
//! paper's design avoids.

use crossbeam_epoch::{Atomic, Guard, Owned};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use wft_seq::{Augmentation, Key, Size, Value};

use crate::treap::{self, Link};

/// A heap cell holding one immutable version of the tree.
struct VersionCell<K: Key, V: Value, A: Augmentation<K, V>> {
    root: Link<K, V, A>,
    /// Strictly increasing along the version chain (each committed update
    /// installs `seq + 1` of the cell it replaces). Because the sequence
    /// number travels *inside* the CAS-swapped cell, reading it is always
    /// consistent with the root it describes — it is the tree's snapshot
    /// front (see the `TimestampFront` impl in `crate::api`).
    seq: u64,
}

/// Operational counters of the persistent baseline (useful for reporting CAS
/// retry rates in the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistentStats {
    /// Successful update CAS installations.
    pub committed_updates: u64,
    /// Update attempts that lost the CAS race and had to retry.
    pub cas_retries: u64,
}

/// A linearizable concurrent ordered set/map built from a persistent treap
/// and a CAS-retry loop (lock-free universal construction).
///
/// The public interface mirrors `wft_core::WaitFreeTree` so the benchmark
/// harness can swap the two implementations freely.
pub struct PersistentRangeTree<K: Key, V: Value = (), A: Augmentation<K, V> = Size> {
    version: Atomic<VersionCell<K, V, A>>,
    committed_updates: AtomicU64,
    cas_retries: AtomicU64,
}

// SAFETY: the shared state is the epoch-managed version pointer plus
// counters; `K`, `V` and the aggregate are `Send + Sync` by bound, so the
// tree moves across threads soundly.
unsafe impl<K: Key, V: Value, A: Augmentation<K, V>> Send for PersistentRangeTree<K, V, A> {}
// SAFETY: same argument as `Send` — shared access goes through the atomic
// version pointer and epoch guards only.
unsafe impl<K: Key, V: Value, A: Augmentation<K, V>> Sync for PersistentRangeTree<K, V, A> {}

impl<K: Key, V: Value, A: Augmentation<K, V>> Default for PersistentRangeTree<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> PersistentRangeTree<K, V, A> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        PersistentRangeTree {
            version: Atomic::new(VersionCell { root: None, seq: 0 }),
            committed_updates: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// Builds a pre-populated tree (duplicates keep the first value).
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);
        let root = treap::from_sorted::<K, V, A>(&sorted);
        PersistentRangeTree {
            version: Atomic::new(VersionCell { root, seq: 0 }),
            committed_updates: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// Loads the current version's root under `guard`.
    fn snapshot<'g>(&self, guard: &'g Guard) -> &'g Link<K, V, A> {
        // ORDERING: Acquire pairs with the AcqRel version CAS in `update_loop`, so
        // the cell's root is fully visible.
        let cell = self.version.load(Acquire, guard);
        // The version cell is never null.
        // SAFETY: the cell is retired only via `defer_destroy` after being
        // replaced, so the deref is valid under `guard`.
        &unsafe { cell.deref() }.root
    }

    /// Applies `update` to the current version until the CAS succeeds.
    /// `update` returns `None` to signal "no change needed" (unsuccessful
    /// insert/remove), in which case the loop exits immediately — this is
    /// what makes unsuccessful operations cheap for this baseline, exactly as
    /// the paper observes in the insert-delete workload.
    pub(crate) fn update_loop<R>(
        &self,
        mut update: impl FnMut(&Link<K, V, A>) -> (Option<Link<K, V, A>>, R),
        guard: &Guard,
    ) -> R {
        loop {
            // ORDERING: Acquire pairs with the AcqRel version CAS below, so the
            // predecessor cell is fully visible.
            // SAFETY: the version cell is never null and is retired only via
            // `defer_destroy`, so the deref is valid under `guard`.
            let current = self.version.load(Acquire, guard);
            // SAFETY: as above.
            let current_cell = unsafe { current.deref() };
            let current_root = &current_cell.root;
            let (new_root, result) = update(current_root);
            match new_root {
                None => return result,
                Some(root) => {
                    let new_cell = Owned::new(VersionCell {
                        root,
                        seq: current_cell.seq + 1,
                    });
                    // ORDERING: success AcqRel — Release publishes the new version cell to the
                    // Acquire snapshot loads, Acquire orders the install after reading the
                    // predecessor; failure Acquire re-reads the cell a faster updater
                    // installed.
                    match self
                        .version
                        .compare_exchange(current, new_cell, AcqRel, Acquire, guard)
                    {
                        Ok(_) => {
                            // SAFETY: our CAS unlinked `current` (single winner per predecessor), so
                            // it is retired exactly once; readers hold epoch guards.
                            unsafe { guard.defer_destroy(current) };
                            self.committed_updates.fetch_add(1, Relaxed);
                            return result;
                        }
                        Err(_) => {
                            // Another update won; retry from the new version
                            // (the whole path copy is recomputed — the cost
                            // the paper's related-work section points out).
                            self.cas_retries.fetch_add(1, Relaxed);
                        }
                    }
                }
            }
        }
    }

    /// Inserts `key → value`; returns `true` if the key was absent.
    pub fn insert(&self, key: K, value: V) -> bool {
        let guard = crossbeam_epoch::pin();
        self.update_loop(
            |root| {
                let (new_root, inserted) = treap::insert::<K, V, A>(root, key, value.clone());
                if inserted {
                    (Some(new_root), true)
                } else {
                    (None, false)
                }
            },
            &guard,
        )
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// value it replaced, if any. Atomic: the overwritten version is swapped
    /// out by the same single CAS as any other update.
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        let guard = crossbeam_epoch::pin();
        self.update_loop(
            |root| {
                let (new_root, prior) = treap::replace::<K, V, A>(root, key, value.clone());
                (Some(new_root), prior)
            },
            &guard,
        )
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.remove_entry(key).is_some()
    }

    /// Removes `key` and returns its value, if any.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        let guard = crossbeam_epoch::pin();
        self.update_loop(
            |root| {
                let (new_root, removed) = treap::remove::<K, V, A>(root, key);
                if removed.is_some() {
                    (Some(new_root), removed)
                } else {
                    (None, None)
                }
            },
            &guard,
        )
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = crossbeam_epoch::pin();
        treap::get::<K, V, A>(self.snapshot(&guard), key).cloned()
    }

    /// Aggregate of every entry with key in `[min, max]` (`O(log N)` on the
    /// current snapshot).
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        let guard = crossbeam_epoch::pin();
        treap::range_agg::<K, V, A>(self.snapshot(&guard), &min, &max)
    }

    /// Every `(key, value)` with key in `[min, max]`, in key order.
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        let guard = crossbeam_epoch::pin();
        let mut out = Vec::new();
        treap::collect_range::<K, V, A>(self.snapshot(&guard), &min, &max, &mut out);
        out
    }

    /// Number of keys in the current version.
    pub fn len(&self) -> u64 {
        let guard = crossbeam_epoch::pin();
        treap::size::<K, V, A>(self.snapshot(&guard))
    }

    /// `true` when the current version is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries of the current version in key order.
    pub fn entries(&self) -> Vec<(K, V)> {
        let guard = crossbeam_epoch::pin();
        let mut out = Vec::new();
        treap::entries::<K, V, A>(self.snapshot(&guard), &mut out);
        out
    }

    /// The current version's sequence number: strictly increasing with every
    /// committed update, constant across reads of one version. This is the
    /// tree's snapshot front — two reads bracketed by equal
    /// `version_seq()` observations ran against the same immutable version.
    pub fn version_seq(&self) -> u64 {
        let guard = crossbeam_epoch::pin();
        // ORDERING: Acquire pairs with the AcqRel version CAS in `update_loop`.
        // SAFETY: the version cell is never null and is retired only via
        // `defer_destroy`.
        let cell = self.version.load(Acquire, &guard);
        // SAFETY: as above.
        unsafe { cell.deref() }.seq
    }

    /// CAS retry / commit counters.
    pub fn stats(&self) -> PersistentStats {
        PersistentStats {
            committed_updates: self.committed_updates.load(Relaxed),
            cas_retries: self.cas_retries.load(Relaxed),
        }
    }

    /// Validates the invariants of the current version (quiescent; tests
    /// only).
    pub fn check_invariants(&self) {
        let guard = crossbeam_epoch::pin();
        let n = treap::check_invariants::<K, V, A>(self.snapshot(&guard));
        assert_eq!(n, self.len(), "cached size diverged");
    }
}

impl<K: Key, V: Value> PersistentRangeTree<K, V, Size> {
    /// Number of keys in `[min, max]`.
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Drop for PersistentRangeTree<K, V, A> {
    fn drop(&mut self) {
        // SAFETY: `drop` takes `&mut self`, so this thread has exclusive access;
        // the final version cell is freed exactly once here.
        unsafe {
            let cell = self.version.load(Relaxed, crossbeam_epoch::unprotected());
            if !cell.is_null() {
                drop(cell.into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let tree: PersistentRangeTree<i64, i64> = PersistentRangeTree::new();
        assert!(tree.is_empty());
        assert!(tree.insert(1, 10));
        assert!(!tree.insert(1, 11));
        assert!(tree.insert(2, 20));
        assert_eq!(tree.get(&1), Some(10));
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.count(0, 10), 2);
        assert_eq!(tree.remove_entry(&1), Some(10));
        assert_eq!(tree.remove_entry(&1), None);
        assert_eq!(tree.len(), 1);
        tree.check_invariants();
    }

    #[test]
    fn from_entries_and_ranges() {
        let tree: PersistentRangeTree<i64> =
            PersistentRangeTree::from_entries((0..1000).map(|k| (k, ())));
        assert_eq!(tree.len(), 1000);
        assert_eq!(tree.count(100, 199), 100);
        assert_eq!(tree.collect_range(0, 9).len(), 10);
        tree.check_invariants();
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        const THREADS: i64 = 4;
        const PER_THREAD: i64 = 1_000;
        let tree: Arc<PersistentRangeTree<i64>> = Arc::new(PersistentRangeTree::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert!(tree.insert(t * PER_THREAD + i, ()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len(), (THREADS * PER_THREAD) as u64);
        assert_eq!(
            tree.count(i64::MIN, i64::MAX),
            (THREADS * PER_THREAD) as u64
        );
        tree.check_invariants();
    }

    #[test]
    fn concurrent_same_key_inserts_succeed_once() {
        const KEYS: i64 = 500;
        let tree: Arc<PersistentRangeTree<i64>> = Arc::new(PersistentRangeTree::new());
        let successes = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tree = Arc::clone(&tree);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    for k in 0..KEYS {
                        if tree.insert(k, ()) {
                            successes.fetch_add(1, Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(successes.load(Relaxed), KEYS as u64);
        assert_eq!(tree.len(), KEYS as u64);
    }

    #[test]
    fn update_contention_is_counted() {
        // Single-threaded updates never retry; the counter stays zero.
        let tree: PersistentRangeTree<i64> = PersistentRangeTree::new();
        for k in 0..100 {
            tree.insert(k, ());
        }
        assert_eq!(tree.stats().cas_retries, 0);
        assert_eq!(tree.stats().committed_updates, 100);
    }
}
