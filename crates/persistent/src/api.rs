//! [`wft_api`] trait implementations for [`PersistentRangeTree`].
//!
//! Every update (including [`PointMap::replace`]) publishes a whole new
//! version with one CAS, so the typed outcomes fall straight out of the
//! treap's return values.

use wft_api::{
    apply_batch_point, BatchApply, BatchError, ChunkRead, FrontScanCursor, OpOutcome, PointMap,
    RangeKey, RangeRead, RangeScan, RangeSpec, StoreOp, TimestampFront, UpdateOutcome,
};
use wft_seq::{Augmentation, Key, Value};

use crate::treap;
use crate::tree::PersistentRangeTree;

impl<K: Key, V: Value, A: Augmentation<K, V>> PointMap<K, V> for PersistentRangeTree<K, V, A> {
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V> {
        // The decision and the blocking value are read from the same
        // version, so the typed outcome is atomic (a separate `get` after a
        // failed insert could observe a later version).
        let guard = crossbeam_epoch::pin();
        self.update_loop(
            |root| match treap::get::<K, V, A>(root, &key) {
                Some(current) => (
                    None,
                    UpdateOutcome::Unchanged {
                        current: Some(current.clone()),
                    },
                ),
                None => {
                    let (new_root, inserted) = treap::insert::<K, V, A>(root, key, value.clone());
                    debug_assert!(inserted, "the key is absent in this version");
                    (Some(new_root), UpdateOutcome::Applied { prior: None })
                }
            },
            &guard,
        )
    }

    fn replace(&self, key: K, value: V) -> UpdateOutcome<V> {
        UpdateOutcome::Applied {
            prior: self.insert_or_replace(key, value),
        }
    }

    fn remove(&self, key: &K) -> UpdateOutcome<V> {
        match self.remove_entry(key) {
            Some(prior) => UpdateOutcome::Applied { prior: Some(prior) },
            None => UpdateOutcome::Unchanged { current: None },
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        PersistentRangeTree::get(self, key)
    }

    fn len(&self) -> u64 {
        PersistentRangeTree::len(self)
    }
}

impl<K, V, A> RangeRead<K, V> for PersistentRangeTree<K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Agg = A::Agg;

    fn range_agg(&self, range: RangeSpec<K>) -> A::Agg {
        wft_api::agg_over(range, A::identity, |min, max| {
            PersistentRangeTree::range_agg(self, min, max)
        })
    }

    fn count(&self, range: RangeSpec<K>) -> u64 {
        wft_api::count_over(
            range,
            |min, max| PersistentRangeTree::range_agg(self, min, max),
            A::count_of,
            |min, max| PersistentRangeTree::collect_range(self, min, max).len() as u64,
        )
    }

    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)> {
        wft_api::collect_over(range, |min, max| {
            PersistentRangeTree::collect_range(self, min, max)
        })
    }
}

/// Chunks through the default collect-and-truncate (`O(answer)` per chunk:
/// the persistent treap reads a whole immutable version anyway, so a
/// limit-bounded walk would save allocation, not consistency work).
impl<K, V, A> ChunkRead<K, V> for PersistentRangeTree<K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
}

/// Streaming scans through the shared front-sandwich cursor over the
/// version-sequence front.
impl<K, V, A> RangeScan<K, V> for PersistentRangeTree<K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Cursor<'a>
        = FrontScanCursor<'a, Self, K, V>
    where
        Self: 'a;

    fn scan(&self, range: RangeSpec<K>) -> FrontScanCursor<'_, Self, K, V> {
        FrontScanCursor::new(self, range)
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> BatchApply<K, V> for PersistentRangeTree<K, V, A> {
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        apply_batch_point(self, batch)
    }
}

/// Opts into the blanket `SnapshotRead`: plain reads here are
/// validation-free linearizable queries, so the blanket's sandwich is the
/// single validation layer.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_api::FrontSnapshot
    for PersistentRangeTree<K, V, A>
{
}

/// The persistent tree's snapshot front is its version sequence number:
/// every update commits a whole new version (with `seq + 1` inside the same
/// CAS-swapped cell) at one atomic instant, so announcement, visibility and
/// resolution coincide — the [`TimestampFront::front_resolved`] default is
/// exact and [`TimestampFront::settle_front`] never waits.
impl<K: Key, V: Value, A: Augmentation<K, V>> TimestampFront for PersistentRangeTree<K, V, A> {
    fn settle_front(&self) -> u64 {
        self.version_seq()
    }

    fn front_advertised(&self) -> u64 {
        self.version_seq()
    }
}

/// Minimal `wft-obs` surface for the baseline: the version sequence number
/// (a monotone count of committed updates) and the current size. The
/// baseline keeps no operational counters of its own.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_obs::MetricsSource
    for PersistentRangeTree<K, V, A>
{
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        out.push_counter("persistent_versions", self.version_seq());
        out.push_gauge("persistent_len", PointMap::len(self) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_is_a_single_version_swap() {
        let tree: PersistentRangeTree<i64, i64> = PersistentRangeTree::new();
        assert_eq!(tree.insert_or_replace(1, 10), None);
        assert_eq!(tree.insert_or_replace(1, 11), Some(10));
        assert_eq!(tree.len(), 1);
        assert_eq!(PointMap::get(&tree, &1), Some(11));
        tree.check_invariants();
    }

    #[test]
    fn trait_surface_roundtrip() {
        let tree: PersistentRangeTree<i64, i64> =
            PersistentRangeTree::from_entries((0..10).map(|k| (k, k)));
        assert!(!PointMap::insert(&tree, 5, 0).is_applied());
        assert_eq!(
            PointMap::replace(&tree, 5, 50),
            UpdateOutcome::Applied { prior: Some(5) }
        );
        assert_eq!(RangeRead::count(&tree, RangeSpec::from_bounds(0..10)), 10);
        assert_eq!(RangeRead::count(&tree, RangeSpec::inclusive(9, 0)), 0);
    }
}
