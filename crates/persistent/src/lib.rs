//! Persistent (path-copying) augmented tree under a lock-free universal
//! construction — the baseline the paper evaluates against.
//!
//! The paper's experiments (§III) compare the wait-free tree with "the
//! concurrent persistent tree presented in \[5\]", the only prior structure
//! with asymptotically efficient aggregate range queries. That artifact is
//! not available, so this crate re-implements the approach from first
//! principles:
//!
//! * [`treap`] — a purely functional augmented treap: every update returns a
//!   new version sharing untouched subtrees, every node caches its subtree
//!   size and augmentation value, aggregate range queries take `O(log N)`;
//! * [`tree::PersistentRangeTree`] — the concurrent wrapper: reads run on an
//!   immutable snapshot, updates retry a CAS on the version pointer until
//!   they win (the lock-free universal construction described in the paper's
//!   related-work section).
//!
//! The public interface intentionally mirrors `wft_core::WaitFreeTree` so the
//! benchmark harness treats both uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod treap;
pub mod tree;

pub use tree::{PersistentRangeTree, PersistentStats};
