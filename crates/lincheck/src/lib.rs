//! Linearizability checking for the concurrent trees in this workspace.
//!
//! The paper's correctness claim is that every operation of the wait-free
//! tree is linearizable: it appears to take effect atomically at some point
//! between its invocation and its response, in an order consistent with a
//! sequential execution (the order defined by the root-queue timestamps).
//! This crate provides the test machinery to check that claim empirically on
//! real concurrent executions, in the spirit of tools such as Lin-Check and
//! Knossos:
//!
//! * [`history`] — a low-overhead recorder. Every worker thread owns a
//!   [`ThreadRecorder`]; invocations and responses are stamped with a global
//!   sequence number so the real-time precedence relation of the execution is
//!   preserved exactly.
//! * [`spec`] — sequential specifications. [`RangeSetSpec`] models the API of
//!   the trees in this repository (`insert`, `remove`, `contains`, `count`,
//!   `collect`) on top of a sorted set.
//! * [`checker`] — the decision procedure: a Wing & Gong style depth-first
//!   search over all linearization orders, pruned by memoising visited
//!   (linearized-set, abstract-state) pairs.
//!
//! Checking linearizability is NP-hard in general, so the intended use is
//! *many small histories* (a handful of threads, tens of operations each)
//! rather than one long run. The integration tests in the workspace root
//! generate hundreds of short adversarial histories per tree implementation
//! and reject the run if any of them fails to linearize.
//!
//! # Example
//!
//! ```
//! use wft_lincheck::{check_history, History, RangeSetOp, RangeSetRet, RangeSetSpec, ThreadRecorder};
//!
//! // Two threads, recorded by hand for the sake of the example.
//! let history = History::record(2, |recorders| {
//!     let mut a = recorders[0].clone();
//!     let mut b = recorders[1].clone();
//!     // Thread A inserts 7 and sees it.
//!     let t = a.invoke(RangeSetOp::Insert(7));
//!     a.respond(t, RangeSetRet::Bool(true));
//!     // Thread B, strictly later, counts one key in [0, 10].
//!     let t = b.invoke(RangeSetOp::Count(0, 10));
//!     b.respond(t, RangeSetRet::Count(1));
//! });
//! let verdict = check_history::<RangeSetSpec>(&history);
//! assert!(verdict.is_linearizable());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod history;
pub mod spec;

pub use checker::{check_history, check_history_with_initial, Verdict};
pub use history::{CompleteOp, History, ThreadRecorder};
pub use spec::{RangeSetOp, RangeSetRet, RangeSetSpec, SequentialSpec};
