//! Sequential specifications.
//!
//! The checker needs an abstract, purely sequential model of the data
//! structure under test: a state type, an initial state, and a transition
//! function that says what each operation returns and how it changes the
//! state. [`RangeSetSpec`] models the API shared by every tree in this
//! workspace — an ordered set of `i64` keys with aggregate and listing range
//! queries.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// A sequential specification usable by the checker.
pub trait SequentialSpec {
    /// The operations of the data structure.
    type Op: Clone + Debug;
    /// The results operations return.
    type Ret: Clone + Debug + PartialEq;
    /// The abstract state. It must be hashable so the checker can memoise
    /// visited configurations.
    type State: Clone + Debug + Hash + Eq;

    /// The abstract state of a freshly created structure.
    fn initial() -> Self::State;

    /// Applies `op` to `state`, returning the successor state and the result
    /// a sequential execution would observe.
    fn apply(state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// Operations of the range-set interface evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeSetOp {
    /// `insert(key)`.
    Insert(i64),
    /// `replace(key)` — the atomic upsert; on a set it always ends with the
    /// key present and reports whether the key was there before.
    Replace(i64),
    /// `remove(key)`.
    Remove(i64),
    /// `contains(key)`.
    Contains(i64),
    /// `count(min, max)` — the aggregate range query.
    Count(i64, i64),
    /// `collect(min, max)` — the listing range query.
    Collect(i64, i64),
    /// `snapshot_counts([a_min, a_max], [b_min, b_max])` — two counts from
    /// **one** snapshot (`wft_api::SnapshotRead`). Sequentially both counts
    /// come from the same state; a concurrent execution must produce a pair
    /// that some single state explains, which is exactly the
    /// single-snapshot claim of the global timestamp front.
    SnapshotCounts(i64, i64, i64, i64),
    /// `chunked_scan(min, max, chunk)` — a streaming cursor drained to
    /// completion in `chunk`-sized pages with
    /// `ScanConsistency::Snapshot` (`wft_api::RangeScan::scan_snapshot`).
    /// Sequentially this is exactly `collect(min, max)`; a concurrent
    /// execution must produce a listing that some single state explains,
    /// which is the snapshot-drain claim of the cursor API — the chunks,
    /// though read across many calls, concatenate to one atomic listing.
    ChunkedScan(i64, i64, usize),
    /// `patch(key)` — an atomic read-modify-write (`StoreOp::Patch`) that
    /// *toggles* membership: present → removed, absent → inserted. Returns
    /// whether the key is present afterwards. On a set, toggling is the
    /// strongest patch to check: its result is wrong under any lost-update
    /// interleaving a non-atomic get-then-write would permit.
    Patch(i64),
    /// `compare_and_set(key)` — insert-if-absent
    /// (`StoreOp::CompareAndSet { expect: None }`): succeeds iff the key
    /// was absent at the linearization point, exactly `insert`'s result
    /// but through the transactional conditional-write path.
    CompareAndSet(i64),
    /// `atomic_batch(a, b)` — one two-op cross-shard batch
    /// (`remove(a)` + `insert(b)`, `a != b`) committed atomically:
    /// sequentially both ops apply to one state, and a concurrent
    /// execution must never expose the gap between them — the
    /// publish-at-front claim of the store's batch commit.
    AtomicBatch(i64, i64),
}

/// Results of [`RangeSetOp`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeSetRet {
    /// Result of `insert`, `remove` and `contains`.
    Bool(bool),
    /// Result of `count`.
    Count(u64),
    /// Result of `collect`.
    Keys(Vec<i64>),
    /// Result of `snapshot_counts`: the two counts of one snapshot.
    CountPair(u64, u64),
    /// Result of `atomic_batch`: (`a` was removed, `b` was inserted), both
    /// evaluated against the same pre-batch state.
    Pair(bool, bool),
}

/// The sequential specification of the range-set interface: a sorted set of
/// keys with the paper's `insert`/`remove`/`contains`/`count`/`collect`
/// semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeSetSpec;

impl SequentialSpec for RangeSetSpec {
    type Op = RangeSetOp;
    type Ret = RangeSetRet;
    type State = BTreeSet<i64>;

    fn initial() -> Self::State {
        BTreeSet::new()
    }

    fn apply(state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match *op {
            RangeSetOp::Insert(key) => {
                let mut next = state.clone();
                let inserted = next.insert(key);
                (next, RangeSetRet::Bool(inserted))
            }
            RangeSetOp::Replace(key) => {
                let mut next = state.clone();
                let was_present = !next.insert(key);
                (next, RangeSetRet::Bool(was_present))
            }
            RangeSetOp::Remove(key) => {
                let mut next = state.clone();
                let removed = next.remove(&key);
                (next, RangeSetRet::Bool(removed))
            }
            RangeSetOp::Contains(key) => (state.clone(), RangeSetRet::Bool(state.contains(&key))),
            RangeSetOp::Count(min, max) => {
                let count = if min > max {
                    0
                } else {
                    state.range(min..=max).count() as u64
                };
                (state.clone(), RangeSetRet::Count(count))
            }
            RangeSetOp::Collect(min, max) => {
                let keys: Vec<i64> = if min > max {
                    Vec::new()
                } else {
                    state.range(min..=max).copied().collect()
                };
                (state.clone(), RangeSetRet::Keys(keys))
            }
            RangeSetOp::ChunkedScan(min, max, _chunk) => {
                // The chunk size is an implementation knob: a snapshot
                // drain yields the full listing regardless of pagination.
                let keys: Vec<i64> = if min > max {
                    Vec::new()
                } else {
                    state.range(min..=max).copied().collect()
                };
                (state.clone(), RangeSetRet::Keys(keys))
            }
            RangeSetOp::Patch(key) => {
                let mut next = state.clone();
                let present_after = if next.remove(&key) {
                    false
                } else {
                    next.insert(key);
                    true
                };
                (next, RangeSetRet::Bool(present_after))
            }
            RangeSetOp::CompareAndSet(key) => {
                let mut next = state.clone();
                let applied = next.insert(key);
                (next, RangeSetRet::Bool(applied))
            }
            RangeSetOp::AtomicBatch(a, b) => {
                let mut next = state.clone();
                let removed = next.remove(&a);
                let inserted = next.insert(b);
                (next, RangeSetRet::Pair(removed, inserted))
            }
            RangeSetOp::SnapshotCounts(a_min, a_max, b_min, b_max) => {
                let count = |min: i64, max: i64| {
                    if min > max {
                        0
                    } else {
                        state.range(min..=max).count() as u64
                    }
                };
                (
                    state.clone(),
                    RangeSetRet::CountPair(count(a_min, a_max), count(b_min, b_max)),
                )
            }
        }
    }
}

impl RangeSetSpec {
    /// An abstract state pre-filled with `keys` — handy when the concurrent
    /// execution starts from a pre-populated tree.
    pub fn prefilled<I: IntoIterator<Item = i64>>(keys: I) -> BTreeSet<i64> {
        keys.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_follow_set_semantics() {
        let s0 = RangeSetSpec::initial();
        let (s1, r1) = RangeSetSpec::apply(&s0, &RangeSetOp::Insert(5));
        assert_eq!(r1, RangeSetRet::Bool(true));
        let (s2, r2) = RangeSetSpec::apply(&s1, &RangeSetOp::Insert(5));
        assert_eq!(r2, RangeSetRet::Bool(false));
        let (_, r3) = RangeSetSpec::apply(&s2, &RangeSetOp::Contains(5));
        assert_eq!(r3, RangeSetRet::Bool(true));
        let (s4, r4) = RangeSetSpec::apply(&s2, &RangeSetOp::Remove(5));
        assert_eq!(r4, RangeSetRet::Bool(true));
        let (_, r5) = RangeSetSpec::apply(&s4, &RangeSetOp::Remove(5));
        assert_eq!(r5, RangeSetRet::Bool(false));
    }

    #[test]
    fn replace_reports_prior_presence_and_keeps_the_key() {
        let s0 = RangeSetSpec::initial();
        let (s1, r1) = RangeSetSpec::apply(&s0, &RangeSetOp::Replace(5));
        assert_eq!(
            r1,
            RangeSetRet::Bool(false),
            "absent key: nothing displaced"
        );
        assert!(s1.contains(&5));
        let (s2, r2) = RangeSetSpec::apply(&s1, &RangeSetOp::Replace(5));
        assert_eq!(r2, RangeSetRet::Bool(true), "present key: overwrote");
        assert!(s2.contains(&5));
    }

    #[test]
    fn count_and_collect_respect_ranges() {
        let state = RangeSetSpec::prefilled([1, 3, 5, 7, 9]);
        let (_, count) = RangeSetSpec::apply(&state, &RangeSetOp::Count(3, 7));
        assert_eq!(count, RangeSetRet::Count(3));
        let (_, keys) = RangeSetSpec::apply(&state, &RangeSetOp::Collect(4, 100));
        assert_eq!(keys, RangeSetRet::Keys(vec![5, 7, 9]));
        let (_, empty) = RangeSetSpec::apply(&state, &RangeSetOp::Count(7, 3));
        assert_eq!(empty, RangeSetRet::Count(0));
    }

    #[test]
    fn queries_do_not_change_the_state() {
        let state = RangeSetSpec::prefilled([1, 2, 3]);
        for op in [
            RangeSetOp::Contains(2),
            RangeSetOp::Count(0, 10),
            RangeSetOp::Collect(0, 10),
            RangeSetOp::SnapshotCounts(0, 10, 2, 3),
            RangeSetOp::ChunkedScan(0, 10, 2),
        ] {
            let (next, _) = RangeSetSpec::apply(&state, &op);
            assert_eq!(next, state);
        }
    }

    #[test]
    fn patch_toggles_membership_and_reports_the_new_presence() {
        let s0 = RangeSetSpec::initial();
        let (s1, r1) = RangeSetSpec::apply(&s0, &RangeSetOp::Patch(5));
        assert_eq!(r1, RangeSetRet::Bool(true), "absent key toggles in");
        assert!(s1.contains(&5));
        let (s2, r2) = RangeSetSpec::apply(&s1, &RangeSetOp::Patch(5));
        assert_eq!(r2, RangeSetRet::Bool(false), "present key toggles out");
        assert!(!s2.contains(&5));
    }

    #[test]
    fn compare_and_set_is_insert_if_absent() {
        let s0 = RangeSetSpec::initial();
        let (s1, r1) = RangeSetSpec::apply(&s0, &RangeSetOp::CompareAndSet(3));
        assert_eq!(r1, RangeSetRet::Bool(true));
        let (s2, r2) = RangeSetSpec::apply(&s1, &RangeSetOp::CompareAndSet(3));
        assert_eq!(
            r2,
            RangeSetRet::Bool(false),
            "present key: expect None misses"
        );
        assert!(s2.contains(&3));
    }

    #[test]
    fn atomic_batch_moves_in_one_step() {
        let state = RangeSetSpec::prefilled([1, 2]);
        let (next, ret) = RangeSetSpec::apply(&state, &RangeSetOp::AtomicBatch(1, 5));
        assert_eq!(ret, RangeSetRet::Pair(true, true));
        assert_eq!(next, RangeSetSpec::prefilled([2, 5]));
        let (next2, ret2) = RangeSetSpec::apply(&next, &RangeSetOp::AtomicBatch(9, 5));
        assert_eq!(
            ret2,
            RangeSetRet::Pair(false, false),
            "absent remove, present insert"
        );
        assert_eq!(next2, next);
    }

    #[test]
    fn chunked_scan_lists_like_collect() {
        let state = RangeSetSpec::prefilled([1, 3, 5, 7, 9]);
        let (_, ret) = RangeSetSpec::apply(&state, &RangeSetOp::ChunkedScan(2, 8, 2));
        assert_eq!(ret, RangeSetRet::Keys(vec![3, 5, 7]));
        let (_, inverted) = RangeSetSpec::apply(&state, &RangeSetOp::ChunkedScan(8, 2, 1));
        assert_eq!(inverted, RangeSetRet::Keys(Vec::new()));
    }

    #[test]
    fn snapshot_counts_answer_from_one_state() {
        let state = RangeSetSpec::prefilled([1, 3, 5, 7, 9]);
        let (_, ret) = RangeSetSpec::apply(&state, &RangeSetOp::SnapshotCounts(0, 10, 4, 8));
        assert_eq!(ret, RangeSetRet::CountPair(5, 2));
        let (_, inverted) = RangeSetSpec::apply(&state, &RangeSetOp::SnapshotCounts(9, 0, 0, 10));
        assert_eq!(inverted, RangeSetRet::CountPair(0, 5));
    }
}
