//! Concurrent history recording.
//!
//! A *history* is the observable trace of a concurrent execution: for every
//! operation, which thread ran it, when it was invoked, when it responded and
//! with what result. Linearizability is a property of histories, so the
//! recorder is deliberately minimal and imposes as little synchronisation as
//! possible on the execution being observed: one global atomic counter
//! provides the happened-before stamps, and each thread appends to its own
//! buffer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A completed operation of a recorded history.
#[derive(Debug, Clone)]
pub struct CompleteOp<Op, Ret> {
    /// Index of the recording thread.
    pub thread: usize,
    /// The operation.
    pub op: Op,
    /// The observed result.
    pub ret: Ret,
    /// Global stamp taken at invocation.
    pub invoked_at: u64,
    /// Global stamp taken at response.
    pub responded_at: u64,
}

/// An operation that was invoked but never responded (the thread crashed or
/// the test stopped it); it may or may not have taken effect.
#[derive(Debug, Clone)]
pub struct PendingOp<Op> {
    /// Index of the recording thread.
    pub thread: usize,
    /// The operation.
    pub op: Op,
    /// Global stamp taken at invocation.
    pub invoked_at: u64,
}

/// Internal per-thread event record.
#[derive(Debug, Clone)]
struct Record<Op, Ret> {
    op: Op,
    invoked_at: u64,
    response: Option<(Ret, u64)>,
}

/// Token returned by [`ThreadRecorder::invoke`]; pass it back to
/// [`ThreadRecorder::respond`] when the operation returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpToken(usize);

/// Handle through which one worker thread records its operations.
///
/// Clones share the same underlying buffer, so a recorder can be cloned into
/// a spawned thread and the events still end up in the history.
#[derive(Debug, Clone)]
pub struct ThreadRecorder<Op, Ret> {
    thread: usize,
    clock: Arc<AtomicU64>,
    records: Arc<Mutex<Vec<Record<Op, Ret>>>>,
}

impl<Op: Clone, Ret: Clone> ThreadRecorder<Op, Ret> {
    /// Records the invocation of `op` and returns the token to use when it
    /// responds.
    pub fn invoke(&self, op: Op) -> OpToken {
        // ORDERING: AcqRel — the shared clock totally orders this stamp against
        // every other recorder's stamps, which is the order the checker replays.
        let stamp = self.clock.fetch_add(1, Ordering::AcqRel);
        let mut records = self.records.lock().expect("recorder mutex poisoned");
        records.push(Record {
            op,
            invoked_at: stamp,
            response: None,
        });
        OpToken(records.len() - 1)
    }

    /// Records the response of the operation identified by `token`.
    ///
    /// # Panics
    ///
    /// Panics if the token does not belong to this recorder or the operation
    /// already responded.
    pub fn respond(&self, token: OpToken, ret: Ret) {
        // ORDERING: AcqRel — same global-clock argument as `invoke`.
        let stamp = self.clock.fetch_add(1, Ordering::AcqRel);
        let mut records = self.records.lock().expect("recorder mutex poisoned");
        let record = records
            .get_mut(token.0)
            .expect("respond() with a token from a different recorder");
        assert!(
            record.response.is_none(),
            "operation already responded (token reused)"
        );
        record.response = Some((ret, stamp));
    }

    /// Convenience wrapper: records the invocation, runs `f`, records the
    /// response it returns, and passes the result through.
    pub fn run<F: FnOnce() -> Ret>(&self, op: Op, f: F) -> Ret {
        let token = self.invoke(op);
        let ret = f();
        self.respond(token, ret.clone());
        ret
    }

    /// The index of the thread this recorder belongs to.
    pub fn thread(&self) -> usize {
        self.thread
    }
}

/// A recorded concurrent history.
#[derive(Debug, Clone)]
pub struct History<Op, Ret> {
    /// Operations that completed (invocation and response observed).
    pub completed: Vec<CompleteOp<Op, Ret>>,
    /// Operations that were invoked but never responded.
    pub pending: Vec<PendingOp<Op>>,
}

impl<Op: Clone, Ret: Clone> History<Op, Ret> {
    /// Creates `threads` recorders sharing one clock, runs `scenario` with
    /// them, and assembles the resulting history.
    ///
    /// The scenario is free to clone the recorders into spawned threads; it
    /// must join them before returning so every response is captured.
    pub fn record<F>(threads: usize, scenario: F) -> Self
    where
        F: FnOnce(&[ThreadRecorder<Op, Ret>]),
    {
        let clock = Arc::new(AtomicU64::new(0));
        let recorders: Vec<ThreadRecorder<Op, Ret>> = (0..threads)
            .map(|thread| ThreadRecorder {
                thread,
                clock: Arc::clone(&clock),
                records: Arc::new(Mutex::new(Vec::new())),
            })
            .collect();
        scenario(&recorders);
        Self::from_recorders(&recorders)
    }

    /// Assembles a history from recorders (after all worker threads joined).
    pub fn from_recorders(recorders: &[ThreadRecorder<Op, Ret>]) -> Self {
        let mut completed = Vec::new();
        let mut pending = Vec::new();
        for recorder in recorders {
            let records = recorder.records.lock().expect("recorder mutex poisoned");
            for record in records.iter() {
                match &record.response {
                    Some((ret, responded_at)) => completed.push(CompleteOp {
                        thread: recorder.thread,
                        op: record.op.clone(),
                        ret: ret.clone(),
                        invoked_at: record.invoked_at,
                        responded_at: *responded_at,
                    }),
                    None => pending.push(PendingOp {
                        thread: recorder.thread,
                        op: record.op.clone(),
                        invoked_at: record.invoked_at,
                    }),
                }
            }
        }
        completed.sort_by_key(|op| op.invoked_at);
        pending.sort_by_key(|op| op.invoked_at);
        History { completed, pending }
    }

    /// Total number of recorded operations (completed + pending).
    pub fn len(&self) -> usize {
        self.completed.len() + self.pending.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_produces_ordered_stamps() {
        let history: History<&'static str, i32> = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            let t1 = a.invoke("x");
            let t2 = b.invoke("y");
            b.respond(t2, 2);
            a.respond(t1, 1);
        });
        assert_eq!(history.completed.len(), 2);
        assert!(history.pending.is_empty());
        for op in &history.completed {
            assert!(op.invoked_at < op.responded_at);
        }
        // The two invocations happened before either response.
        let x = &history.completed[0];
        let y = &history.completed[1];
        assert!(x.invoked_at < y.responded_at && y.invoked_at < x.responded_at);
    }

    #[test]
    fn pending_operations_are_separated() {
        let history: History<&'static str, i32> = History::record(1, |recorders| {
            let a = &recorders[0];
            let _never_responded = a.invoke("dangling");
            a.run("ok", || 7);
        });
        assert_eq!(history.completed.len(), 1);
        assert_eq!(history.pending.len(), 1);
        assert_eq!(history.pending[0].op, "dangling");
        assert_eq!(history.completed[0].ret, 7);
    }

    #[test]
    fn recorders_can_be_cloned_into_threads() {
        let history: History<u64, u64> = History::record(4, |recorders| {
            let handles: Vec<_> = recorders
                .iter()
                .map(|r| {
                    let r = r.clone();
                    std::thread::spawn(move || {
                        for i in 0..50 {
                            r.run(i, || i * 2);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(history.completed.len(), 200);
        // Stamps are unique.
        let mut stamps: Vec<u64> = history
            .completed
            .iter()
            .flat_map(|op| [op.invoked_at, op.responded_at])
            .collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 400);
    }

    #[test]
    #[should_panic(expected = "already responded")]
    fn double_response_panics() {
        let _ = History::<&'static str, i32>::record(1, |recorders| {
            let a = &recorders[0];
            let t = a.invoke("x");
            a.respond(t, 1);
            a.respond(t, 2);
        });
    }
}
