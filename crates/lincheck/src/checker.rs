//! The linearizability decision procedure.
//!
//! Given a recorded [`History`] and a [`SequentialSpec`], the checker searches
//! for a *linearization*: a total order of the completed operations that (a)
//! respects the real-time precedence of the history (if operation A responded
//! before operation B was invoked, A must come first) and (b) is a legal
//! sequential execution of the specification producing exactly the observed
//! results. Operations that never responded may be placed anywhere consistent
//! with their invocation or omitted entirely.
//!
//! The search is the classic Wing & Gong depth-first enumeration of minimal
//! operations, with Lowe's memoisation of visited (linearized-set, state)
//! configurations so equivalent interleavings are explored once. Histories
//! are limited to 128 operations — the intended use is many short adversarial
//! histories, not one long trace.

use std::collections::HashSet;

use crate::history::History;
use crate::spec::SequentialSpec;

/// Outcome of a linearizability check.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A linearization exists; the witness lists indices into
    /// `history.completed` (and, after them, any pending operations that had
    /// to be assumed to have taken effect) in linearization order.
    Linearizable {
        /// Indices of completed operations in the order they linearize.
        witness: Vec<usize>,
    },
    /// No linearization exists.
    NotLinearizable {
        /// Human-readable explanation of the first conflict found on the
        /// deepest path the search reached.
        explanation: String,
    },
}

impl Verdict {
    /// `true` when the history is linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Verdict::Linearizable { .. })
    }
}

/// Internal uniform view of completed and pending operations.
struct Entry<Op, Ret> {
    op: Op,
    ret: Option<Ret>,
    invoked_at: u64,
    responded_at: u64,
    /// Index into `history.completed` (pending operations get `usize::MAX`).
    completed_index: usize,
}

/// Checks `history` against specification `S`, starting from `S::initial()`.
pub fn check_history<S: SequentialSpec>(history: &History<S::Op, S::Ret>) -> Verdict {
    check_history_with_initial::<S>(history, S::initial())
}

/// Checks `history` against specification `S`, starting from an explicit
/// initial abstract state (e.g. the pre-fill of the concurrent structure).
pub fn check_history_with_initial<S: SequentialSpec>(
    history: &History<S::Op, S::Ret>,
    initial: S::State,
) -> Verdict {
    let mut entries: Vec<Entry<S::Op, S::Ret>> = Vec::with_capacity(history.len());
    for (i, op) in history.completed.iter().enumerate() {
        entries.push(Entry {
            op: op.op.clone(),
            ret: Some(op.ret.clone()),
            invoked_at: op.invoked_at,
            responded_at: op.responded_at,
            completed_index: i,
        });
    }
    for op in &history.pending {
        entries.push(Entry {
            op: op.op.clone(),
            ret: None,
            invoked_at: op.invoked_at,
            responded_at: u64::MAX,
            completed_index: usize::MAX,
        });
    }
    assert!(
        entries.len() <= 128,
        "the checker handles at most 128 operations per history ({} recorded); \
         split the execution into smaller histories",
        entries.len()
    );

    let all_completed: u128 = history
        .completed
        .iter()
        .enumerate()
        .fold(0u128, |mask, (i, _)| mask | (1u128 << i));

    let mut seen: HashSet<(u128, S::State)> = HashSet::new();
    let mut witness = Vec::new();
    let mut deepest_failure = String::new();
    let mut deepest_done = 0usize;

    let linearizable = dfs::<S>(
        &entries,
        0u128,
        &initial,
        all_completed,
        &mut seen,
        &mut witness,
        &mut deepest_failure,
        &mut deepest_done,
    );
    if linearizable {
        Verdict::Linearizable { witness }
    } else {
        Verdict::NotLinearizable {
            explanation: if deepest_failure.is_empty() {
                "no linearization order satisfies the real-time constraints".to_string()
            } else {
                deepest_failure
            },
        }
    }
}

/// Recursive search. `done` is the bitmask of already-linearized entries.
/// Returns `true` on success, filling `witness` (in reverse construction
/// order, already correct because entries are pushed on the way down).
#[allow(clippy::too_many_arguments)]
fn dfs<S: SequentialSpec>(
    entries: &[Entry<S::Op, S::Ret>],
    done: u128,
    state: &S::State,
    all_completed: u128,
    seen: &mut HashSet<(u128, S::State)>,
    witness: &mut Vec<usize>,
    deepest_failure: &mut String,
    deepest_done: &mut usize,
) -> bool {
    // Success when every completed operation has been linearized; pending
    // operations may simply never have taken effect.
    let completed_done = done & all_completed;
    if completed_done == all_completed {
        return true;
    }
    if !seen.insert((done, state.clone())) {
        return false;
    }
    // The earliest response among operations not yet linearized bounds which
    // operations may linearize next: only those invoked before it.
    let mut earliest_response = u64::MAX;
    for (i, entry) in entries.iter().enumerate() {
        if done & (1u128 << i) == 0 {
            earliest_response = earliest_response.min(entry.responded_at);
        }
    }
    for (i, entry) in entries.iter().enumerate() {
        if done & (1u128 << i) != 0 || entry.invoked_at > earliest_response {
            continue;
        }
        let (next_state, ret) = S::apply(state, &entry.op);
        if let Some(observed) = &entry.ret {
            if observed != &ret {
                let depth = done.count_ones() as usize;
                if depth >= *deepest_done {
                    *deepest_done = depth;
                    *deepest_failure = format!(
                        "operation {:?} observed {:?} but the specification requires {:?} \
                         at this point of the candidate linearization",
                        entry.op, observed, ret
                    );
                }
                continue;
            }
        }
        witness.push(entry.completed_index);
        if dfs::<S>(
            entries,
            done | (1u128 << i),
            &next_state,
            all_completed,
            seen,
            witness,
            deepest_failure,
            deepest_done,
        ) {
            return true;
        }
        witness.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::spec::{RangeSetOp, RangeSetRet, RangeSetSpec};

    type H = History<RangeSetOp, RangeSetRet>;

    #[test]
    fn empty_history_is_linearizable() {
        let history: H = History::record(1, |_| {});
        assert!(check_history::<RangeSetSpec>(&history).is_linearizable());
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let history: H = History::record(1, |recorders| {
            let r = &recorders[0];
            r.run(RangeSetOp::Insert(1), || RangeSetRet::Bool(true));
            r.run(RangeSetOp::Insert(1), || RangeSetRet::Bool(false));
            r.run(RangeSetOp::Count(0, 10), || RangeSetRet::Count(1));
            r.run(RangeSetOp::Remove(1), || RangeSetRet::Bool(true));
            r.run(RangeSetOp::Contains(1), || RangeSetRet::Bool(false));
        });
        assert!(check_history::<RangeSetSpec>(&history).is_linearizable());
    }

    #[test]
    fn stale_read_is_not_linearizable() {
        // Insert(7) completes strictly before Contains(7) starts, yet the
        // read misses the key: impossible in any linearization.
        let history: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            let t = a.invoke(RangeSetOp::Insert(7));
            a.respond(t, RangeSetRet::Bool(true));
            let t = b.invoke(RangeSetOp::Contains(7));
            b.respond(t, RangeSetRet::Bool(false));
        });
        let verdict = check_history::<RangeSetSpec>(&history);
        assert!(!verdict.is_linearizable());
        if let Verdict::NotLinearizable { explanation } = verdict {
            assert!(
                explanation.contains("Contains"),
                "explanation: {explanation}"
            );
        }
    }

    #[test]
    fn overlapping_operations_may_reorder() {
        // The same results as above are fine when the two operations overlap:
        // the read may linearize before the insert.
        let history: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            let ta = a.invoke(RangeSetOp::Insert(7));
            let tb = b.invoke(RangeSetOp::Contains(7));
            a.respond(ta, RangeSetRet::Bool(true));
            b.respond(tb, RangeSetRet::Bool(false));
        });
        assert!(check_history::<RangeSetSpec>(&history).is_linearizable());
    }

    #[test]
    fn double_successful_insert_of_same_key_is_not_linearizable() {
        let history: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            let t = a.invoke(RangeSetOp::Insert(3));
            a.respond(t, RangeSetRet::Bool(true));
            let t = b.invoke(RangeSetOp::Insert(3));
            b.respond(t, RangeSetRet::Bool(true));
        });
        assert!(!check_history::<RangeSetSpec>(&history).is_linearizable());
    }

    #[test]
    fn count_must_reflect_completed_updates() {
        // Two inserts complete, then a count of 1 is reported: not
        // linearizable (it must be 2).
        let history: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            a.run(RangeSetOp::Insert(1), || RangeSetRet::Bool(true));
            b.run(RangeSetOp::Insert(2), || RangeSetRet::Bool(true));
            a.run(RangeSetOp::Count(0, 10), || RangeSetRet::Count(1));
        });
        assert!(!check_history::<RangeSetSpec>(&history).is_linearizable());
    }

    #[test]
    fn count_may_miss_concurrent_updates() {
        // The count overlaps the second insert, so both 1 and 2 are legal.
        let history: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            a.run(RangeSetOp::Insert(1), || RangeSetRet::Bool(true));
            let tb = b.invoke(RangeSetOp::Insert(2));
            let ta = a.invoke(RangeSetOp::Count(0, 10));
            a.respond(ta, RangeSetRet::Count(1));
            b.respond(tb, RangeSetRet::Bool(true));
        });
        assert!(check_history::<RangeSetSpec>(&history).is_linearizable());
    }

    #[test]
    fn pending_operations_may_or_may_not_take_effect() {
        // A pending insert explains the read observing the key...
        let observed: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            let _pending = a.invoke(RangeSetOp::Insert(9));
            b.run(RangeSetOp::Contains(9), || RangeSetRet::Bool(true));
        });
        assert!(check_history::<RangeSetSpec>(&observed).is_linearizable());

        // ...and its absence explains the read missing it.
        let missed: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            let _pending = a.invoke(RangeSetOp::Insert(9));
            b.run(RangeSetOp::Contains(9), || RangeSetRet::Bool(false));
        });
        assert!(check_history::<RangeSetSpec>(&missed).is_linearizable());
    }

    #[test]
    fn witness_order_respects_real_time() {
        let history: H = History::record(2, |recorders| {
            let a = &recorders[0];
            let b = &recorders[1];
            a.run(RangeSetOp::Insert(1), || RangeSetRet::Bool(true));
            b.run(RangeSetOp::Insert(2), || RangeSetRet::Bool(true));
            a.run(RangeSetOp::Count(0, 10), || RangeSetRet::Count(2));
        });
        let verdict = check_history::<RangeSetSpec>(&history);
        let Verdict::Linearizable { witness } = verdict else {
            panic!("history must be linearizable");
        };
        assert_eq!(witness.len(), 3);
        // The count is the last operation in every legal linearization.
        assert_eq!(*witness.last().unwrap(), 2);
    }

    #[test]
    fn prefilled_initial_state_is_honoured() {
        let history: H = History::record(1, |recorders| {
            let r = &recorders[0];
            r.run(RangeSetOp::Contains(42), || RangeSetRet::Bool(true));
            r.run(RangeSetOp::Count(0, 100), || RangeSetRet::Count(2));
        });
        let initial = RangeSetSpec::prefilled([42, 77]);
        let verdict = check_history_with_initial::<RangeSetSpec>(&history, initial);
        assert!(verdict.is_linearizable());
        // The same history fails from an empty initial state.
        assert!(!check_history::<RangeSetSpec>(&history).is_linearizable());
    }
}
