//! The batched operation vocabulary, shared by single trees and the store.
//!
//! A [`StoreOp`] is one keyed mutation; a batch is a `Vec<StoreOp>`. The
//! vocabulary originated in the sharded store's two-phase `apply_batch`
//! pipeline (phase one **validates** the whole batch without touching any
//! tree, phase two **executes** it), and is promoted here so that *every*
//! [`PointMap`] can accept the same batches: [`BatchApply`] is the common
//! entry point, [`validate_batch`] is the shared phase-one check, and
//! [`apply_batch_point`] is a ready-made serial phase two for single-shard
//! backends. A batch that fails validation is rejected wholesale — by
//! construction nothing has been mutated yet, which is the property
//! GroveDB-style storage stacks rely on to keep multi-key commits
//! all-or-nothing.

use std::collections::HashSet;
use std::fmt;

use wft_seq::{Key, Value};

use crate::point::PointMap;

/// Batch size accepted when no explicit limit is configured.
pub const UNBOUNDED_BATCH_OPS: usize = usize::MAX;

/// One keyed mutation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp<K: Key, V: Value = ()> {
    /// Insert `key → value` if the key is absent; an existing key leaves the
    /// store unmodified (the paper tree's `insert` semantics).
    Insert {
        /// Key to insert.
        key: K,
        /// Value stored when the key is absent.
        value: V,
    },
    /// Insert `key → value`, replacing (and reporting) any existing value.
    /// Executes as the backend's atomic `replace`
    /// ([`PointMap::replace`]) — on the wait-free tree, a single `Replace`
    /// descriptor.
    InsertOrReplace {
        /// Key to insert or overwrite.
        key: K,
        /// The new value.
        value: V,
    },
    /// Remove `key`, reporting only whether it was present.
    Remove {
        /// Key to remove.
        key: K,
    },
    /// Remove `key`, reporting the removed value.
    RemoveEntry {
        /// Key to remove.
        key: K,
    },
}

impl<K: Key, V: Value> StoreOp<K, V> {
    /// The key this operation routes by.
    pub fn key(&self) -> &K {
        match self {
            StoreOp::Insert { key, .. }
            | StoreOp::InsertOrReplace { key, .. }
            | StoreOp::Remove { key }
            | StoreOp::RemoveEntry { key } => key,
        }
    }

    /// `true` for the operations that can grow the store.
    pub fn is_insert(&self) -> bool {
        matches!(
            self,
            StoreOp::Insert { .. } | StoreOp::InsertOrReplace { .. }
        )
    }
}

/// The per-operation result of an executed batch, index-aligned with the
/// submitted `Vec<StoreOp>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome<V: Value> {
    /// Result of [`StoreOp::Insert`]: `true` when the key was absent.
    Inserted(bool),
    /// Result of [`StoreOp::InsertOrReplace`]: the value it replaced.
    Replaced(Option<V>),
    /// Result of [`StoreOp::Remove`]: `true` when the key was present.
    Removed(bool),
    /// Result of [`StoreOp::RemoveEntry`]: the removed value.
    RemovedEntry(Option<V>),
}

/// Why phase one rejected a batch. Nothing is mutated when any of these is
/// returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError<K: Key> {
    /// Two operations in the batch address the same key. Within one batch
    /// there is no defined order between them (a sharded backend executes
    /// per-shard groups concurrently), so the batch is ambiguous and
    /// refused.
    DuplicateKey {
        /// The key that appears more than once.
        key: K,
    },
    /// The batch exceeds the backend's configured maximum.
    TooLarge {
        /// Number of operations submitted.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl<K: Key> fmt::Display for BatchError<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::DuplicateKey { key } => {
                write!(f, "batch addresses key {key:?} more than once")
            }
            BatchError::TooLarge { len, max } => {
                write!(
                    f,
                    "batch of {len} ops exceeds the configured maximum of {max}"
                )
            }
        }
    }
}

impl<K: Key> std::error::Error for BatchError<K> {}

/// All-or-nothing batched writes over a keyed backend.
///
/// # Example
///
/// ```
/// use wft_api::{BatchApply, BatchError, OpOutcome, StoreOp};
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
///
/// // A valid batch executes and reports one outcome per op, in order.
/// let outcomes = tree
///     .apply_batch(vec![
///         StoreOp::Insert { key: 1, value: 10 },
///         StoreOp::InsertOrReplace { key: 2, value: 20 },
///         StoreOp::Remove { key: 3 },
///     ])
///     .unwrap();
/// assert_eq!(
///     outcomes,
///     vec![
///         OpOutcome::Inserted(true),
///         OpOutcome::Replaced(None),
///         OpOutcome::Removed(false),
///     ]
/// );
///
/// // Validation failures reject the batch before anything mutates.
/// let err = tree
///     .apply_batch(vec![StoreOp::Remove { key: 1 }, StoreOp::RemoveEntry { key: 1 }])
///     .unwrap_err();
/// assert_eq!(err, BatchError::DuplicateKey { key: 1 });
/// assert_eq!(tree.len(), 2, "failed batch mutated nothing");
/// ```
pub trait BatchApply<K: Key, V: Value> {
    /// Validates and executes `batch`, returning one [`OpOutcome`] per
    /// submitted operation, in submission order. On `Err`, nothing was
    /// mutated.
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>>;
}

/// The shared phase-one check: rejects batches larger than `max_ops` and
/// batches addressing any key twice. Mutates nothing.
pub fn validate_batch<K: Key, V: Value>(
    batch: &[StoreOp<K, V>],
    max_ops: usize,
) -> Result<(), BatchError<K>> {
    if batch.len() > max_ops {
        return Err(BatchError::TooLarge {
            len: batch.len(),
            max: max_ops,
        });
    }
    let mut seen = HashSet::with_capacity(batch.len());
    for op in batch {
        if !seen.insert(*op.key()) {
            return Err(BatchError::DuplicateKey { key: *op.key() });
        }
    }
    Ok(())
}

/// A ready-made [`BatchApply`] body for single-shard backends: validate,
/// then apply each operation through the [`PointMap`] interface in
/// submission order.
///
/// Distinct keys make the per-op applications independent, so on a
/// linearizable backend the serial order below is indistinguishable from
/// any other execution order of the same batch.
pub fn apply_batch_point<K: Key, V: Value, M: PointMap<K, V> + ?Sized>(
    map: &M,
    batch: Vec<StoreOp<K, V>>,
) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
    validate_batch(&batch, UNBOUNDED_BATCH_OPS)?;
    Ok(batch
        .into_iter()
        .map(|op| match op {
            StoreOp::Insert { key, value } => {
                OpOutcome::Inserted(map.insert(key, value).is_applied())
            }
            StoreOp::InsertOrReplace { key, value } => {
                OpOutcome::Replaced(map.replace(key, value).into_prior())
            }
            StoreOp::Remove { key } => OpOutcome::Removed(map.remove(&key).is_applied()),
            StoreOp::RemoveEntry { key } => OpOutcome::RemovedEntry(map.remove(&key).into_prior()),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_duplicates_and_oversize() {
        let batch: Vec<StoreOp<i64, ()>> = vec![
            StoreOp::Insert { key: 1, value: () },
            StoreOp::Remove { key: 2 },
            StoreOp::RemoveEntry { key: 1 },
        ];
        assert_eq!(
            validate_batch(&batch, UNBOUNDED_BATCH_OPS),
            Err(BatchError::DuplicateKey { key: 1 })
        );
        assert_eq!(
            validate_batch(&batch, 2),
            Err(BatchError::TooLarge { len: 3, max: 2 })
        );
        let ok: Vec<StoreOp<i64, ()>> = vec![
            StoreOp::Insert { key: 1, value: () },
            StoreOp::Remove { key: 2 },
        ];
        assert_eq!(validate_batch(&ok, 2), Ok(()));
    }

    #[test]
    fn store_op_accessors() {
        let op: StoreOp<i64, i64> = StoreOp::InsertOrReplace { key: 5, value: 50 };
        assert_eq!(op.key(), &5);
        assert!(op.is_insert());
        let op: StoreOp<i64, i64> = StoreOp::RemoveEntry { key: 9 };
        assert_eq!(op.key(), &9);
        assert!(!op.is_insert());
    }

    #[test]
    fn errors_render_usefully() {
        let dup: BatchError<i64> = BatchError::DuplicateKey { key: 3 };
        assert!(dup.to_string().contains("more than once"));
        let big: BatchError<i64> = BatchError::TooLarge { len: 10, max: 4 };
        assert!(big.to_string().contains("exceeds"));
    }
}
