//! The batched operation vocabulary, shared by single trees and the store.
//!
//! A [`StoreOp`] is one keyed operation; a batch is a `Vec<StoreOp>`. The
//! vocabulary originated in the sharded store's two-phase `apply_batch`
//! pipeline (phase one **validates** the whole batch without touching any
//! tree, phase two **executes** it), and is promoted here so that *every*
//! [`PointMap`] can accept the same batches: [`BatchApply`] is the common
//! entry point, [`validate_batch`] is the shared phase-one check, and
//! [`apply_batch_point`] is a ready-made serial phase two for single-shard
//! backends. A batch that fails validation is rejected wholesale — by
//! construction nothing has been mutated yet, which is the property
//! GroveDB-style storage stacks rely on to keep multi-key commits
//! all-or-nothing.
//!
//! Beyond the four *physical* ops (`Insert` / `InsertOrReplace` / `Remove`
//! / `RemoveEntry`) the vocabulary is transactional: [`StoreOp::Patch`] is
//! an atomic read-modify-write of the stored value, [`StoreOp::CompareAndSet`]
//! a conditional overwrite, and [`StoreOp::Get`] a batch-internal read whose
//! outcome observes the earlier same-key ops of its batch. The three are
//! *logical* ops — their effect depends on the state they execute against —
//! and [`resolve_op`] is the shared step that pins a logical op to the
//! physical op with the same effect, which is how the durable WAL logs them
//! (physical logging; see `wft-durable`).

use std::collections::HashSet;
use std::fmt;

use wft_seq::{Key, Value};

use crate::point::PointMap;

/// Batch size accepted when no explicit limit is configured.
pub const UNBOUNDED_BATCH_OPS: usize = usize::MAX;

/// A read-modify-write function applied to a key's stored value: receives
/// the current value (`None` when absent) and returns the value to store
/// (`None` removes the key).
///
/// A plain `fn` pointer on purpose: patches ride inside [`StoreOp`] batches
/// that are cloned, compared, and routed across threads, and a capturing
/// closure would drag allocation and unclonable state into the hot batch
/// path. State a patch needs must come from the stored value itself.
pub type PatchFn<V> = fn(Option<V>) -> Option<V>;

/// One keyed operation inside a batch.
#[derive(Debug, Clone)]
pub enum StoreOp<K: Key, V: Value = ()> {
    /// Insert `key → value` if the key is absent; an existing key leaves the
    /// store unmodified (the paper tree's `insert` semantics).
    Insert {
        /// Key to insert.
        key: K,
        /// Value stored when the key is absent.
        value: V,
    },
    /// Insert `key → value`, replacing (and reporting) any existing value.
    /// Executes as the backend's atomic `replace`
    /// ([`PointMap::replace`]) — on the wait-free tree, a single `Replace`
    /// descriptor.
    InsertOrReplace {
        /// Key to insert or overwrite.
        key: K,
        /// The new value.
        value: V,
    },
    /// Remove `key`, reporting only whether it was present.
    Remove {
        /// Key to remove.
        key: K,
    },
    /// Remove `key`, reporting the removed value.
    RemoveEntry {
        /// Key to remove.
        key: K,
    },
    /// Read-modify-write: replace the key's stored value with
    /// `patch(current)` — returning `None` removes the key (or keeps it
    /// absent), `Some(v)` stores `v`. The read and the write are one atomic
    /// step on backends whose batch execution is atomic; see
    /// [`PointMap::patch`] for the point-op flavour.
    Patch {
        /// Key to patch.
        key: K,
        /// The read-modify-write function.
        patch: PatchFn<V>,
    },
    /// Store `value` iff the key's current value equals `expect`
    /// (`None` = "the key is absent"). Reports whether it applied.
    CompareAndSet {
        /// Key to conditionally overwrite.
        key: K,
        /// The witness the current value must equal.
        expect: Option<V>,
        /// The value stored on a match.
        value: V,
    },
    /// Batch-internal read: reports the key's value as of this operation's
    /// position in the batch, observing every earlier same-key op of the
    /// same batch and nothing later.
    ///
    /// This closes the ROADMAP's document-or-change decision on batch
    /// reads: the semantics is **sequential within the batch**, not
    /// read-the-pre-batch-state. A `Get` placed *before* a same-key
    /// mutation reads the pre-batch value; placed *after* it, the `Get`
    /// observes that mutation. All three executors agree —
    /// [`apply_batch_point`] applies serially, the sharded store runs
    /// same-shard groups in batch order (same key ⇒ same shard), and the
    /// durable journal's resolution pass threads each key's post-value
    /// through an overlay.
    ///
    /// ```
    /// use wft_api::{BatchApply, OpOutcome, StoreOp};
    /// use wft_core::WaitFreeTree;
    ///
    /// let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
    /// tree.insert(7, 70);
    ///
    /// // One batch: read, overwrite, read again. The first `Get` sees
    /// // the pre-batch value, the second sees the same-batch overwrite.
    /// let outcomes = tree
    ///     .apply_batch(vec![
    ///         StoreOp::Get { key: 7 },
    ///         StoreOp::InsertOrReplace { key: 7, value: 71 },
    ///         StoreOp::Get { key: 7 },
    ///     ])
    ///     .unwrap();
    /// assert_eq!(
    ///     outcomes,
    ///     vec![
    ///         OpOutcome::Got(Some(70)),
    ///         OpOutcome::Replaced(Some(70)),
    ///         OpOutcome::Got(Some(71)),
    ///     ]
    /// );
    /// ```
    Get {
        /// Key to read.
        key: K,
    },
}

impl<K: Key, V: Value> PartialEq for StoreOp<K, V> {
    // Manual: the derived impl would compare `PatchFn` pointers directly
    // and trip `unpredictable_function_pointer_comparisons`; `fn_addr_eq`
    // states the (address-identity) semantics explicitly.
    fn eq(&self, other: &Self) -> bool {
        use StoreOp::*;
        match (self, other) {
            (Insert { key: a, value: x }, Insert { key: b, value: y })
            | (InsertOrReplace { key: a, value: x }, InsertOrReplace { key: b, value: y }) => {
                a == b && x == y
            }
            (Remove { key: a }, Remove { key: b })
            | (RemoveEntry { key: a }, RemoveEntry { key: b })
            | (Get { key: a }, Get { key: b }) => a == b,
            (Patch { key: a, patch: f }, Patch { key: b, patch: g }) => {
                a == b && std::ptr::fn_addr_eq(*f, *g)
            }
            (
                CompareAndSet {
                    key: a,
                    expect: e1,
                    value: x,
                },
                CompareAndSet {
                    key: b,
                    expect: e2,
                    value: y,
                },
            ) => a == b && e1 == e2 && x == y,
            _ => false,
        }
    }
}

impl<K: Key, V: Value + Eq> Eq for StoreOp<K, V> {}

impl<K: Key, V: Value> StoreOp<K, V> {
    /// The key this operation routes by.
    pub fn key(&self) -> &K {
        match self {
            StoreOp::Insert { key, .. }
            | StoreOp::InsertOrReplace { key, .. }
            | StoreOp::Remove { key }
            | StoreOp::RemoveEntry { key }
            | StoreOp::Patch { key, .. }
            | StoreOp::CompareAndSet { key, .. }
            | StoreOp::Get { key } => key,
        }
    }

    /// `true` for the operations that can grow the store.
    pub fn is_insert(&self) -> bool {
        matches!(
            self,
            StoreOp::Insert { .. }
                | StoreOp::InsertOrReplace { .. }
                | StoreOp::Patch { .. }
                | StoreOp::CompareAndSet { .. }
        )
    }

    /// `true` for every operation that can modify the store —
    /// everything except [`StoreOp::Get`].
    pub fn is_mutation(&self) -> bool {
        !matches!(self, StoreOp::Get { .. })
    }

    /// `true` for the four *physical* variants — the state-independent,
    /// per-key-idempotent ops the WAL logs and recovery replays
    /// (`Insert` / `InsertOrReplace` / `Remove` / `RemoveEntry`).
    pub fn is_physical(&self) -> bool {
        !matches!(
            self,
            StoreOp::Patch { .. } | StoreOp::CompareAndSet { .. } | StoreOp::Get { .. }
        )
    }
}

/// The per-operation result of an executed batch, index-aligned with the
/// submitted `Vec<StoreOp>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome<V: Value> {
    /// Result of [`StoreOp::Insert`]: `true` when the key was absent.
    Inserted(bool),
    /// Result of [`StoreOp::InsertOrReplace`]: the value it replaced.
    Replaced(Option<V>),
    /// Result of [`StoreOp::Remove`]: `true` when the key was present.
    Removed(bool),
    /// Result of [`StoreOp::RemoveEntry`]: the removed value.
    RemovedEntry(Option<V>),
    /// Result of [`StoreOp::Patch`]: the value stored *after* the patch
    /// (`None` when the patch removed the key or kept it absent).
    Patched(Option<V>),
    /// Result of [`StoreOp::CompareAndSet`]: `true` when the current value
    /// matched `expect` and the new value was stored.
    CompareSet(bool),
    /// Result of [`StoreOp::Get`]: the value observed at the operation's
    /// position in the batch.
    Got(Option<V>),
}

/// Why phase one rejected a batch. Nothing is mutated when any of these is
/// returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError<K: Key> {
    /// Two *mutations* in the batch address the same key, so the batch's
    /// net effect on that key would be an ambiguous composition and it is
    /// refused. Reads are exempt: any number of [`StoreOp::Get`]s may share
    /// a key with each other and with one mutation — a `Get` observes the
    /// same-key ops that precede it in the batch.
    DuplicateKey {
        /// The key that is mutated more than once.
        key: K,
    },
    /// The batch exceeds the backend's configured maximum.
    TooLarge {
        /// Number of operations submitted.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl<K: Key> fmt::Display for BatchError<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::DuplicateKey { key } => {
                write!(f, "batch addresses key {key:?} more than once")
            }
            BatchError::TooLarge { len, max } => {
                write!(
                    f,
                    "batch of {len} ops exceeds the configured maximum of {max}"
                )
            }
        }
    }
}

impl<K: Key> std::error::Error for BatchError<K> {}

/// All-or-nothing batched writes over a keyed backend.
///
/// # Example
///
/// ```
/// use wft_api::{BatchApply, BatchError, OpOutcome, StoreOp};
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
///
/// // A valid batch executes and reports one outcome per op, in order.
/// let outcomes = tree
///     .apply_batch(vec![
///         StoreOp::Insert { key: 1, value: 10 },
///         StoreOp::InsertOrReplace { key: 2, value: 20 },
///         StoreOp::Remove { key: 3 },
///     ])
///     .unwrap();
/// assert_eq!(
///     outcomes,
///     vec![
///         OpOutcome::Inserted(true),
///         OpOutcome::Replaced(None),
///         OpOutcome::Removed(false),
///     ]
/// );
///
/// // Validation failures reject the batch before anything mutates.
/// let err = tree
///     .apply_batch(vec![StoreOp::Remove { key: 1 }, StoreOp::RemoveEntry { key: 1 }])
///     .unwrap_err();
/// assert_eq!(err, BatchError::DuplicateKey { key: 1 });
/// assert_eq!(tree.len(), 2, "failed batch mutated nothing");
/// ```
pub trait BatchApply<K: Key, V: Value> {
    /// Validates and executes `batch`, returning one [`OpOutcome`] per
    /// submitted operation, in submission order. On `Err`, nothing was
    /// mutated.
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>>;
}

/// The shared phase-one check: rejects batches larger than `max_ops` and
/// batches *mutating* any key twice ([`StoreOp::Get`]s are free to repeat
/// keys and to accompany a mutation of the same key). Mutates nothing.
pub fn validate_batch<K: Key, V: Value>(
    batch: &[StoreOp<K, V>],
    max_ops: usize,
) -> Result<(), BatchError<K>> {
    if batch.len() > max_ops {
        return Err(BatchError::TooLarge {
            len: batch.len(),
            max: max_ops,
        });
    }
    let mut seen = HashSet::with_capacity(batch.len());
    for op in batch {
        if op.is_mutation() && !seen.insert(*op.key()) {
            return Err(BatchError::DuplicateKey { key: *op.key() });
        }
    }
    Ok(())
}

/// One [`StoreOp`] resolved against the value currently stored at its key:
/// the outcome the submitter observes, the *physical* replacement op, and
/// the key's value afterwards. Produced by [`resolve_op`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedOp<K: Key, V: Value> {
    /// The outcome a sequential execution of the op at this state reports.
    pub outcome: OpOutcome<V>,
    /// The state-independent op with the same effect at this state —
    /// always one of the four physical variants ([`StoreOp::is_physical`]);
    /// `None` for pure reads and for mutations that did not apply. This is
    /// what the durable WAL logs in place of `Patch`/`CompareAndSet`
    /// (physical logging), keeping replay-over-image per-key idempotent.
    pub physical: Option<StoreOp<K, V>>,
    /// The key's value after the op.
    pub after: Option<V>,
}

/// Resolves `op` against `current`, the value stored at `op.key()` at the
/// op's position in its batch. The caller guarantees the state cannot
/// change between the read that produced `current` and the application of
/// the returned [`ResolvedOp::physical`] — a commit gate, a single
/// sequencer thread, or plain single-threaded use.
pub fn resolve_op<K: Key, V: Value>(op: &StoreOp<K, V>, current: Option<V>) -> ResolvedOp<K, V> {
    match op {
        // The four physical variants resolve to themselves (even when they
        // do not apply — a failed `Insert` / absent-key `Remove` replays as
        // a no-op), so a classic-op WAL stream is byte-identical whether or
        // not it went through resolution.
        StoreOp::Insert { key, value } => {
            let applied = current.is_none();
            ResolvedOp {
                outcome: OpOutcome::Inserted(applied),
                physical: Some(StoreOp::Insert {
                    key: *key,
                    value: value.clone(),
                }),
                after: if applied {
                    Some(value.clone())
                } else {
                    current
                },
            }
        }
        StoreOp::InsertOrReplace { key, value } => ResolvedOp {
            outcome: OpOutcome::Replaced(current),
            physical: Some(StoreOp::InsertOrReplace {
                key: *key,
                value: value.clone(),
            }),
            after: Some(value.clone()),
        },
        StoreOp::Remove { key } => ResolvedOp {
            outcome: OpOutcome::Removed(current.is_some()),
            physical: Some(StoreOp::Remove { key: *key }),
            after: None,
        },
        StoreOp::RemoveEntry { key } => ResolvedOp {
            outcome: OpOutcome::RemovedEntry(current),
            physical: Some(StoreOp::RemoveEntry { key: *key }),
            after: None,
        },
        StoreOp::Patch { key, patch } => {
            let after = patch(current.clone());
            ResolvedOp {
                outcome: OpOutcome::Patched(after.clone()),
                physical: match &after {
                    Some(v) => Some(StoreOp::InsertOrReplace {
                        key: *key,
                        value: v.clone(),
                    }),
                    None => current.is_some().then_some(StoreOp::Remove { key: *key }),
                },
                after,
            }
        }
        StoreOp::CompareAndSet { key, expect, value } => {
            let applied = current == *expect;
            ResolvedOp {
                outcome: OpOutcome::CompareSet(applied),
                physical: applied.then(|| StoreOp::InsertOrReplace {
                    key: *key,
                    value: value.clone(),
                }),
                after: if applied {
                    Some(value.clone())
                } else {
                    current
                },
            }
        }
        StoreOp::Get { .. } => ResolvedOp {
            outcome: OpOutcome::Got(current.clone()),
            physical: None,
            after: current,
        },
    }
}

/// A ready-made [`BatchApply`] body for single-shard backends: validate,
/// then apply each operation through the [`PointMap`] interface in
/// submission order.
///
/// Serial submission order is the batch's sequential semantics: a
/// [`StoreOp::Get`] (or a `Patch`/`CompareAndSet` read) observes every
/// earlier same-key op of the same batch. Distinct-key mutations are
/// independent, so on a linearizable backend the serial order below is
/// indistinguishable from any other execution order of the same batch —
/// but the per-op applications are *not* one atomic step against
/// concurrent operations; backends with a commit protocol (the sharded
/// store, the durable journal) layer that on top.
pub fn apply_batch_point<K: Key, V: Value, M: PointMap<K, V> + ?Sized>(
    map: &M,
    batch: Vec<StoreOp<K, V>>,
) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
    validate_batch(&batch, UNBOUNDED_BATCH_OPS)?;
    Ok(batch
        .into_iter()
        .map(|op| match op {
            StoreOp::Insert { key, value } => {
                OpOutcome::Inserted(map.insert(key, value).is_applied())
            }
            StoreOp::InsertOrReplace { key, value } => {
                OpOutcome::Replaced(map.replace(key, value).into_prior())
            }
            StoreOp::Remove { key } => OpOutcome::Removed(map.remove(&key).is_applied()),
            StoreOp::RemoveEntry { key } => OpOutcome::RemovedEntry(map.remove(&key).into_prior()),
            op => {
                let resolved = resolve_op(&op, map.get(op.key()));
                match resolved.physical {
                    Some(StoreOp::Insert { key, value }) => {
                        map.insert(key, value);
                    }
                    Some(StoreOp::InsertOrReplace { key, value }) => {
                        map.replace(key, value);
                    }
                    Some(StoreOp::Remove { key }) | Some(StoreOp::RemoveEntry { key }) => {
                        map.remove(&key);
                    }
                    Some(_) => unreachable!("resolve_op only emits physical ops"),
                    None => {}
                }
                resolved.outcome
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_duplicates_and_oversize() {
        let batch: Vec<StoreOp<i64, ()>> = vec![
            StoreOp::Insert { key: 1, value: () },
            StoreOp::Remove { key: 2 },
            StoreOp::RemoveEntry { key: 1 },
        ];
        assert_eq!(
            validate_batch(&batch, UNBOUNDED_BATCH_OPS),
            Err(BatchError::DuplicateKey { key: 1 })
        );
        assert_eq!(
            validate_batch(&batch, 2),
            Err(BatchError::TooLarge { len: 3, max: 2 })
        );
        let ok: Vec<StoreOp<i64, ()>> = vec![
            StoreOp::Insert { key: 1, value: () },
            StoreOp::Remove { key: 2 },
        ];
        assert_eq!(validate_batch(&ok, 2), Ok(()));
    }

    #[test]
    fn store_op_accessors() {
        let op: StoreOp<i64, i64> = StoreOp::InsertOrReplace { key: 5, value: 50 };
        assert_eq!(op.key(), &5);
        assert!(op.is_insert());
        let op: StoreOp<i64, i64> = StoreOp::RemoveEntry { key: 9 };
        assert_eq!(op.key(), &9);
        assert!(!op.is_insert());
    }

    fn bump(current: Option<i64>) -> Option<i64> {
        Some(current.unwrap_or(0) + 1)
    }

    fn clear(_: Option<i64>) -> Option<i64> {
        None
    }

    #[test]
    fn validation_exempts_gets_from_duplicate_tracking() {
        let batch: Vec<StoreOp<i64, ()>> = vec![
            StoreOp::Get { key: 1 },
            StoreOp::Insert { key: 1, value: () },
            StoreOp::Get { key: 1 },
            StoreOp::Get { key: 2 },
        ];
        assert_eq!(validate_batch(&batch, UNBOUNDED_BATCH_OPS), Ok(()));
        let two_mutations: Vec<StoreOp<i64, ()>> = vec![
            StoreOp::Get { key: 1 },
            StoreOp::Insert { key: 1, value: () },
            StoreOp::Remove { key: 1 },
        ];
        assert_eq!(
            validate_batch(&two_mutations, UNBOUNDED_BATCH_OPS),
            Err(BatchError::DuplicateKey { key: 1 })
        );
    }

    #[test]
    fn transactional_ops_compare_by_shape_and_patch_address() {
        let a: StoreOp<i64, i64> = StoreOp::Patch {
            key: 1,
            patch: bump,
        };
        let b: StoreOp<i64, i64> = StoreOp::Patch {
            key: 1,
            patch: bump,
        };
        let c: StoreOp<i64, i64> = StoreOp::Patch {
            key: 1,
            patch: clear,
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.key(), &1);
        assert!(a.is_mutation() && !a.is_physical());
        let get: StoreOp<i64, i64> = StoreOp::Get { key: 7 };
        assert!(!get.is_mutation() && !get.is_insert());
        let cas: StoreOp<i64, i64> = StoreOp::CompareAndSet {
            key: 2,
            expect: None,
            value: 20,
        };
        assert!(cas.is_mutation() && cas.is_insert() && !cas.is_physical());
    }

    #[test]
    fn resolve_op_pins_logical_ops_to_physical_effects() {
        // Patch over a present value → InsertOrReplace of the post-value.
        let r = resolve_op(
            &StoreOp::Patch {
                key: 1,
                patch: bump,
            },
            Some(4),
        );
        assert_eq!(r.outcome, OpOutcome::Patched(Some(5)));
        assert_eq!(
            r.physical,
            Some(StoreOp::InsertOrReplace { key: 1, value: 5 })
        );
        assert_eq!(r.after, Some(5));

        // Patch that clears a present key → Remove; over an absent key → no-op.
        let r = resolve_op(
            &StoreOp::Patch {
                key: 1,
                patch: clear,
            },
            Some(4),
        );
        assert_eq!(r.physical, Some(StoreOp::Remove { key: 1 }));
        let r = resolve_op(
            &StoreOp::Patch {
                key: 1,
                patch: clear,
            },
            None,
        );
        assert_eq!(r.physical, None);
        assert_eq!(r.outcome, OpOutcome::Patched(None));

        // CAS: only a matching witness produces a physical write.
        let cas = StoreOp::CompareAndSet {
            key: 2,
            expect: Some(7),
            value: 8,
        };
        let hit = resolve_op(&cas, Some(7));
        assert_eq!(hit.outcome, OpOutcome::CompareSet(true));
        assert_eq!(
            hit.physical,
            Some(StoreOp::InsertOrReplace { key: 2, value: 8 })
        );
        let miss = resolve_op(&cas, Some(9));
        assert_eq!(miss.outcome, OpOutcome::CompareSet(false));
        assert_eq!(miss.physical, None);
        assert_eq!(miss.after, Some(9));

        // Gets never produce a physical op.
        let r = resolve_op(&StoreOp::Get { key: 3 }, Some(1));
        assert_eq!(r.outcome, OpOutcome::Got(Some(1)));
        assert_eq!(r.physical, None);

        // Physical ops resolve to themselves even when they do not apply.
        let r = resolve_op(&StoreOp::Insert { key: 4, value: 40 }, Some(1));
        assert_eq!(r.outcome, OpOutcome::Inserted(false));
        assert_eq!(r.physical, Some(StoreOp::Insert { key: 4, value: 40 }));
        assert_eq!(r.after, Some(1));
    }

    #[test]
    fn errors_render_usefully() {
        let dup: BatchError<i64> = BatchError::DuplicateKey { key: 3 };
        assert!(dup.to_string().contains("more than once"));
        let big: BatchError<i64> = BatchError::TooLarge { len: 10, max: 4 };
        assert!(big.to_string().contains("exceeds"));
    }
}
