//! Streaming range scans: snapshot-consistent cursors over a key range.
//!
//! [`RangeRead::collect_range`] returns a whole answer at once — fine for a
//! dashboard widget, fatal for a production store paginating a
//! million-entry range to a client: the entire result set is materialised in
//! memory and the caller cannot stop early. [`RangeScan`] is the streaming
//! inverse: [`scan`](RangeScan::scan) opens a [`ScanCursor`] that yields the
//! range's entries **in ascending key order, in caller-bounded chunks**
//! ([`next_chunk(limit)`](ScanCursor::next_chunk)), with three guarantees:
//!
//! 1. **Keyset pagination** — the cursor resumes strictly *after* the last
//!    yielded key. It never yields a key twice and never goes backwards, no
//!    matter what writers do between chunks.
//! 2. **Per-chunk front validation** — every chunk is read inside a
//!    [`TimestampFront`] validation sandwich against the cursor's acquired
//!    [`SnapshotToken`]. While the token stays valid, a full drain is
//!    **equivalent to one [`SnapshotRead::collect_range_at`] of that
//!    token**: the concatenated chunks are a single atomic snapshot of the
//!    range, even though they were produced across many calls.
//! 3. **Transparent resumption** — if a chunk's validation fails (a
//!    concurrent update linearized), the cursor re-anchors at a fresh
//!    settled front and re-reads only the **not-yet-yielded suffix**; the
//!    yielded prefix is never revisited. The cursor reports the downgrade
//!    through [`ScanConsistency`]: [`Snapshot`](ScanConsistency::Snapshot)
//!    while every chunk validated at the original token,
//!    [`Resumed`](ScanConsistency::Resumed) once any chunk had to
//!    re-anchor. A `Resumed` drain is still duplicate-free and ordered, and
//!    every yielded entry comes from a front-validated read — but the
//!    single-instant claim is lost, and a chunk that re-anchored *mid-way*
//!    may stitch validated reads taken at different fronts (the shared
//!    [`FrontScanCursor`] discards failed attempts whole, so each of its
//!    chunks is one linearizable read of its suffix; a sharded merge
//!    cursor validates per shard and makes no such per-chunk promise —
//!    only per-read). (A validation
//!    failure *before anything was yielded* does not degrade: the fresh
//!    front simply becomes the cursor's token, since an empty prefix is a
//!    snapshot of any state.)
//!
//! # The shared cursor and the chunk primitive
//!
//! Like [`SnapshotRead`], the whole capability derives from small
//! primitives. The chunking / validation / pagination logic is written
//! **once**, as [`FrontScanCursor`] over any [`ChunkRead`] +
//! [`TimestampFront`] backend: a chunk is a [`ChunkRead::collect_chunk`] of
//! `[resume_key, hi]` truncated to `limit`, sandwiched between front
//! validations. A single-front backend joins [`RangeScan`] with a one-line
//! delegation (`fn scan(..) { FrontScanCursor::new(self, range) }` — the
//! impl cannot be a blanket because the sharded store, whose scalar front
//! would validate every shard on every chunk, deliberately substitutes its
//! own cursor: a cross-shard streaming merge that opens one per-shard
//! `GlobalFront` cut and drains shard after shard in key order, so only
//! the touched, not-yet-drained shards can disturb a scan).
//!
//! [`ChunkRead::collect_chunk`] defaults to "collect the whole suffix, keep
//! the first `limit`" — correct for every linearizable [`RangeRead`],
//! `O(answer)` per chunk. Backends where chunking pays override it: the
//! wait-free tree and trie answer a chunk in `O(log N + limit)` via their
//! limit-bounded optimistic traversal (`collect_range_limited`,
//! early-exiting after `limit` leaves).
//!
//! # Why the sandwich argument carries over from `SnapshotRead`
//!
//! Chunk `i` is read between two observations of
//! [`front_advertised`](TimestampFront::front_advertised) equal to the
//! token's front. By monotonicity and advertise-before-effect, the abstract
//! state was constant across every such window, and equal to the state at
//! the token's (settled) acquisition instant. All chunks of a `Snapshot`
//! drain therefore read **the same state**, and keyset pagination makes
//! their concatenation exactly `collect_range` of that state — the drain
//! linearizes at the acquisition instant, regardless of how much wall-clock
//! time separates the chunks. On validation failure nothing of the failed
//! chunk is yielded; the re-read anchors a new window for the suffix only.
//!
//! # Adaptive read-ahead
//!
//! A caller paginating with small chunks would pay one full validation
//! sandwich (and one `O(log N + limit)` descent) per tiny chunk. The
//! cursors therefore decouple the *backend* read size from the *caller*
//! chunk size: each backend read targets the caller's shortfall widened to
//! an adaptive read-ahead that doubles after every validated read (capped)
//! and collapses back to exactly-requested on a validation failure — wide
//! reads widen the validation window, so under churn they would only fail
//! repeatedly. Surplus entries wait in an internal buffer; they passed the
//! same sandwich as directly yielded entries, and a pre-yield re-anchor
//! discards them (rewinding the resume key over the buffer) so the
//! `Snapshot` claim never rests on a read validated at a dead front.

use std::collections::VecDeque;
use std::marker::PhantomData;

use wft_seq::Value;

use crate::range::{RangeKey, RangeRead, RangeSpec};
// `SnapshotRead` is no longer called here (cursors build tokens from
// `settle_front` directly, so backends without the `FrontSnapshot` marker
// can scan), but the module's consistency-model docs link to it heavily.
#[allow(unused_imports)]
use crate::snapshot::SnapshotRead;
use crate::snapshot::{SnapshotToken, TimestampFront};

/// Upper bound on a cursor's adaptive read-ahead target (entries buffered
/// beyond what the caller asked for). Bounds both the memory a cursor can
/// hold and the work a single validation window must cover.
pub(crate) const READAHEAD_CAP: usize = 4096;

/// How a cursor's drain relates to its acquired [`SnapshotToken`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanConsistency {
    /// Every yielded chunk validated at the cursor's
    /// [`token`](ScanCursor::token): the entries yielded so far are a
    /// single atomic snapshot — a full drain equals one
    /// [`SnapshotRead::collect_range_at`] of the token.
    Snapshot,
    /// At least one chunk failed validation and the cursor re-anchored at a
    /// fresh front for the not-yet-yielded suffix. The drain is still
    /// duplicate-free and in ascending key order, and every yielded entry
    /// came from a front-validated read — but the chunks no longer describe
    /// one instant, and a chunk that re-anchored mid-way may stitch reads
    /// taken at different fronts (see the [module docs](self) on which
    /// cursors promise per-chunk linearizability).
    Resumed,
}

/// A streaming cursor over one key range: entries in ascending key order,
/// in caller-bounded chunks, with keyset pagination and per-chunk snapshot
/// validation. Produced by [`RangeScan::scan`]; see the [module docs](self)
/// for the consistency model.
pub trait ScanCursor<K: RangeKey, V: Value> {
    /// Yields the next (up to) `limit` entries of the range, in ascending
    /// key order, strictly after every previously yielded key. An empty
    /// vector means the range is exhausted (so does `limit == 0`, which
    /// yields nothing without advancing). Blocks only for the lock-free
    /// re-validation loop: a retry implies a concurrent update linearized.
    fn next_chunk(&mut self, limit: usize) -> Vec<(K, V)>;

    /// The snapshot token the drain is anchored at: acquired when the
    /// cursor was opened, and refreshed by re-anchors that happen before
    /// anything was yielded (an empty prefix is trivially a snapshot of
    /// any state, so such re-anchors keep the drain `Snapshot` against the
    /// fresh token instead of degrading it). While
    /// [`consistency`](ScanCursor::consistency) is
    /// [`ScanConsistency::Snapshot`], everything yielded equals a prefix of
    /// [`SnapshotRead::collect_range_at`] at this token.
    fn token(&self) -> SnapshotToken;

    /// [`ScanConsistency::Snapshot`] while every chunk validated at the
    /// original token; [`ScanConsistency::Resumed`] after any re-anchor.
    fn consistency(&self) -> ScanConsistency;

    /// Number of re-anchors performed (0 while
    /// [`ScanConsistency::Snapshot`]).
    fn resumes(&self) -> u64;

    /// `true` once the cursor has yielded every entry of its range.
    fn is_exhausted(&self) -> bool;

    /// Drains the remainder of the cursor in `limit`-sized chunks and
    /// returns the concatenation (a convenience for tests and one-shot
    /// callers; production pagination calls
    /// [`next_chunk`](ScanCursor::next_chunk) per page).
    ///
    /// # Panics
    ///
    /// Panics when `limit == 0`: a zero chunk can never drain anything, and
    /// silently returning an empty vec would present "nothing" as a
    /// complete listing (`next_chunk(0)` itself stays a non-advancing
    /// no-op for callers that probe).
    fn drain(&mut self, limit: usize) -> Vec<(K, V)>
    where
        Self: Sized,
    {
        assert!(limit > 0, "draining a scan cursor needs a positive chunk");
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk(limit);
            if chunk.is_empty() {
                return out;
            }
            out.extend(chunk);
        }
    }
}

/// The limit-bounded listing primitive behind the blanket scan cursor.
///
/// `collect_chunk(min, max, limit)` returns the `limit` **smallest** entries
/// of `[min, max]` in ascending key order (fewer when the range holds
/// fewer). The default implementation collects the whole closed range and
/// truncates — correct for every linearizable [`RangeRead`], `O(answer)`
/// per chunk. Backends with a native limit-bounded query override it
/// (`wft-core` / `wft-trie` answer in `O(log N + limit)` via the optimistic
/// traversal's early exit).
///
/// The method itself makes no snapshot promise; [`FrontScanCursor`] supplies
/// the validation sandwich around it.
pub trait ChunkRead<K: RangeKey, V: Value>: RangeRead<K, V> {
    /// The `limit` smallest entries of the closed range `[min, max]`, in
    /// ascending key order. `min > max` or `limit == 0` yields nothing.
    fn collect_chunk(&self, min: K, max: K, limit: usize) -> Vec<(K, V)> {
        if limit == 0 {
            return Vec::new();
        }
        let mut entries = self.collect_range(RangeSpec::inclusive(min, max));
        entries.truncate(limit);
        entries
    }
}

/// Streaming snapshot-consistent range scans — the first-class read API for
/// paginated and memory-bounded range consumption.
///
/// See the [module docs](self) for the consistency model. The provided
/// drivers package the two common call shapes: one full drain reporting its
/// outcome ([`scan_collect`](RangeScan::scan_collect)), and a retrying
/// drain that insists on a single-snapshot result
/// ([`scan_snapshot`](RangeScan::scan_snapshot)).
///
/// ```
/// use wft_api::{RangeScan, RangeSpec, ScanConsistency, ScanCursor};
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..100).map(|k| (k, ())));
///
/// // Page through [10, 59] five keys at a time.
/// let mut cursor = tree.scan(RangeSpec::from_bounds(10..60));
/// let first = cursor.next_chunk(5);
/// assert_eq!(first.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![10, 11, 12, 13, 14]);
///
/// // Keyset pagination: the next chunk starts strictly after key 14.
/// let second = cursor.next_chunk(5);
/// assert_eq!(second.first().map(|(k, _)| *k), Some(15));
///
/// // Quiescent: every chunk validated at the cursor's token.
/// assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
///
/// // Draining the rest completes the range; 10 keys were already yielded.
/// assert_eq!(cursor.drain(16).len(), 40);
/// assert!(cursor.is_exhausted());
/// ```
pub trait RangeScan<K: RangeKey, V: Value>: RangeRead<K, V> {
    /// The cursor type produced by [`scan`](RangeScan::scan).
    type Cursor<'a>: ScanCursor<K, V>
    where
        Self: 'a;

    /// Opens a streaming cursor over `range`, anchored at a freshly
    /// acquired snapshot token. Opening is cheap (no entries are read until
    /// the first [`next_chunk`](ScanCursor::next_chunk)).
    fn scan(&self, range: RangeSpec<K>) -> Self::Cursor<'_>;

    /// Drains one cursor over `range` in `limit`-sized chunks, returning
    /// the entries and the drain's [`ScanConsistency`] outcome. Panics
    /// when `limit == 0` (see [`ScanCursor::drain`]).
    fn scan_collect(&self, range: RangeSpec<K>, limit: usize) -> (Vec<(K, V)>, ScanConsistency) {
        let mut cursor = self.scan(range);
        let entries = cursor.drain(limit);
        (entries, cursor.consistency())
    }

    /// Drains cursors over `range` until one completes with
    /// [`ScanConsistency::Snapshot`] — a single-snapshot listing produced
    /// chunk-wise. Lock-free, not wait-free: every abandoned drain implies
    /// concurrent updates linearized (same progress class as
    /// [`SnapshotRead::snapshot_collects`]). Panics when `limit == 0`
    /// (see [`ScanCursor::drain`]).
    fn scan_snapshot(&self, range: RangeSpec<K>, limit: usize) -> Vec<(K, V)> {
        loop {
            let (entries, consistency) = self.scan_collect(range, limit);
            if consistency == ScanConsistency::Snapshot {
                return entries;
            }
            std::hint::spin_loop();
        }
    }
}

/// The shared streaming cursor over any single-front
/// ([`ChunkRead`] + [`TimestampFront`]) backend: chunks are
/// [`ChunkRead::collect_chunk`] reads of the not-yet-yielded suffix,
/// validated against the cursor's token exactly like the
/// [`SnapshotRead`] blanket's `*_at` reads, with keyset pagination and
/// transparent re-anchoring. Backends implement [`RangeScan`] by handing
/// [`FrontScanCursor::new`] out of [`RangeScan::scan`]; the cursor logic
/// itself lives only here. See the [module docs](self).
pub struct FrontScanCursor<'a, T, K, V> {
    backend: &'a T,
    /// The token the drain is anchored at. While nothing has been yielded
    /// a re-anchor simply *replaces* it (the Snapshot claim is vacuous over
    /// an empty prefix, so the drain stays `Snapshot` against the fresh
    /// token); once an entry is out, re-anchoring moves only the *working*
    /// front below and degrades the drain to `Resumed`.
    token: SnapshotToken,
    /// The front chunks currently validate against (`== token` until the
    /// first post-yield re-anchor).
    working_front: SnapshotToken,
    /// Inclusive upper end of the scan range.
    hi: K,
    /// Lower bound of the next *backend* read — the first key neither
    /// yielded nor buffered; `None` once the backend suffix is exhausted.
    resume: Option<K>,
    /// Validated entries read ahead of the caller (the adaptive chunk
    /// sizing below): every buffered entry passed the same sandwich as a
    /// directly yielded one. A pre-yield re-anchor discards the buffer and
    /// rewinds `resume` over it, so the `Snapshot` claim never rests on
    /// entries validated at a dead front.
    buffer: VecDeque<(K, V)>,
    /// Adaptive read-ahead target: grows (×2, capped at
    /// [`READAHEAD_CAP`]) after every validated backend read, resets to 0
    /// on a validation failure — small caller chunks amortise into few
    /// large backend reads while the front is quiet, and fall back to
    /// exactly-requested reads under churn (a large read widens the
    /// validation window and would keep failing).
    readahead: usize,
    /// Whether any entry has been yielded to the caller yet.
    yielded: bool,
    consistency: ScanConsistency,
    resumes: u64,
    _values: PhantomData<fn() -> V>,
}

impl<'a, T, K, V> FrontScanCursor<'a, T, K, V>
where
    T: ChunkRead<K, V> + TimestampFront,
    K: RangeKey,
    V: Value,
{
    /// Opens a cursor over `range`, acquiring a settled snapshot token.
    /// (The token is built from [`TimestampFront::settle_front`] directly —
    /// the same acquisition the blanket [`SnapshotRead`] performs — so the
    /// cursor works for backends with or without the
    /// [`FrontSnapshot`](crate::FrontSnapshot) marker.)
    pub fn new(backend: &'a T, range: RangeSpec<K>) -> Self {
        let token = SnapshotToken::new(backend.settle_front());
        let (resume, hi) = match range.to_closed() {
            Some((lo, hi)) => (Some(lo), hi),
            // Empty/inverted range: born exhausted (`hi` is never read).
            None => (None, K::MIN_KEY),
        };
        FrontScanCursor {
            backend,
            token,
            working_front: token,
            hi,
            resume,
            buffer: VecDeque::new(),
            readahead: 0,
            yielded: false,
            consistency: ScanConsistency::Snapshot,
            resumes: 0,
            _values: PhantomData,
        }
    }

    /// `true` while the working front is settled at — and unchanged since —
    /// `front` (the entry half of the sandwich; forged/stale fronts fail).
    fn front_holds(&self, front: SnapshotToken) -> bool {
        self.backend.front_resolved() == front.front()
            && self.backend.front_advertised() == front.front()
    }

    /// One sandwich attempt: reads the next backend chunk (the caller's
    /// shortfall, widened to the adaptive read-ahead target) into the
    /// buffer, or re-anchors on validation failure.
    fn fill(&mut self, limit: usize) {
        let Some(lo) = self.resume else {
            return;
        };
        let want = limit.saturating_sub(self.buffer.len()).max(self.readahead);
        // Sandwich: entry validation, suffix chunk, exit validation —
        // the same window argument as `SnapshotRead::collect_range_at`.
        if self.front_holds(self.working_front) {
            let chunk = self.backend.collect_chunk(lo, self.hi, want);
            if self.backend.front_advertised() == self.working_front.front() {
                // Validated: commit the pagination point. A short chunk
                // proves the suffix is exhausted; a full one resumes
                // strictly after its last key. The validated read earns a
                // doubled read-ahead target for the next fill.
                self.resume = if chunk.len() < want {
                    None
                } else {
                    chunk
                        .last()
                        .and_then(|(k, _)| k.successor())
                        .filter(|next| *next <= self.hi)
                };
                self.buffer.extend(chunk);
                self.readahead = want.saturating_mul(2).min(READAHEAD_CAP);
                return;
            }
        }
        // The front moved (or was not settled): re-anchor at a fresh
        // settled front and shrink the read-ahead back to exactly-requested
        // reads. Nothing of the failed attempt entered the buffer. While
        // the caller has seen nothing at all the fresh front simply
        // *becomes* the cursor's token and the read-ahead buffer is
        // discarded (rewinding `resume` over it): an empty yielded prefix
        // is trivially a snapshot of any state, but the buffered entries
        // were validated at the dead front and the drain now owes the new
        // token a fresh read of them. Once an entry is out, the yielded
        // prefix is never re-read and the scan degrades to `Resumed`
        // instead of blocking writers — buffered entries stay (each was a
        // front-validated read, which is all `Resumed` promises).
        self.readahead = 0;
        let fresh = SnapshotToken::new(self.backend.settle_front());
        self.working_front = fresh;
        if self.yielded {
            self.consistency = ScanConsistency::Resumed;
            self.resumes += 1;
        } else {
            if let Some((k, _)) = self.buffer.front() {
                self.resume = Some(*k);
            }
            self.buffer.clear();
            self.token = fresh;
        }
        std::hint::spin_loop();
    }
}

impl<T, K, V> ScanCursor<K, V> for FrontScanCursor<'_, T, K, V>
where
    T: ChunkRead<K, V> + TimestampFront,
    K: RangeKey,
    V: Value,
{
    fn next_chunk(&mut self, limit: usize) -> Vec<(K, V)> {
        if limit == 0 {
            return Vec::new();
        }
        // Top the buffer up to the caller's chunk (each fill is one
        // sandwiched backend read — possibly wider than the shortfall, per
        // the adaptive read-ahead), then hand out exactly `limit` entries.
        while self.buffer.len() < limit && self.resume.is_some() {
            self.fill(limit);
        }
        let take = limit.min(self.buffer.len());
        let chunk: Vec<(K, V)> = self.buffer.drain(..take).collect();
        self.yielded |= !chunk.is_empty();
        chunk
    }

    fn token(&self) -> SnapshotToken {
        self.token
    }

    fn consistency(&self) -> ScanConsistency {
        self.consistency
    }

    fn resumes(&self) -> u64 {
        self.resumes
    }

    fn is_exhausted(&self) -> bool {
        self.resume.is_none() && self.buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_is_plain_data() {
        assert_eq!(ScanConsistency::Snapshot, ScanConsistency::Snapshot);
        assert_ne!(ScanConsistency::Snapshot, ScanConsistency::Resumed);
    }
}
