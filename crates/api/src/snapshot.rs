//! Snapshot reads: consistent multi-range queries against one acquired
//! front.
//!
//! [`RangeRead`] makes every individual range query linearizable, but two
//! *successive* queries still observe two different states — a caller that
//! needs `count(r)` and `collect_range(r)` to agree, or needs several
//! subrange counts to sum to a total, has no way to say "read all of these
//! at the same instant". [`SnapshotRead`] adds that capability:
//!
//! 1. [`acquire_snapshot`](SnapshotRead::acquire_snapshot) captures a
//!    [`SnapshotToken`] — an opaque **front**: a monotone watermark that
//!    advances whenever an update (anywhere in the structure) linearizes;
//! 2. any number of `*_at` reads run against the token; each returns
//!    `Some(result)` only if the structure provably did not change between
//!    the token's acquisition and the read's completion, and `None` once the
//!    front has advanced (the token is *stale* — acquire a fresh one);
//! 3. the provided drivers ([`snapshot_counts`](SnapshotRead::snapshot_counts),
//!    [`snapshot_collects`](SnapshotRead::snapshot_collects),
//!    [`snapshot_count_and_collect`](SnapshotRead::snapshot_count_and_collect))
//!    package the acquire/read/retry loop for the common shapes.
//!
//! Every result set produced against one token is mutually consistent: all
//! of it equals the abstract state at a single linearization instant inside
//! the token's validity window.
//!
//! # The single-front blanket impl
//!
//! A structure that can expose its front as the two (three) watermark
//! primitives of [`TimestampFront`] gets the whole of [`SnapshotRead`] for
//! free through a blanket impl: acquisition is
//! [`settle_front`](TimestampFront::settle_front), validation compares
//! [`front_advertised`](TimestampFront::front_advertised) with the token,
//! and a `*_at` read is an ordinary [`RangeRead`] query sandwiched between
//! two validations. This is how every single tree in the workspace — the
//! wait-free tree and trie (root-queue timestamp fronts), the persistent
//! baseline (version sequence), the lock-based baseline (write version) and
//! even the lock-free linear baseline (an update gauge) — implements the
//! trait.
//!
//! The blanket is **opt-in** through the empty [`FrontSnapshot`] marker
//! rather than unconditional: a structure whose ordinary [`RangeRead`]
//! queries already carry their *own* validation machinery would pay for two
//! nested validation loops under the unconditional blanket. The sharded
//! store is exactly that structure — its cross-shard reads acquire and
//! validate a per-shard front cut internally — so it skips the marker and
//! implements [`SnapshotRead`] natively: the outer sandwich over its
//! *stitched* (cut-free) per-shard reads, one validation layer instead of
//! two. Single trees, whose plain reads are validation-free, take the
//! marker and the blanket.
//!
//! # Progress
//!
//! Snapshot reads are optimistic: a token only goes stale because a
//! concurrent update *linearized*, so a retry loop is lock-free (every
//! failed round implies system-wide progress) but not wait-free — under a
//! sustained write storm the provided drivers can retry indefinitely. The
//! per-call `*_at` methods never loop; callers that need bounded latency
//! use them directly and decide for themselves when to stop retrying.

use wft_seq::Value;

use crate::range::{RangeKey, RangeRead, RangeSpec};

/// An acquired snapshot front: an opaque monotone watermark captured by
/// [`SnapshotRead::acquire_snapshot`].
///
/// A token does not pin memory or block writers — it is a plain number. It
/// merely *identifies* a state: reads against it succeed only while the
/// structure still is in that state, and fail (return `None`) forever after
/// the front advanced past it.
///
/// ```
/// use wft_api::{SnapshotRead, SnapshotToken};
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..8).map(|k| (k, ())));
/// let token: SnapshotToken = tree.acquire_snapshot();
/// assert!(tree.snapshot_valid(&token));
/// tree.insert(100, ());
/// // The update advanced the front: the token is stale now.
/// assert!(!tree.snapshot_valid(&token));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotToken {
    front: u64,
}

impl SnapshotToken {
    /// Wraps a raw front watermark (implementations of
    /// [`SnapshotRead::acquire_snapshot`] call this; applications receive
    /// tokens, they do not forge them).
    pub fn new(front: u64) -> Self {
        SnapshotToken { front }
    }

    /// The raw front watermark the token carries.
    pub fn front(&self) -> u64 {
        self.front
    }
}

/// The low-level watermark primitives of a structure with a single monotone
/// **front**: a counter that advances whenever an update linearizes, and
/// *before* the update's effect can be observed by any read.
///
/// Implementing this trait is the whole cost of joining [`SnapshotRead`]:
/// a blanket impl derives the full snapshot API from these primitives plus
/// the structure's ordinary [`RangeRead`] queries.
///
/// # Contract
///
/// * **Monotonicity** — both watermarks only ever increase.
/// * **Advertise-before-effect** — [`front_advertised`] reaches an update's
///   watermark *before* any read can observe that update's effect. This is
///   what makes the validation sandwich sound: if `front_advertised()` is
///   unchanged across a window, no update became visible inside it.
/// * **Settled means quiescent** — the value returned by [`settle_front`]
///   was observed at an instant with no update mid-linearization:
///   everything advertised was already resolved
///   ([`front_resolved`]` == `[`front_advertised`]).
///
/// [`front_advertised`]: TimestampFront::front_advertised
/// [`settle_front`]: TimestampFront::settle_front
/// [`front_resolved`]: TimestampFront::front_resolved
pub trait TimestampFront {
    /// Returns a front watermark observed at an instant with no update in
    /// flight, helping/waiting past any in-flight update if necessary.
    ///
    /// Lock-free at best (the wait-free tree *helps* the pending update to
    /// completion); the lock-free linear baseline merely spins until the
    /// writer finishes.
    fn settle_front(&self) -> u64;

    /// The highest watermark any update has *announced* — advanced before
    /// the update's effect is visible to any read.
    fn front_advertised(&self) -> u64;

    /// The highest watermark whose update effects are fully linearized.
    /// Defaults to [`front_advertised`](TimestampFront::front_advertised),
    /// which is correct for structures whose updates commit at one atomic
    /// instant (a version CAS, a mutex release); structures with a window
    /// between announcement and visibility override it.
    fn front_resolved(&self) -> u64 {
        self.front_advertised()
    }
}

/// Opt-in marker for the single-front blanket [`SnapshotRead`] impl.
///
/// Implemented (as an empty one-liner) by every structure whose ordinary
/// [`RangeRead`] queries are validation-free linearizable reads, so
/// sandwiching them between two [`TimestampFront`] observations is exactly
/// one layer of validation. A structure whose plain reads already validate
/// internally (the sharded store's cut-acquiring cross-shard queries) must
/// *not* implement this — it provides its own [`SnapshotRead`] over its
/// cheap unvalidated read path instead of stacking the blanket's sandwich
/// on top of the internal loop. See the [module docs](self).
pub trait FrontSnapshot {}

/// Consistent multi-range reads against one acquired snapshot front.
///
/// See the [module docs](self) for the model. The `*_at` methods are the
/// primitives (one validated read each, no looping); the `snapshot_*`
/// drivers are provided retry loops for the common shapes.
///
/// ```
/// use wft_api::{RangeSpec, SnapshotRead};
/// use wft_store::ShardedStore;
///
/// // A store of four wait-free tree shards.
/// let store: ShardedStore<i64> = ShardedStore::from_entries((0..100).map(|k| (k, ())), 4);
///
/// // Three counts from ONE snapshot: the halves always sum to the total,
/// // which two independent `count` calls could not guarantee under writers.
/// let counts = store.snapshot_counts(&[
///     RangeSpec::all(),
///     RangeSpec::from_bounds(..50),
///     RangeSpec::at_least(50),
/// ]);
/// assert_eq!(counts[0], counts[1] + counts[2]);
///
/// // An aggregate and a listing that provably agree.
/// let (count, entries) = store.snapshot_count_and_collect(RangeSpec::from_bounds(10..90));
/// assert_eq!(count as usize, entries.len());
/// ```
pub trait SnapshotRead<K: RangeKey, V: Value>: RangeRead<K, V> {
    /// Acquires a snapshot token: a front with no update mid-linearization.
    fn acquire_snapshot(&self) -> SnapshotToken;

    /// `true` while no update has linearized past the token's front — i.e.
    /// while reads against the token can still succeed.
    fn snapshot_valid(&self, token: &SnapshotToken) -> bool;

    /// [`RangeRead::range_agg`] at the token's front, or `None` if the
    /// token is stale (acquire a fresh one and retry).
    fn range_agg_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Self::Agg>;

    /// [`RangeRead::count`] at the token's front, or `None` on staleness.
    fn count_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<u64>;

    /// [`RangeRead::collect_range`] at the token's front, or `None` on
    /// staleness.
    fn collect_range_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Vec<(K, V)>>;

    /// All of `ranges` counted against one snapshot. Retries with a fresh
    /// token until a whole pass validates; lock-free (each retry implies a
    /// concurrent update completed).
    fn snapshot_counts(&self, ranges: &[RangeSpec<K>]) -> Vec<u64> {
        loop {
            let token = self.acquire_snapshot();
            let mut counts = Vec::with_capacity(ranges.len());
            if ranges.iter().all(|r| match self.count_at(&token, *r) {
                Some(n) => {
                    counts.push(n);
                    true
                }
                None => false,
            }) {
                return counts;
            }
            std::hint::spin_loop();
        }
    }

    /// All of `ranges` listed against one snapshot (same retry discipline
    /// as [`snapshot_counts`](SnapshotRead::snapshot_counts)).
    fn snapshot_collects(&self, ranges: &[RangeSpec<K>]) -> Vec<Vec<(K, V)>> {
        loop {
            let token = self.acquire_snapshot();
            let mut collected = Vec::with_capacity(ranges.len());
            if ranges
                .iter()
                .all(|r| match self.collect_range_at(&token, *r) {
                    Some(entries) => {
                        collected.push(entries);
                        true
                    }
                    None => false,
                })
            {
                return collected;
            }
            std::hint::spin_loop();
        }
    }

    /// `count(range)` and `collect_range(range)` from one snapshot — the
    /// pair is guaranteed to agree (`count == entries.len()` whenever the
    /// augmentation counts keys).
    fn snapshot_count_and_collect(&self, range: RangeSpec<K>) -> (u64, Vec<(K, V)>) {
        loop {
            let token = self.acquire_snapshot();
            if let (Some(count), Some(entries)) = (
                self.count_at(&token, range),
                self.collect_range_at(&token, range),
            ) {
                return (count, entries);
            }
            std::hint::spin_loop();
        }
    }
}

/// The single-front blanket impl: any linearizable range-readable structure
/// exposing [`TimestampFront`] watermarks — and opting in through the
/// [`FrontSnapshot`] marker — is a [`SnapshotRead`].
///
/// Soundness of the sandwich: `acquire` returns a front `f` observed at an
/// instant with nothing in flight (settled); a later validation seeing
/// `front_advertised() == f` proves (by monotonicity and
/// advertise-before-effect) that no update became visible in between, so the
/// state was constant across the whole window — every linearizable read
/// inside the window observed exactly the state at `f`.
impl<K, V, T> SnapshotRead<K, V> for T
where
    K: RangeKey,
    V: Value,
    T: RangeRead<K, V> + TimestampFront + FrontSnapshot,
{
    fn acquire_snapshot(&self) -> SnapshotToken {
        SnapshotToken::new(self.settle_front())
    }

    fn snapshot_valid(&self, token: &SnapshotToken) -> bool {
        self.front_advertised() == token.front()
    }

    fn range_agg_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Self::Agg> {
        // Entry check: the front must be settled *at* the token (an update
        // may be mid-linearization if the token was forged from a raw
        // watermark; both checks are trivially true for a fresh token).
        if self.front_resolved() != token.front() || !self.snapshot_valid(token) {
            return None;
        }
        let agg = self.range_agg(range);
        self.snapshot_valid(token).then_some(agg)
    }

    fn count_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<u64> {
        if self.front_resolved() != token.front() || !self.snapshot_valid(token) {
            return None;
        }
        let count = self.count(range);
        self.snapshot_valid(token).then_some(count)
    }

    fn collect_range_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Vec<(K, V)>> {
        if self.front_resolved() != token.front() || !self.snapshot_valid(token) {
            return None;
        }
        let entries = self.collect_range(range);
        self.snapshot_valid(token).then_some(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_carries_its_front() {
        let token = SnapshotToken::new(42);
        assert_eq!(token.front(), 42);
        assert_eq!(token, SnapshotToken::new(42));
        assert_ne!(token, SnapshotToken::new(43));
    }
}
