//! # `wft-api` — the shared API surface of the workspace
//!
//! Every concurrent map in this workspace — the paper's
//! `WaitFreeTree`, the wait-free trie, the persistent / lock-based /
//! lock-free baselines and the sharded store — exposes the same abstract
//! vocabulary: point updates, aggregate range reads and two-phase batches.
//! This crate defines that vocabulary **once**, as a trait family, so that
//! harnesses, checkers, benches and applications are written against the
//! interface rather than against any one implementation:
//!
//! * [`PointMap`] — keyed updates (`insert` / `replace` / `remove`) returning
//!   a typed [`UpdateOutcome`] instead of a mix of `bool` and `Option`, plus
//!   point reads (`get` / `contains` / `len`);
//! * [`RangeRead`] — aggregate range queries (`range_agg` / `count`) and the
//!   listing query (`collect_range`) over a [`RangeSpec`] built from standard
//!   [`Bound`](std::ops::Bound)s, replacing per-implementation inclusive
//!   `(min, max)` pair conventions;
//! * [`BatchApply`] — the sharded store's two-phase batched-write vocabulary
//!   ([`StoreOp`] / [`OpOutcome`] / [`BatchError`]) promoted to the shared
//!   API, so single trees accept the same batches a sharded store does;
//! * [`SnapshotRead`] — consistent multi-range reads against one acquired
//!   [`SnapshotToken`], derived for every single-front structure from the
//!   two watermark primitives of [`TimestampFront`] by a blanket impl (a
//!   single linearizable tree is trivially its own snapshot once it can
//!   certify "nothing changed since the token was taken");
//! * [`RangeScan`] — streaming snapshot-consistent cursors: a
//!   [`ScanCursor`] yields a range in ascending key order in caller-bounded
//!   chunks with keyset pagination and per-chunk front validation, so a
//!   full drain equals one `collect_range_at` of the cursor's token (or
//!   transparently re-reads the unseen suffix and reports
//!   [`ScanConsistency::Resumed`]). Single-front backends implement it by
//!   delegating to the shared [`FrontScanCursor`] over [`ChunkRead`] +
//!   [`TimestampFront`]; the sharded store implements it natively over its
//!   per-shard front cut.
//!
//! The crate is deliberately *pure interface*: it depends only on the
//! augmentation algebra in `wft-seq` and contains no concurrency machinery.
//! Implementations live with their types (`wft-core`, `wft-trie`,
//! `wft-store`, the baselines); consumers import everything through the
//! umbrella crate's `prelude`.
//!
//! ## Range semantics, normatively
//!
//! A [`RangeSpec`] resolves to a closed key interval via
//! [`RangeSpec::to_closed`]. An empty or inverted specification (e.g.
//! `min > max`) resolves to `None`, and every implementation **must** answer
//! it with the identity aggregate, a zero count and an empty listing — this
//! crate's helpers make that the only easy behaviour to implement, and
//! `tests/range_semantics.rs` in the workspace root pins it across every
//! backend.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod outcome;
pub mod point;
pub mod range;
pub mod scan;
pub mod snapshot;

pub use batch::{
    apply_batch_point, resolve_op, validate_batch, BatchApply, BatchError, OpOutcome, PatchFn,
    ResolvedOp, StoreOp, UNBOUNDED_BATCH_OPS,
};
pub use outcome::UpdateOutcome;
pub use point::PointMap;
pub use range::{agg_over, collect_over, count_over, RangeKey, RangeRead, RangeSpec};
pub use scan::{ChunkRead, FrontScanCursor, RangeScan, ScanConsistency, ScanCursor};
pub use snapshot::{FrontSnapshot, SnapshotRead, SnapshotToken, TimestampFront};

// Re-export the augmentation vocabulary: a consumer of the trait family
// almost always needs the `Key`/`Value` bounds and an augmentation type.
pub use wft_seq::{Augmentation, Key, Pair, Size, Sum, Value};
