//! The typed result of a point update.
//!
//! The workspace's implementations historically reported updates through a
//! mix of `bool` ("was the insert successful?") and `Option<V>` ("which value
//! did the remove delete?"). [`UpdateOutcome`] replaces both: every update
//! either **applied** (it modified the map, and reports the value it
//! displaced, if any) or left the map **unchanged** (and reports the value
//! currently in the way, if any). The same two-armed shape describes
//! `insert`, `replace` and `remove`, so generic code can reason about any
//! update uniformly.

/// Result of a [`PointMap`](crate::PointMap) update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOutcome<V> {
    /// The update modified the map.
    Applied {
        /// The value the update displaced: `Some` for a `replace` that
        /// overwrote an existing entry and for every successful `remove`,
        /// `None` for an insertion into a previously absent key.
        prior: Option<V>,
    },
    /// The update left the map unchanged.
    Unchanged {
        /// The value currently associated with the key: `Some` for an
        /// `insert` that found the key taken, `None` for a `remove` of an
        /// absent key.
        current: Option<V>,
    },
}

impl<V> UpdateOutcome<V> {
    /// `true` when the update modified the map.
    pub fn is_applied(&self) -> bool {
        matches!(self, UpdateOutcome::Applied { .. })
    }

    /// The value an applied update displaced (`None` for unchanged outcomes
    /// and for insertions into absent keys).
    pub fn prior(&self) -> Option<&V> {
        match self {
            UpdateOutcome::Applied { prior } => prior.as_ref(),
            UpdateOutcome::Unchanged { .. } => None,
        }
    }

    /// Consumes the outcome, returning the displaced value of an applied
    /// update (`None` otherwise) — the shape `remove_entry` and
    /// `insert_or_replace` callers want.
    pub fn into_prior(self) -> Option<V> {
        match self {
            UpdateOutcome::Applied { prior } => prior,
            UpdateOutcome::Unchanged { .. } => None,
        }
    }

    /// `true` when the update displaced an existing entry (a `replace` that
    /// overwrote, or a successful `remove`).
    pub fn displaced_existing(&self) -> bool {
        matches!(self, UpdateOutcome::Applied { prior: Some(_) })
    }

    /// The value found in the way by an update that changed nothing (`None`
    /// for applied outcomes).
    pub fn current(&self) -> Option<&V> {
        match self {
            UpdateOutcome::Applied { .. } => None,
            UpdateOutcome::Unchanged { current } => current.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applied_accessors() {
        let fresh: UpdateOutcome<i64> = UpdateOutcome::Applied { prior: None };
        assert!(fresh.is_applied());
        assert!(!fresh.displaced_existing());
        assert_eq!(fresh.prior(), None);
        assert_eq!(fresh.current(), None);
        assert_eq!(fresh.into_prior(), None);

        let overwrote: UpdateOutcome<i64> = UpdateOutcome::Applied { prior: Some(7) };
        assert!(overwrote.is_applied());
        assert!(overwrote.displaced_existing());
        assert_eq!(overwrote.prior(), Some(&7));
        assert_eq!(overwrote.into_prior(), Some(7));
    }

    #[test]
    fn unchanged_accessors() {
        let blocked: UpdateOutcome<i64> = UpdateOutcome::Unchanged { current: Some(3) };
        assert!(!blocked.is_applied());
        assert!(!blocked.displaced_existing());
        assert_eq!(blocked.prior(), None);
        assert_eq!(blocked.current(), Some(&3));
        assert_eq!(blocked.into_prior(), None);

        let missing: UpdateOutcome<i64> = UpdateOutcome::Unchanged { current: None };
        assert_eq!(missing.current(), None);
        assert_eq!(missing.into_prior(), None);
    }
}
