//! Range specifications and the aggregate-read trait.
//!
//! Every implementation in the workspace answers range queries over a
//! *closed* key interval `[min, max]` — that is the shape the paper's
//! three-border descent and the trie's coverage pruning natively support.
//! Callers, however, think in the standard library's [`Bound`] vocabulary
//! (`..`, `a..b`, `a..=b`, …). [`RangeSpec`] is the bridge: it is built from
//! arbitrary bounds and resolved to a closed interval exactly once, at the
//! API boundary, via [`RangeSpec::to_closed`] — which is also where the
//! workspace-wide rule "an empty or inverted range yields the identity
//! aggregate / zero / no entries" is enforced, instead of being re-derived
//! (or forgotten) in each backend.

use std::ops::{Bound, RangeBounds};

use wft_seq::{Key, Value};

use crate::point::PointMap;

/// A [`Key`] with a discrete total order and known extremes, so that
/// exclusive and unbounded [`Bound`]s can be normalised to a closed interval.
///
/// Implemented for every primitive integer type, and **lexicographically
/// for 2-tuples** of `RangeKey`s — `(tenant, timestamp)`-style composite
/// keys work out of the box, with `successor`/`predecessor` carrying
/// between components exactly like integer increment carries between
/// digits, so `RangeSpec::from_bounds((t, 0)..(t + 1, 0))` selects one
/// tenant's whole sub-range.
///
/// # Newtype recipe
///
/// Domain key types should stay domain types. Wrap the discrete
/// representation in a newtype, derive the ordering, and delegate the four
/// `RangeKey` items to the wrapped component:
///
/// ```
/// use wft_api::{RangeKey, RangeRead, RangeSpec};
/// use wft_core::WaitFreeTree;
///
/// /// Milliseconds since the epoch — ordered, discrete, bounded.
/// #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// struct EventTime(u64);
///
/// impl RangeKey for EventTime {
///     const MIN_KEY: Self = EventTime(u64::MIN);
///     const MAX_KEY: Self = EventTime(u64::MAX);
///     fn successor(&self) -> Option<Self> {
///         self.0.successor().map(EventTime)
///     }
///     fn predecessor(&self) -> Option<Self> {
///         self.0.predecessor().map(EventTime)
///     }
/// }
///
/// let log: WaitFreeTree<EventTime, &'static str> = WaitFreeTree::new();
/// log.insert(EventTime(10), "boot");
/// log.insert(EventTime(25), "ready");
/// // Exclusive bounds resolve through the newtype's successor/predecessor.
/// let spec = RangeSpec::from_bounds(EventTime(10)..EventTime(25));
/// assert_eq!(RangeRead::count(&log, spec), 1);
/// ```
pub trait RangeKey: Key {
    /// The smallest key of the domain (`..=k` starts here).
    const MIN_KEY: Self;
    /// The largest key of the domain (`k..` ends here).
    const MAX_KEY: Self;
    /// The next key up, or `None` at [`RangeKey::MAX_KEY`].
    fn successor(&self) -> Option<Self>;
    /// The next key down, or `None` at [`RangeKey::MIN_KEY`].
    fn predecessor(&self) -> Option<Self>;
}

macro_rules! impl_range_key {
    ($($t:ty),*) => {
        $(impl RangeKey for $t {
            const MIN_KEY: Self = <$t>::MIN;
            const MAX_KEY: Self = <$t>::MAX;
            fn successor(&self) -> Option<Self> {
                self.checked_add(1)
            }
            fn predecessor(&self) -> Option<Self> {
                self.checked_sub(1)
            }
        })*
    };
}

impl_range_key!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

/// Lexicographic composite keys: the tuple order derived by Rust **is** the
/// lexicographic order, and `successor`/`predecessor` carry between the
/// components like integer increment carries between digits — `(a, B_MAX)`
/// steps to `(a + 1, B_MIN)`. This makes `(shard_key, sub_key)` pairs
/// first-class range keys: the whole sub-range of one `a` is
/// `[(a, B::MIN_KEY), (a, B::MAX_KEY)]`.
///
/// Wider composites nest: `((a, b), c)` is lexicographic over three
/// components.
impl<A: RangeKey, B: RangeKey> RangeKey for (A, B) {
    const MIN_KEY: Self = (A::MIN_KEY, B::MIN_KEY);
    const MAX_KEY: Self = (A::MAX_KEY, B::MAX_KEY);

    fn successor(&self) -> Option<Self> {
        match self.1.successor() {
            Some(b) => Some((self.0, b)),
            None => self.0.successor().map(|a| (a, B::MIN_KEY)),
        }
    }

    fn predecessor(&self) -> Option<Self> {
        match self.1.predecessor() {
            Some(b) => Some((self.0, b)),
            None => self.0.predecessor().map(|a| (a, B::MAX_KEY)),
        }
    }
}

/// A key range built from standard [`Bound`]s.
///
/// The canonical constructors are [`RangeSpec::from_bounds`] (any
/// `RangeBounds` expression: `.., 10..20, 5..=9`) and the shorthands
/// [`RangeSpec::inclusive`] / [`RangeSpec::all`] / [`RangeSpec::at_least`] /
/// [`RangeSpec::at_most`]. A spec carries no validity invariant — an
/// inverted spec is representable and simply resolves to the empty range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSpec<K> {
    /// Lower bound of the range.
    pub lo: Bound<K>,
    /// Upper bound of the range.
    pub hi: Bound<K>,
}

impl<K: Key> RangeSpec<K> {
    /// Builds a spec from any standard range expression
    /// (`RangeSpec::from_bounds(10..20)`, `RangeSpec::from_bounds(..)`, …).
    pub fn from_bounds<R: RangeBounds<K>>(range: R) -> Self {
        RangeSpec {
            lo: range.start_bound().cloned(),
            hi: range.end_bound().cloned(),
        }
    }

    /// The closed range `[min, max]` (the workspace's historical calling
    /// convention). `min > max` is allowed and denotes the empty range.
    pub fn inclusive(min: K, max: K) -> Self {
        RangeSpec {
            lo: Bound::Included(min),
            hi: Bound::Included(max),
        }
    }

    /// The whole key domain.
    pub fn all() -> Self {
        RangeSpec {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// Every key `>= min`.
    pub fn at_least(min: K) -> Self {
        RangeSpec {
            lo: Bound::Included(min),
            hi: Bound::Unbounded,
        }
    }

    /// Every key `<= max`.
    pub fn at_most(max: K) -> Self {
        RangeSpec {
            lo: Bound::Unbounded,
            hi: Bound::Included(max),
        }
    }

    /// The degenerate range holding exactly `key`.
    pub fn single(key: K) -> Self {
        Self::inclusive(key, key)
    }

    /// Whether `key` falls inside this spec.
    pub fn admits(&self, key: &K) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(min) => key >= min,
            Bound::Excluded(min) => key > min,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(max) => key <= max,
            Bound::Excluded(max) => key < max,
        };
        lo_ok && hi_ok
    }
}

impl<K: RangeKey> RangeSpec<K> {
    /// Resolves the spec to closed inclusive endpoints `(min, max)`, or
    /// `None` when the spec denotes the empty range (inverted endpoints, or
    /// an exclusive bound at the edge of the key domain).
    ///
    /// This is **the** normalisation point of the API: implementations call
    /// it once, answer `[min, max]` with their native closed-interval query,
    /// and return the identity / zero / empty answer on `None`. Empty and
    /// inverted ranges therefore behave identically across every backend.
    pub fn to_closed(&self) -> Option<(K, K)> {
        let min = match &self.lo {
            Bound::Unbounded => K::MIN_KEY,
            Bound::Included(min) => *min,
            Bound::Excluded(min) => min.successor()?,
        };
        let max = match &self.hi {
            Bound::Unbounded => K::MAX_KEY,
            Bound::Included(max) => *max,
            Bound::Excluded(max) => max.predecessor()?,
        };
        (min <= max).then_some((min, max))
    }
}

/// The shared body of every `RangeRead::range_agg` implementation: resolve
/// `range` once and answer with the backend's native closed-interval query,
/// or `identity` when the spec denotes the empty range.
pub fn agg_over<K: RangeKey, Agg>(
    range: RangeSpec<K>,
    identity: impl FnOnce() -> Agg,
    closed: impl FnOnce(K, K) -> Agg,
) -> Agg {
    match range.to_closed() {
        Some((min, max)) => closed(min, max),
        None => identity(),
    }
}

/// The shared body of every `RangeRead::collect_range` implementation.
pub fn collect_over<K: RangeKey, V: Value>(
    range: RangeSpec<K>,
    closed: impl FnOnce(K, K) -> Vec<(K, V)>,
) -> Vec<(K, V)> {
    match range.to_closed() {
        Some((min, max)) => closed(min, max),
        None => Vec::new(),
    }
}

/// The shared body of every `RangeRead::count` implementation: the empty
/// range counts zero, a counting augmentation (`Augmentation::count_of`)
/// answers from the aggregate, and anything else falls back to collecting.
pub fn count_over<K: RangeKey, Agg>(
    range: RangeSpec<K>,
    agg: impl FnOnce(K, K) -> Agg,
    count_of: impl FnOnce(&Agg) -> Option<u64>,
    collect_len: impl FnOnce(K, K) -> u64,
) -> u64 {
    match range.to_closed() {
        None => 0,
        Some((min, max)) => count_of(&agg(min, max)).unwrap_or_else(|| collect_len(min, max)),
    }
}

/// Aggregate and listing range queries over a [`PointMap`].
///
/// `Agg` is the aggregate the backend's augmentation produces (`u64` for a
/// size-augmented tree, `(u64, i128)` for `Pair<Size, Sum>`, …). Every
/// method takes a [`RangeSpec`]; see [`RangeSpec::to_closed`] for the
/// normative empty/inverted-range behaviour.
///
/// # Example
///
/// ```
/// use wft_api::{RangeRead, RangeSpec};
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..20).map(|k| (k, ())));
///
/// // Specs are built from standard range expressions …
/// assert_eq!(RangeRead::count(&tree, RangeSpec::from_bounds(5..15)), 10);
/// assert_eq!(RangeRead::range_agg(&tree, RangeSpec::at_least(18)), 2);
/// let listed = RangeRead::collect_range(&tree, RangeSpec::from_bounds(..3));
/// assert_eq!(listed.len(), 3);
///
/// // … and empty/inverted specs uniformly answer identity / 0 / [].
/// assert_eq!(RangeRead::count(&tree, RangeSpec::inclusive(9, 3)), 0);
/// assert!(RangeRead::collect_range(&tree, RangeSpec::from_bounds(7..7)).is_empty());
/// ```
pub trait RangeRead<K: RangeKey, V: Value>: PointMap<K, V> {
    /// The aggregate produced by [`RangeRead::range_agg`].
    type Agg;

    /// Aggregate of every entry whose key falls in `range` — the paper's
    /// asymptotically-efficient query for augmented backends (the lock-free
    /// linear baseline answers it by collecting, which is exactly the gap
    /// the paper closes).
    fn range_agg(&self, range: RangeSpec<K>) -> Self::Agg;

    /// Number of keys in `range`.
    fn count(&self, range: RangeSpec<K>) -> u64;

    /// Every `(key, value)` whose key falls in `range`, in ascending key
    /// order (linear in the output size).
    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_resolution_of_standard_ranges() {
        assert_eq!(
            RangeSpec::<i64>::from_bounds(..).to_closed(),
            Some((i64::MIN, i64::MAX))
        );
        assert_eq!(RangeSpec::from_bounds(3..10).to_closed(), Some((3, 9)));
        assert_eq!(RangeSpec::from_bounds(3..=10).to_closed(), Some((3, 10)));
        assert_eq!(RangeSpec::from_bounds(3..).to_closed(), Some((3, i64::MAX)));
        assert_eq!(
            RangeSpec::from_bounds(..=7).to_closed(),
            Some((i64::MIN, 7))
        );
        assert_eq!(
            RangeSpec::from_bounds((Bound::Excluded(3), Bound::Included(10))).to_closed(),
            Some((4, 10))
        );
    }

    #[test]
    fn empty_and_inverted_ranges_resolve_to_none() {
        assert_eq!(RangeSpec::inclusive(10, 3).to_closed(), None);
        assert_eq!(RangeSpec::from_bounds(5..5).to_closed(), None);
        // Exclusive bound at the domain edge: no representable key remains.
        assert_eq!(
            RangeSpec::from_bounds((Bound::Excluded(i64::MAX), Bound::Unbounded)).to_closed(),
            None
        );
        assert_eq!(
            RangeSpec::from_bounds((Bound::Unbounded, Bound::Excluded(i64::MIN))).to_closed(),
            None
        );
    }

    #[test]
    fn admits_respects_all_bound_kinds() {
        let spec = RangeSpec::from_bounds((Bound::Excluded(3i64), Bound::Included(7)));
        assert!(!spec.admits(&3));
        assert!(spec.admits(&4) && spec.admits(&7));
        assert!(!spec.admits(&8));
        assert!(RangeSpec::<i64>::all().admits(&i64::MIN));
        assert!(RangeSpec::single(5).admits(&5) && !RangeSpec::single(5).admits(&6));
    }

    #[test]
    fn tuple_keys_are_lexicographic_with_carry() {
        assert_eq!(<(i8, u8)>::MIN_KEY, (i8::MIN, u8::MIN));
        assert_eq!(<(i8, u8)>::MAX_KEY, (i8::MAX, u8::MAX));
        // Plain step within the second component.
        assert_eq!((3i8, 7u8).successor(), Some((3, 8)));
        assert_eq!((3i8, 7u8).predecessor(), Some((3, 6)));
        // Carry between components.
        assert_eq!((3i8, u8::MAX).successor(), Some((4, 0)));
        assert_eq!((3i8, 0u8).predecessor(), Some((2, u8::MAX)));
        // Domain edges.
        assert_eq!(<(i8, u8)>::MAX_KEY.successor(), None);
        assert_eq!(<(i8, u8)>::MIN_KEY.predecessor(), None);
        // The resolved closed interval follows the tuple order.
        let spec = RangeSpec::from_bounds((3i8, 250u8)..(4, 2));
        assert_eq!(spec.to_closed(), Some(((3, 250), (4, 1))));
        assert!(spec.admits(&(3, 255)) && spec.admits(&(4, 1)));
        assert!(!spec.admits(&(4, 2)));
        // Exclusive lower bound at a carry point.
        let spec =
            RangeSpec::from_bounds((Bound::Excluded((1i8, u8::MAX)), Bound::Included((2i8, 5u8))));
        assert_eq!(spec.to_closed(), Some(((2, 0), (2, 5))));
    }

    #[test]
    fn degenerate_and_single_specs() {
        assert_eq!(RangeSpec::single(9i64).to_closed(), Some((9, 9)));
        assert_eq!(RangeSpec::at_least(0i64).to_closed(), Some((0, i64::MAX)));
        assert_eq!(RangeSpec::at_most(0i64).to_closed(), Some((i64::MIN, 0)));
    }
}
