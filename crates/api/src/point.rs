//! The point-operation trait.

use wft_seq::{Key, Value};

use crate::batch::PatchFn;
use crate::outcome::UpdateOutcome;

/// A concurrent ordered map of point operations: keyed updates returning a
/// typed [`UpdateOutcome`], plus point reads.
///
/// Semantics (shared by every implementation in the workspace):
///
/// * [`insert`](PointMap::insert) adds the key **only if absent** (the
///   paper's `insert`): an existing key leaves the map, and its value,
///   unmodified and reports [`UpdateOutcome::Unchanged`] with the value in
///   the way.
/// * [`replace`](PointMap::replace) is the upsert: it always applies,
///   reporting the value it overwrote (if any). On the wait-free tree and
///   trie this executes as **one** `Replace` descriptor — a single
///   root-queue enqueue, linearizable, helping-compatible — not as a
///   `remove` + `insert` composition.
/// * [`remove`](PointMap::remove) deletes the key if present, reporting the
///   removed value through [`UpdateOutcome::Applied`].
///
/// The `Send + Sync` supertraits make `dyn`-style harness sharing possible:
/// every implementation is a concurrent structure already.
///
/// # Example
///
/// ```
/// use wft_api::{PointMap, UpdateOutcome};
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
///
/// // `insert` only applies when the key is absent …
/// assert_eq!(PointMap::insert(&tree, 1, 10), UpdateOutcome::Applied { prior: None });
/// assert_eq!(PointMap::insert(&tree, 1, 11), UpdateOutcome::Unchanged { current: Some(10) });
///
/// // … while `replace` is the atomic upsert, reporting what it displaced.
/// assert_eq!(PointMap::replace(&tree, 1, 12), UpdateOutcome::Applied { prior: Some(10) });
///
/// assert!(PointMap::contains(&tree, &1));
/// assert_eq!(PointMap::get(&tree, &1), Some(12));
/// assert_eq!(PointMap::remove(&tree, &1), UpdateOutcome::Applied { prior: Some(12) });
/// assert!(tree.is_empty());
/// ```
pub trait PointMap<K: Key, V: Value>: Send + Sync {
    /// Inserts `key → value` if the key is absent.
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V>;

    /// Inserts `key → value`, overwriting (and reporting) any existing
    /// value. Always applies.
    fn replace(&self, key: K, value: V) -> UpdateOutcome<V>;

    /// Removes `key`, reporting the removed value if it was present.
    fn remove(&self, key: &K) -> UpdateOutcome<V>;

    /// The value associated with `key`, if any.
    fn get(&self, key: &K) -> Option<V>;

    /// Whether `key` is present.
    ///
    /// The default forwards to [`get`](PointMap::get); implementations with
    /// a cheaper presence test should override it — the descriptor trees
    /// (`wft-core`, `wft-trie`) answer it from their presence index in
    /// `O(1)`, without a descriptor and without ever cloning the value.
    fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of keys currently stored.
    fn len(&self) -> u64;

    /// `true` when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-modify-write: stores `patch(current)` at `key` (`None` removes
    /// the key) and returns the value after the patch.
    ///
    /// The default is a **non-atomic** `get`-then-write composition — a
    /// concurrent writer can slip between the read and the write. Backends
    /// with a commit protocol override it with an atomic implementation
    /// (the sharded store routes it through its gated batch commit, the
    /// durable store through its single-sequencer journal).
    fn patch(&self, key: K, patch: PatchFn<V>) -> Option<V> {
        let after = patch(self.get(&key));
        match &after {
            Some(v) => {
                self.replace(key, v.clone());
            }
            None => {
                self.remove(&key);
            }
        }
        after
    }

    /// Stores `value` at `key` iff the current value equals `expect`
    /// (`None` = "the key is absent"), reporting whether it applied.
    ///
    /// Same atomicity caveat as [`patch`](PointMap::patch): the default is
    /// a non-atomic `get`-then-write; commit-gated backends override it.
    fn compare_and_set(&self, key: K, expect: Option<V>, value: V) -> bool {
        if self.get(&key) == expect {
            self.replace(key, value);
            true
        } else {
            false
        }
    }
}
