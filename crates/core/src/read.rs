//! Descriptor-free read fast paths.
//!
//! Every operation of the paper's scheme — including pure reads — allocates
//! a descriptor, enqueues it at the root (a global serialization point) and
//! is helped hand-over-hand down the tree. That machinery is what makes
//! *updates* wait-free and exactly-once, but reads do not need it:
//!
//! * **Point reads** (`get`/`contains`) are answered directly from the
//!   presence index. The index is the tree's resolution authority: every
//!   update's effect is fixed there, exactly once, in strict root-queue
//!   timestamp order, *at* the update's linearization point
//!   ([`wft_queue::PresenceIndex::resolve`]). A snapshot load of a key's
//!   state record therefore linearizes at the load instant — `O(1)`, no
//!   descriptor, no allocation. This lives in
//!   [`wft_queue::PresenceIndex::read_value`] /
//!   [`wft_queue::PresenceIndex::contains_key`]; the tree merely counts the
//!   hits.
//! * **Range reads** (`range_agg`/`count`/`collect_range`) attempt the
//!   **optimistic validated traversal** implemented here, in the style of
//!   lock-free range queries via validated double-collects (Brown & Avni,
//!   arXiv:1712.05101), and fall back to the descriptor slow path when
//!   validation fails.
//!
//! # The optimistic traversal and its validation rule
//!
//! The traversal walks the same pruned paths as the descriptor-based range
//! query (the three-mode scheme of the paper's appendix): it descends
//! through *partially* covered inner nodes, absorbs the stored aggregate of
//! *fully* covered children, and reads bordering leaves directly. While
//! doing so it records a **read log**:
//!
//! * every inner node it descended through, with the state-record pointer
//!   observed at the visit (the traversal aborts early if the node's
//!   descriptor queue is non-empty at the visit);
//! * every fully-covered inner child whose aggregate it absorbed, with the
//!   state-record pointer the aggregate was read from;
//! * every leaf/empty child slot it read an entry from, with the observed
//!   child pointer.
//!
//! After the walk, the log is **validated**: every recorded state pointer
//! and child pointer must be unchanged, and every descended node's queue
//! must (still) be empty. In addition — both before the walk and at
//! validation — the **root-queue head** must not be a *resolved* successful
//! update: an update is linearized the moment it is resolved through the
//! presence index (fast point reads see it from that instant), but its
//! first state/structural CAS below the fictive root may still be pending,
//! and during that whole window the update sits at the root-queue head
//! (it is only resolved as the head and only popped after its root-level
//! continuation completed). If validation succeeds, the collected result
//! is returned; otherwise the whole attempt is discarded and the caller
//! falls back to the descriptor path.
//!
//! # Linearization argument
//!
//! Claim: a validated result equals the tree's state at the moment
//! validation started. An update `U` with timestamp `t` traverses root →
//! leaf through queue entries, and on each step its effects appear in a
//! fixed order: CAS of the child's state record (the eager aggregate delta
//! of §II-C), *then* insertion into the child's queue, *then* — once `U` is
//! executed in that child — the effects one level further down, *then*
//! removal from the child's queue. Three consequences:
//!
//! 1. `U` cannot be removed from a node's queue before it has been inserted
//!    into the next node's queue (or performed its structural leaf CAS), so
//!    while `U`'s effect on any *logged* location is still pending, `U` is
//!    detectable: it sits at the root-queue head with a resolved decision
//!    (head check), or in a descended node's queue (queue check), or its
//!    state-record CAS on a descended/absorbed node has already replaced a
//!    logged pointer (pointer check), or its leaf CAS has replaced a logged
//!    child pointer (pointer check).
//! 2. An absorbed child's stored aggregate already includes every update
//!    that passed the child's parent (eager top-down maintenance), so
//!    updates still propagating strictly *inside* an absorbed subtree are
//!    correctly counted, not torn.
//! 3. Reads of nodes that a concurrent §II-E rebuild has replaced are still
//!    consistent: a replaced subtree is drained before it is unlinked and is
//!    frozen afterwards (the epoch guard keeps it alive), so a traversal
//!    that slipped into it reads a valid — merely slightly older —
//!    snapshot, and the validation of the logged ancestors decides whether
//!    that snapshot may still be returned.
//!
//! Hence if validation passes, no update changed any logged location between
//! its first read and its validation read; the contributions all correspond
//! to one prefix of the root-queue order, and the read linearizes at the
//! start of validation. Updates whose effects had not reached any logged
//! location by then are ordered after the read. That ordering is legal
//! because no operation can have *observed* such an update before this read
//! completed: the update itself has not returned, and any fast point read
//! (or failed insert) that saw its presence-index resolution implies the
//! update was resolved — in which case it still sat at the root-queue head,
//! which the validation's head check rejects.
//!
//! # Fallback conditions
//!
//! The attempt is abandoned (and [`crate::TreeStats::range_fallbacks`]
//! incremented) when a resolved successful update sits at the root-queue
//! head, when a descended node's queue is non-empty at the visit, or when
//! any logged pointer/queue/head check fails at validation. One attempt is
//! made per query: the fallback is the pre-existing wait-free descriptor
//! path, so the combined operation keeps its progress and complexity
//! guarantees (fast-path/slow-path discipline).

use crossbeam_epoch::{Atomic, Guard, Shared};
use std::sync::atomic::Ordering::Acquire;

use wft_seq::{Augmentation, Key, Value};

use crate::descriptor::RangeMode;
use crate::node::{InnerNode, Node, NodeState};
use crate::tree::WaitFreeTree;

/// A logged `(inner node, observed state pointer)` pair.
type StateObservation<'g, K, V, A> = (
    &'g InnerNode<K, V, A>,
    Shared<'g, NodeState<<A as Augmentation<K, V>>::Agg>>,
);

/// A logged `(child slot, observed child pointer)` pair.
type SlotObservation<'g, K, V, A> = (&'g Atomic<Node<K, V, A>>, Shared<'g, Node<K, V, A>>);

/// The read log of one optimistic traversal (see the module docs).
struct ReadLog<'g, K: Key, V: Value, A: Augmentation<K, V>> {
    /// Inner nodes the traversal descended through: the node plus the state
    /// pointer observed at the visit. Queues are re-checked at validation.
    descended: Vec<StateObservation<'g, K, V, A>>,
    /// Fully-covered inner children whose stored aggregate was absorbed.
    absorbed: Vec<StateObservation<'g, K, V, A>>,
    /// Leaf/empty child slots whose content was read, with the observed
    /// pointer.
    slots: Vec<SlotObservation<'g, K, V, A>>,
}

impl<'g, K: Key, V: Value, A: Augmentation<K, V>> ReadLog<'g, K, V, A> {
    fn new() -> Self {
        ReadLog {
            descended: Vec::new(),
            absorbed: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Re-reads every logged location; `true` iff nothing changed since the
    /// traversal observed it (and every descended queue is empty).
    fn validate(&self, guard: &'g Guard) -> bool {
        self.descended.iter().all(|(node, state)| {
            node.load_state_shared(guard) == *state && node.queue.is_empty(guard)
        }) && self
            .absorbed
            .iter()
            .all(|(node, state)| node.load_state_shared(guard) == *state)
            && self
                .slots
                .iter()
                // ORDERING: Acquire pairs with the AcqRel child-slot CASes; an unchanged
                // slot pointer proves no structural change was published in the window.
                .all(|(slot, child)| slot.load(Acquire, guard) == *child)
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> WaitFreeTree<K, V, A> {
    /// `true` while an update that has already been **resolved** through the
    /// presence index (i.e. linearized, visible to fast point reads) may not
    /// yet have applied its first state/structural CAS below the fictive
    /// root. Such an update always sits at the *head* of the root queue for
    /// the whole window: it is only executed — and resolved — as the head,
    /// and it is only popped after a helper completed its root-level
    /// continuation. An optimistic range read overlapping this window must
    /// fall back, or it could miss an update that a completed fast `get`
    /// already observed (a real-time ordering violation). Failed updates
    /// (`success == false`) never change observable state and are ignored.
    fn resolved_update_pending(&self, guard: &Guard) -> bool {
        match self.root_queue.peek(guard) {
            None => false,
            Some((_ts, op)) => op.kind.is_update() && op.decision.get().is_some_and(|d| d.success),
        }
    }

    /// Optimistic descriptor-free `range_agg` over the closed interval
    /// `[min, max]`. Returns `None` when validation fails and the caller
    /// must take the descriptor slow path.
    pub(crate) fn try_fast_range_agg(&self, min: K, max: K, guard: &Guard) -> Option<A::Agg> {
        if self.resolved_update_pending(guard) {
            return None;
        }
        let mut log = ReadLog::new();
        let mut acc = A::identity();
        self.walk_agg_slot(
            &self.root_child,
            RangeMode::Both { min, max },
            &mut acc,
            &mut log,
            guard,
        )?;
        if log.validate(guard) && !self.resolved_update_pending(guard) {
            Some(acc)
        } else {
            None
        }
    }

    /// Optimistic descriptor-free `collect_range` over `[min, max]`.
    /// Entries come out in key order (in-order walk). Returns `None` on
    /// validation failure.
    pub(crate) fn try_fast_collect(&self, min: K, max: K, guard: &Guard) -> Option<Vec<(K, V)>> {
        self.try_fast_collect_limited(min, max, usize::MAX, guard)
            .map(|(out, _)| out)
    }

    /// Optimistic descriptor-free collect of the (up to) `limit` smallest
    /// entries of `[min, max]` — the chunk primitive behind
    /// [`WaitFreeTree::collect_range_limited`](crate::WaitFreeTree::collect_range_limited).
    ///
    /// The in-order walk stops as soon as `limit` entries are gathered:
    /// every *skipped* slot covers only keys larger than the last yielded
    /// one, so the result is a prefix of the full listing, and validation
    /// of the *visited* log suffices — an update to any key `<= last` must
    /// change a logged location (all slots covering such keys were
    /// visited), while updates beyond the last key cannot affect a prefix
    /// claim. The second return component is `true` when the limit actually
    /// cut the walk short (the `O(log N + limit)` early exit, counted in
    /// [`crate::TreeStats::fast_range_early_exits`]). `None` on validation
    /// failure, as for the unbounded walk.
    pub(crate) fn try_fast_collect_limited(
        &self,
        min: K,
        max: K,
        limit: usize,
        guard: &Guard,
    ) -> Option<(Vec<(K, V)>, bool)> {
        if self.resolved_update_pending(guard) {
            return None;
        }
        let mut log = ReadLog::new();
        let mut out = Vec::new();
        let mut early_exit = false;
        self.walk_collect_slot(
            &self.root_child,
            &min,
            &max,
            limit,
            &mut out,
            &mut early_exit,
            &mut log,
            guard,
        )?;
        if log.validate(guard) && !self.resolved_update_pending(guard) {
            Some((out, early_exit))
        } else {
            None
        }
    }

    /// Aggregate walk continuation into a child slot: descend inner nodes,
    /// fold leaves, log what was read.
    fn walk_agg_slot<'g>(
        &self,
        slot: &'g Atomic<Node<K, V, A>>,
        mode: RangeMode<K>,
        acc: &mut A::Agg,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) -> Option<()> {
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes, so the loaded
        // node is fully initialised.
        // SAFETY: `child` is epoch-protected under `guard` (retired only via
        // `defer_destroy` after being unlinked).
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(inner) => self.walk_agg_inner(inner, mode, acc, log, guard),
            Node::Leaf(leaf) => {
                log.slots.push((slot, child));
                if mode.admits(&leaf.key) {
                    *acc = A::combine(acc, &A::of_entry(&leaf.key, &leaf.value));
                }
                Some(())
            }
            Node::Empty(_) => {
                log.slots.push((slot, child));
                Some(())
            }
        }
    }

    /// Aggregate walk at a descended inner node: the three-mode pruning of
    /// the paper's appendix, absorbing fully covered children.
    fn walk_agg_inner<'g>(
        &self,
        inner: &'g InnerNode<K, V, A>,
        mode: RangeMode<K>,
        acc: &mut A::Agg,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) -> Option<()> {
        // A pending descriptor means an update (or a helped read) is mid-
        // flight right here; bail out to the slow path immediately instead
        // of walking data that is about to change.
        if !inner.queue.is_empty(guard) {
            return None;
        }
        log.descended.push((inner, inner.load_state_shared(guard)));
        match mode {
            RangeMode::Both { min, max } => {
                if min >= inner.rsm {
                    self.walk_agg_slot(&inner.right, RangeMode::Both { min, max }, acc, log, guard)
                } else if max < inner.rsm {
                    self.walk_agg_slot(&inner.left, RangeMode::Both { min, max }, acc, log, guard)
                } else {
                    self.walk_agg_slot(
                        &inner.left,
                        RangeMode::LeftBorder { min },
                        acc,
                        log,
                        guard,
                    )?;
                    self.walk_agg_slot(
                        &inner.right,
                        RangeMode::RightBorder { max },
                        acc,
                        log,
                        guard,
                    )
                }
            }
            RangeMode::LeftBorder { min } => {
                if min >= inner.rsm {
                    self.walk_agg_slot(&inner.right, RangeMode::LeftBorder { min }, acc, log, guard)
                } else {
                    self.absorb_child(&inner.right, acc, log, guard);
                    self.walk_agg_slot(&inner.left, RangeMode::LeftBorder { min }, acc, log, guard)
                }
            }
            RangeMode::RightBorder { max } => {
                if max < inner.rsm {
                    self.walk_agg_slot(&inner.left, RangeMode::RightBorder { max }, acc, log, guard)
                } else {
                    self.absorb_child(&inner.left, acc, log, guard);
                    self.walk_agg_slot(
                        &inner.right,
                        RangeMode::RightBorder { max },
                        acc,
                        log,
                        guard,
                    )
                }
            }
        }
    }

    /// Absorbs a fully covered child: its current aggregate joins the
    /// accumulator without descending (what makes the query logarithmic).
    fn absorb_child<'g>(
        &self,
        slot: &'g Atomic<Node<K, V, A>>,
        acc: &mut A::Agg,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) {
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes.
        // SAFETY: `child` is epoch-protected under `guard`.
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(inner) => {
                let state = inner.load_state_shared(guard);
                // The stored aggregate is maintained eagerly top-down
                // (§II-C): updates still propagating inside this subtree are
                // already counted, so no queue check is needed here.
                // SAFETY: the state record is non-null by construction and
                // epoch-protected under `guard` (see `load_state`).
                *acc = A::combine(acc, &unsafe { state.deref() }.agg);
                log.absorbed.push((inner, state));
            }
            Node::Leaf(leaf) => {
                log.slots.push((slot, child));
                *acc = A::combine(acc, &A::of_entry(&leaf.key, &leaf.value));
            }
            Node::Empty(_) => {
                log.slots.push((slot, child));
            }
        }
    }

    /// Collect walk continuation into a child slot (no absorption: every
    /// overlapping subtree is descended, like the descriptor-based
    /// `collect`). Once `out` holds `limit` entries the walk stops
    /// descending: skipped slots are *not* logged, which is sound because
    /// the in-order walk guarantees they only cover keys beyond the last
    /// collected one (see `try_fast_collect_limited`).
    #[allow(clippy::too_many_arguments)]
    fn walk_collect_slot<'g>(
        &self,
        slot: &'g Atomic<Node<K, V, A>>,
        min: &K,
        max: &K,
        limit: usize,
        out: &mut Vec<(K, V)>,
        early_exit: &mut bool,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) -> Option<()> {
        if out.len() >= limit {
            *early_exit = true;
            return Some(());
        }
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes.
        // SAFETY: `child` is epoch-protected under `guard`.
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(inner) => {
                if !inner.queue.is_empty(guard) {
                    return None;
                }
                log.descended.push((inner, inner.load_state_shared(guard)));
                if min < &inner.rsm {
                    self.walk_collect_slot(
                        &inner.left,
                        min,
                        max,
                        limit,
                        out,
                        early_exit,
                        log,
                        guard,
                    )?;
                }
                if max >= &inner.rsm {
                    self.walk_collect_slot(
                        &inner.right,
                        min,
                        max,
                        limit,
                        out,
                        early_exit,
                        log,
                        guard,
                    )?;
                }
                Some(())
            }
            Node::Leaf(leaf) => {
                log.slots.push((slot, child));
                if min <= &leaf.key && &leaf.key <= max {
                    out.push((leaf.key, leaf.value.clone()));
                }
                Some(())
            }
            Node::Empty(_) => {
                log.slots.push((slot, child));
                Some(())
            }
        }
    }
}
