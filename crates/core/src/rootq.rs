//! Root queue wrapper: lock-free or wait-free timestamp allocation behind a
//! single interface (§II-D, §II-F).

use crossbeam_epoch::Guard;

use wft_queue::{Timestamp, TsQueue, WaitFreeRootQueue};

/// The root queue of the fictive root: enqueues descriptors while allocating
/// their timestamps, and supports the same `peek`/`pop_if` interface as every
/// per-node queue so the fictive root can be executed like any other node.
pub(crate) enum RootQueue<T: Clone + Send + Sync> {
    /// Lock-free variant (Michael–Scott + `tail.ts + 1`).
    LockFree(TsQueue<T>),
    /// Wait-free variant (announce array + FAA + helping, Lemma 1).
    WaitFree(WaitFreeRootQueue<T>),
}

impl<T: Clone + Send + Sync> RootQueue<T> {
    pub(crate) fn lock_free() -> Self {
        RootQueue::LockFree(TsQueue::new(Timestamp::ZERO))
    }

    pub(crate) fn wait_free(slots: usize) -> Self {
        RootQueue::WaitFree(WaitFreeRootQueue::new(slots))
    }

    /// Enqueues a descriptor and returns its freshly allocated timestamp.
    ///
    /// For the wait-free variant an announce slot is claimed for the duration
    /// of the call; if every slot is momentarily taken (more concurrent
    /// enqueuers than the queue was sized for) the call falls back to
    /// retrying the registration, which is the documented degradation mode.
    pub(crate) fn enqueue(&self, item: T, guard: &Guard) -> Timestamp {
        match self {
            RootQueue::LockFree(q) => q.enqueue_assign(item, guard),
            RootQueue::WaitFree(q) => loop {
                if let Some(slot) = q.register() {
                    let ts = q.enqueue(&slot, item, guard);
                    q.unregister(slot);
                    return ts;
                }
                std::hint::spin_loop();
            },
        }
    }

    pub(crate) fn peek(&self, guard: &Guard) -> Option<(Timestamp, T)> {
        match self {
            RootQueue::LockFree(q) => q.peek(guard),
            RootQueue::WaitFree(q) => q.peek(guard),
        }
    }

    pub(crate) fn pop_if(&self, ts: Timestamp, guard: &Guard) -> bool {
        match self {
            RootQueue::LockFree(q) => q.pop_if(ts, guard),
            RootQueue::WaitFree(q) => q.pop_if(ts, guard),
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self, guard: &Guard) -> bool {
        match self {
            RootQueue::LockFree(q) => q.is_empty(guard),
            RootQueue::WaitFree(q) => q.is_empty(guard),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;

    #[test]
    fn lock_free_round_trip() {
        let q: RootQueue<u32> = RootQueue::lock_free();
        let guard = epoch::pin();
        let t1 = q.enqueue(1, &guard);
        let t2 = q.enqueue(2, &guard);
        assert!(t1 < t2);
        assert_eq!(q.peek(&guard), Some((t1, 1)));
        assert!(q.pop_if(t1, &guard));
        assert!(q.pop_if(t2, &guard));
        assert!(q.is_empty(&guard));
    }

    #[test]
    fn wait_free_round_trip() {
        let q: RootQueue<u32> = RootQueue::wait_free(4);
        let guard = epoch::pin();
        let t1 = q.enqueue(1, &guard);
        let t2 = q.enqueue(2, &guard);
        assert!(t1 < t2);
        assert_eq!(q.peek(&guard), Some((t1, 1)));
        assert!(q.pop_if(t1, &guard));
        assert!(q.pop_if(t2, &guard));
        assert!(q.is_empty(&guard));
    }
}
