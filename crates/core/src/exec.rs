//! The hand-over-hand helping execution engine (§II-B, §II-C, §II-E).
//!
//! Every public tree operation goes through `WaitFreeTree::run_operation`:
//!
//! 1. the descriptor is enqueued at the (fictive) root and receives its
//!    timestamp — this is the linearization point;
//! 2. the initiator *helps* execute every descriptor ahead of it in the root
//!    queue, then its own, exactly as `execute_until_timestamp` (Listing 1)
//!    prescribes;
//! 3. it then walks the descriptor's `Traverse` queue (Listing 2), helping at
//!    every node on the operation's path until the queue drains;
//! 4. finally the result is assembled from the `Processed` map / the resolved
//!    decision.
//!
//! The single function `WaitFreeTree::execute_op_at` implements "executing
//! an operation in a node" (Listing 3) for both the fictive root and regular
//! inner nodes; it is idempotent and may be invoked by any number of helpers
//! concurrently:
//!
//! * update effects are fixed exactly once through the presence index
//!   (fictive root only),
//! * child state changes are guarded by `Ts_Mod`,
//! * descriptor insertion/removal uses the exactly-once `push_if` / `pop_if`,
//! * per-node partial results go through the first-write-wins `Processed`
//!   map,
//! * structural changes (leaf split / leaf removal / subtree replacement) are
//!   plain pointer CASes whose expected value makes them exactly-once.

use crossbeam_epoch::{Guard, Owned, Shared};
use std::sync::atomic::Ordering::{AcqRel, Acquire};

use wft_queue::{Timestamp, UpdateKind};
use wft_seq::{Augmentation, Key, Value};

use crate::config::TreeCounters;
use crate::descriptor::{Descriptor, OpKind, OpRef, Partial, RangeMode};
use crate::node::{
    build_subtree, collect_subtree, free_subtree_now, retire_subtree, InnerNode, LeafNode, Node,
    NodePtr, NodeState, FICTIVE_ROOT_ID,
};
use crate::tree::WaitFreeTree;

/// The node an operation is currently being executed *in*: either the
/// fictive root (which owns the root queue and the real-root child slot) or a
/// regular inner node.
pub(crate) enum ParentRef<'g, K: Key, V: Value, A: Augmentation<K, V>> {
    /// The fictive root (§II-B): no state of its own, one child — the real
    /// root.
    Fictive,
    /// A regular inner node.
    Inner(&'g InnerNode<K, V, A>),
}

// Manual Clone/Copy: the derived impls would demand `K: Copy, V: Copy`
// bounds, but the enum only holds a shared reference.
impl<K: Key, V: Value, A: Augmentation<K, V>> Clone for ParentRef<'_, K, V, A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Key, V: Value, A: Augmentation<K, V>> Copy for ParentRef<'_, K, V, A> {}

impl<K: Key, V: Value, A: Augmentation<K, V>> WaitFreeTree<K, V, A> {
    /// Runs one operation end to end and returns its descriptor (with every
    /// partial result recorded) plus its timestamp.
    pub(crate) fn run_operation(&self, kind: OpKind<K, V>) -> (OpRef<K, V, A>, Timestamp) {
        // The guard is pinned before the descriptor becomes visible and held
        // until the operation completes; every node pointer the operation
        // touches (including entries of its traverse queue) stays valid under
        // this single guard (see `NodePtr`).
        let guard = crossbeam_epoch::pin();
        let op = Descriptor::new_ref(kind);
        let ts = self.root_queue.enqueue(op.clone(), &guard);

        // Phase 1: the fictive root. Helping everything older than us also
        // resolves our own decision / pushes us towards the real root.
        self.help_until(ParentRef::Fictive, ts, &guard);

        // Phase 2: walk the traverse queue (Listing 2). Only the initiator
        // pops; helpers merely append.
        loop {
            match op.traverse.peek() {
                None => break,
                Some(node_ptr) => {
                    // SAFETY: initiator + guard pinned since before enqueue; every pointer in
                    // the traverse queue was epoch-protected when pushed.
                    let node = unsafe { node_ptr.deref(&guard) };
                    if let Node::Inner(inner) = node {
                        self.help_until(ParentRef::Inner(inner), ts, &guard);
                    }
                    op.traverse.pop();
                }
            }
        }
        (op, ts)
    }

    /// `execute_until_timestamp` (Listing 1): execute every descriptor at the
    /// head of `parent`'s queue whose timestamp does not exceed `ts`.
    pub(crate) fn help_until(&self, parent: ParentRef<'_, K, V, A>, ts: Timestamp, guard: &Guard) {
        loop {
            let head = match parent {
                ParentRef::Fictive => self.root_queue.peek(guard),
                ParentRef::Inner(inner) => inner.queue.peek(guard),
            };
            match head {
                None => return,
                Some((head_ts, head_op)) => {
                    if head_ts > ts {
                        return;
                    }
                    if head_ts != ts {
                        TreeCounters::bump(&self.counters.helped_executions);
                    }
                    self.execute_op_at(&head_op, head_ts, parent, guard);
                }
            }
        }
    }

    /// `execute_in_node` (Listing 3): executes `op` (with timestamp `ts`) in
    /// `parent`. Idempotent; safe to call from any number of helpers.
    pub(crate) fn execute_op_at(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        parent: ParentRef<'_, K, V, A>,
        guard: &Guard,
    ) {
        // --- Step 0: resolve update effects at the linearization point. ----
        if op.kind.is_update() && matches!(parent, ParentRef::Fictive) {
            self.resolve_update(op, ts, guard);
        }
        // Below the fictive root the decision is always already resolved
        // (the descriptor only enters child queues afterwards).

        let parent_id = match parent {
            ParentRef::Fictive => FICTIVE_ROOT_ID,
            ParentRef::Inner(inner) => inner.id,
        };

        // --- Step 1: work out where the operation continues and what this
        //     node contributes to the result. -------------------------------
        let mut partial: Partial<K, V, A::Agg> = match &op.kind {
            OpKind::Insert { .. } | OpKind::Replace { .. } | OpKind::Remove { .. } => Partial::Unit,
            OpKind::Lookup { .. } => Partial::Lookup(None),
            OpKind::RangeAgg { .. } => Partial::Agg(A::identity()),
            OpKind::Collect { .. } => Partial::Entries(Vec::new()),
        };

        match parent {
            ParentRef::Fictive => {
                let descend = match &op.kind {
                    // A replace always succeeds, so this also always descends.
                    OpKind::Insert { .. } | OpKind::Replace { .. } | OpKind::Remove { .. } => {
                        op.resolved_decision().success
                    }
                    _ => true,
                };
                if descend {
                    let mode = match &op.kind {
                        OpKind::RangeAgg { min, max } | OpKind::Collect { min, max } => {
                            Some(RangeMode::Both {
                                min: *min,
                                max: *max,
                            })
                        }
                        _ => None,
                    };
                    self.continue_into_child(op, ts, &self.root_child, mode, &mut partial, guard);
                }
            }
            ParentRef::Inner(inner) => match &op.kind {
                OpKind::Insert { key, .. }
                | OpKind::Replace { key, .. }
                | OpKind::Remove { key }
                | OpKind::Lookup { key } => {
                    let slot = if key < &inner.rsm {
                        &inner.left
                    } else {
                        &inner.right
                    };
                    self.continue_into_child(op, ts, slot, None, &mut partial, guard);
                }
                OpKind::RangeAgg { .. } => {
                    let mode = op
                        .modes
                        .get(&inner.id)
                        .expect("range mode recorded before the descriptor entered this queue");
                    self.continue_range_agg(op, ts, inner, mode, &mut partial, guard);
                }
                OpKind::Collect { min, max } => {
                    let mode = RangeMode::Both {
                        min: *min,
                        max: *max,
                    };
                    if min < &inner.rsm {
                        self.continue_into_child(
                            op,
                            ts,
                            &inner.left,
                            Some(mode),
                            &mut partial,
                            guard,
                        );
                    }
                    if max >= &inner.rsm {
                        self.continue_into_child(
                            op,
                            ts,
                            &inner.right,
                            Some(mode),
                            &mut partial,
                            guard,
                        );
                    }
                }
            },
        }

        // --- Step 2: record this node's partial result (unconditionally, to
        //     claim the node id against stalled helpers — §II-B). -----------
        op.processed.try_insert(parent_id, partial);

        // --- Step 3: remove the descriptor from this node's queue. ---------
        match parent {
            ParentRef::Fictive => {
                self.root_queue.pop_if(ts, guard);
            }
            ParentRef::Inner(inner) => {
                inner.queue.pop_if(ts, guard);
            }
        }
    }

    /// Resolves the effect of an update descriptor through the presence
    /// index, exactly once, and maintains the tree's size, counters and the
    /// timestamp front.
    fn resolve_update(&self, op: &OpRef<K, V, A>, ts: Timestamp, guard: &Guard) {
        let (key, update) = match &op.kind {
            OpKind::Insert { key, value } => (key, UpdateKind::Insert(value.clone())),
            OpKind::Replace { key, value } => (key, UpdateKind::Replace(value.clone())),
            OpKind::Remove { key } => (key, UpdateKind::Remove),
            _ => unreachable!("resolve_update called for a read-only operation"),
        };
        // Advertise the timestamp *before* the resolution can make the
        // update visible: a snapshot-front validation that still reads the
        // old advertised watermark afterwards has proof that no part of this
        // update was observable inside its window (monotone max, so a
        // stalled helper re-advertising an old timestamp is a no-op).
        self.advertised_ts
            // ORDERING: must be totally ordered against the SeqCst `advertised_ts` /
            // `resolved_ts` reads of the snapshot-front validation in `read.rs`;
            // Release alone would let a validator miss this update while also missing
            // its effects.
            // wft-lint: allow(seqcst) -- the snapshot-front proof needs the advertise, the update's effects and the validator's reads in one total order.
            .fetch_max(ts.get(), std::sync::atomic::Ordering::SeqCst);
        let (decision, first_application) =
            self.presence.resolve(key, ts, &update, &op.decision, guard);
        if first_application {
            // Exactly one process per descriptor reaches this branch, so the
            // size counter stays exact.
            if decision.success {
                match &op.kind {
                    OpKind::Insert { .. } => {
                        self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        TreeCounters::bump(&self.counters.inserts);
                    }
                    OpKind::Replace { .. } => {
                        // A replace only grows the tree when the key was
                        // absent; overwrites leave the length unchanged.
                        if decision.prior_value.is_none() {
                            self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        TreeCounters::bump(&self.counters.replaces);
                    }
                    OpKind::Remove { .. } => {
                        self.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                        TreeCounters::bump(&self.counters.removes);
                    }
                    _ => unreachable!(),
                }
            } else {
                TreeCounters::bump(&self.counters.failed_updates);
            }
        }
        // Resolution complete (whether by us or a faster helper — the
        // presence index call above only returns once the decision is
        // fixed): advance the resolved watermark. Every helper performs this
        // bump before it can pop the descriptor from the root queue, so
        // "popped" implies "resolved watermark advanced".
        self.resolved_ts
            // ORDERING: SeqCst for the same total-order reason as the advertise above —
            // the validator's `resolved_ts` read must be ordered against every helper's
            // bump, or "popped implies resolved" breaks.
            // wft-lint: allow(seqcst) -- pairs with the SeqCst resolved_ts reads in the snapshot-front validation; a weaker order could reorder the bump after the pop.
            .fetch_max(ts.get(), std::sync::atomic::Ordering::SeqCst);
    }

    /// Range-aggregate continuation at an inner node: implements the
    /// three-mode scheme of the appendix, adding the aggregates of fully
    /// covered subtrees to the node's partial result instead of descending
    /// into them.
    fn continue_range_agg(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        inner: &InnerNode<K, V, A>,
        mode: RangeMode<K>,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        match mode {
            RangeMode::Both { min, max } => {
                if min >= inner.rsm {
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.right,
                        Some(RangeMode::Both { min, max }),
                        partial,
                        guard,
                    );
                } else if max < inner.rsm {
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.left,
                        Some(RangeMode::Both { min, max }),
                        partial,
                        guard,
                    );
                } else {
                    // Fork node: left side keeps only the lower border, right
                    // side only the upper border.
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.left,
                        Some(RangeMode::LeftBorder { min }),
                        partial,
                        guard,
                    );
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.right,
                        Some(RangeMode::RightBorder { max }),
                        partial,
                        guard,
                    );
                }
            }
            RangeMode::LeftBorder { min } => {
                if min >= inner.rsm {
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.right,
                        Some(RangeMode::LeftBorder { min }),
                        partial,
                        guard,
                    );
                } else {
                    // The whole right subtree is inside the range: take its
                    // aggregate from the child state, do not descend.
                    // ORDERING: Acquire pairs with the AcqRel child-slot CASes, so the loaded
                    // subtree (and its state record) is fully initialised.
                    // SAFETY: `right` was loaded from an epoch-protected slot under `guard`;
                    // nodes are retired only via `retire_subtree`/`defer_destroy`.
                    let right = inner.right.load(Acquire, guard);
                    // SAFETY: as above.
                    let contribution = unsafe { right.deref() }.current_agg(guard);
                    merge_agg::<K, V, A>(partial, &contribution);
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.left,
                        Some(RangeMode::LeftBorder { min }),
                        partial,
                        guard,
                    );
                }
            }
            RangeMode::RightBorder { max } => {
                if max < inner.rsm {
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.left,
                        Some(RangeMode::RightBorder { max }),
                        partial,
                        guard,
                    );
                } else {
                    // ORDERING: Acquire pairs with the AcqRel child-slot CASes (see the
                    // symmetric right-border case above).
                    // SAFETY: `left` is epoch-protected under `guard`.
                    let left = inner.left.load(Acquire, guard);
                    // SAFETY: as above.
                    let contribution = unsafe { left.deref() }.current_agg(guard);
                    merge_agg::<K, V, A>(partial, &contribution);
                    self.continue_into_child(
                        op,
                        ts,
                        &inner.right,
                        Some(RangeMode::RightBorder { max }),
                        partial,
                        guard,
                    );
                }
            }
        }
    }

    /// Continues the execution of `op` into the child stored in `slot`
    /// (paper Listing 3, steps 2.1–2.2 plus the §II-E rebuild hook):
    ///
    /// * inner child — possibly rebuild it, register it in the traverse
    ///   queue, record its range mode, apply the update's state delta
    ///   (guarded by `Ts_Mod`) and `push_if` the descriptor into its queue;
    /// * leaf / empty child — the operation bottoms out here: apply the
    ///   structural change (insert/remove) or fold the leaf's contribution
    ///   into the node's partial result (lookups and range queries).
    fn continue_into_child(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        mode: Option<RangeMode<K>>,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        // The rebuild threshold is evaluated at most once per continuation:
        // after a rebuild the slot is re-read and execution simply continues
        // in the fresh subtree (§II-E). Re-checking would loop forever for
        // rebuild factors below 1, where a freshly built single-entry subtree
        // immediately satisfies `mod_cnt + 1 > K · init_sz` again.
        let mut rebuild_checked = false;
        loop {
            // ORDERING: Acquire pairs with the AcqRel child-slot CASes (split, remove,
            // rebuild), so the observed node is fully initialised.
            // SAFETY: `child` was loaded from an epoch-protected slot under `guard` and
            // is only retired via `defer_destroy` after being unlinked.
            let child = slot.load(Acquire, guard);
            // SAFETY: as above.
            match unsafe { child.deref() } {
                Node::Inner(c) => {
                    if op.kind.is_update() && !rebuild_checked {
                        rebuild_checked = true;
                        debug_assert!(op.resolved_decision().success);
                        let state = c.load_state(guard);
                        // `mod_cnt == 0 && ts_mod == ts - 1` is exactly the
                        // creation state of a subtree rebuilt *by this
                        // operation* (the §II-E watermark): a helper that
                        // arrives after the rebuild must not rebuild it
                        // again. Without this guard, with rebuild factors
                        // below 1 a second helper re-rebuilds the (tiny,
                        // instantly over-threshold) fresh subtree and retires
                        // it while other helpers of the same operation are
                        // still applying their state delta to it — the
                        // state-record double-free behind the historical
                        // `heavy_rebuilds` SIGSEGV flake.
                        let rebuilt_by_this_op =
                            state.mod_cnt == 0 && state.ts_mod == ts.prev_saturating();
                        if state.ts_mod < ts
                            && !rebuilt_by_this_op
                            && self.needs_rebuild(state.mod_cnt + 1, c.init_sz)
                        {
                            self.rebuild_subtree(slot, child, ts, guard);
                            // Re-read the slot: it now holds the rebuilt
                            // subtree (built by us or by another helper).
                            continue;
                        }
                    }
                    // Make the child reachable for the initiator *before* the
                    // descriptor can be executed (and popped) there.
                    op.traverse.push(NodePtr::from_shared(child));
                    if let Some(mode) = mode {
                        op.modes.try_insert(c.id, mode);
                    }
                    if op.kind.is_update() {
                        self.apply_state_delta(op, ts, c, guard);
                    }
                    c.queue.push_if(ts, op.clone(), guard);
                    return;
                }
                Node::Leaf(leaf) => {
                    self.execute_at_leaf(op, ts, slot, child, leaf, mode, partial, guard);
                    return;
                }
                Node::Empty(empty) => {
                    self.execute_at_empty(op, ts, slot, child, empty, mode, partial, guard);
                    return;
                }
            }
        }
    }

    /// Applies the augmentation delta of a successful update to an inner
    /// child's state, exactly once (the `Ts_Mod` CAS guard of §II-C).
    fn apply_state_delta(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        child: &InnerNode<K, V, A>,
        guard: &Guard,
    ) {
        let decision = op.resolved_decision();
        if !decision.success {
            return;
        }
        let state_shared = child.load_state_shared(guard);
        // SAFETY: the state record was loaded from an epoch-protected slot under
        // `guard`; it is retired via `defer_destroy` only after the CAS below
        // replaces it.
        let state = unsafe { state_shared.deref() };
        if state.ts_mod >= ts {
            // Already applied by another helper.
            return;
        }
        let new_agg = match &op.kind {
            OpKind::Insert { key, value } => A::insert_delta(&state.agg, key, value),
            OpKind::Replace { key, value } => {
                // Net effect of an overwrite on a commutative-group
                // augmentation: add the new entry, subtract the displaced
                // one (a replace of an absent key is a plain insertion).
                let added = A::insert_delta(&state.agg, key, value);
                match decision.prior_value.as_ref() {
                    Some(prior) => A::remove_delta(&added, key, prior),
                    None => added,
                }
            }
            OpKind::Remove { key } => {
                let prior = decision
                    .prior_value
                    .as_ref()
                    .expect("a successful remove always knows the removed value");
                A::remove_delta(&state.agg, key, prior)
            }
            _ => unreachable!("state deltas only exist for updates"),
        };
        let new_state = Owned::new(NodeState {
            agg: new_agg,
            mod_cnt: state.mod_cnt + 1,
            ts_mod: ts,
        });
        // Whatever the outcome, the state is now updated exactly once: either
        // by us (success) or by the helper that beat us (failure).
        // ORDERING: success AcqRel — Release publishes the new state record's
        // fields to the Acquire `load_state` calls, Acquire orders the swap after
        // the `ts_mod` check above; failure Acquire reads the record a faster
        // helper installed.
        if child
            .state
            .compare_exchange(state_shared, new_state, AcqRel, Acquire, guard)
            .is_ok()
        {
            // SAFETY: our CAS unlinked `state_shared`; only one helper's CAS succeeds
            // for a given predecessor, so the record is retired exactly once, and
            // concurrent readers hold epoch guards.
            unsafe { guard.defer_destroy(state_shared) };
        }
    }

    /// Bottom-of-path handling when the continuation child is a leaf.
    #[allow(clippy::too_many_arguments)]
    fn execute_at_leaf(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        child: Shared<'_, Node<K, V, A>>,
        leaf: &LeafNode<K, V>,
        mode: Option<RangeMode<K>>,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        match &op.kind {
            OpKind::Insert { key, value } | OpKind::Replace { key, value } => {
                if leaf.created_ts >= ts {
                    // The leaf was created by a *later* operation (or a
                    // rebuild that already accounted for us) — our change has
                    // already been applied by a faster helper and the slot
                    // has since been reused; touching it now would corrupt
                    // later operations' work.
                    return;
                }
                if &leaf.key == key {
                    if matches!(op.kind, OpKind::Insert { .. }) {
                        // The leaf already carries the key: the insert's
                        // structural change was applied through a (re)built
                        // subtree. Nothing to do.
                        return;
                    }
                    // Replace bottoming out on its own key: swap in a leaf
                    // carrying the new value. The expected-pointer CAS makes
                    // this exactly-once among helpers; a stalled helper that
                    // arrives after a rebuild re-installs the same value
                    // (idempotent), since any leaf for this key with
                    // `created_ts < ts` predates our operation's effect or
                    // carries it verbatim.
                    let new_leaf = Node::Leaf(LeafNode {
                        key: *key,
                        value: value.clone(),
                        created_ts: ts,
                    });
                    // ORDERING: success AcqRel — Release publishes the new leaf, Acquire orders
                    // the swap after the `created_ts`/key checks; failure Acquire is the
                    // conservative mirror (the result is discarded).
                    match slot.compare_exchange(child, Owned::new(new_leaf), AcqRel, Acquire, guard)
                    {
                        // SAFETY: our CAS unlinked the old leaf; single CAS winner per expected
                        // pointer means it is retired exactly once, under `guard`.
                        Ok(_) => unsafe { guard.defer_destroy(child) },
                        Err(e) => {
                            // SAFETY: the CAS failed, so `e.new` was never published and this thread
                            // still owns it exclusively; freeing it immediately is sound.
                            free_subtree_now(
                                e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                            );
                        }
                    }
                    return;
                }
                // Split the leaf: a fresh routing node over the old and the
                // new key. Its state already includes the new key, so its
                // `ts_mod` / queue watermark are set to `ts` — stalled
                // helpers of this very operation must not apply the delta or
                // enqueue the descriptor again.
                let (lo, hi) = if key < &leaf.key {
                    ((*key, value.clone()), (leaf.key, leaf.value.clone()))
                } else {
                    ((leaf.key, leaf.value.clone()), (*key, value.clone()))
                };
                let agg = A::combine(&A::of_entry(&lo.0, &lo.1), &A::of_entry(&hi.0, &hi.1));
                let split = Node::Inner(InnerNode {
                    id: self.ids.fresh(),
                    rsm: hi.0,
                    init_sz: 2,
                    left: crossbeam_epoch::Atomic::new(Node::Leaf(LeafNode {
                        key: lo.0,
                        value: lo.1,
                        created_ts: ts,
                    })),
                    right: crossbeam_epoch::Atomic::new(Node::Leaf(LeafNode {
                        key: hi.0,
                        value: hi.1,
                        created_ts: ts,
                    })),
                    state: crossbeam_epoch::Atomic::new(NodeState {
                        agg,
                        mod_cnt: 0,
                        ts_mod: ts,
                    }),
                    queue: wft_queue::TsQueue::new(ts),
                });
                // ORDERING: success AcqRel — Release publishes the fully built split
                // subtree to the Acquire child loads, Acquire orders it after the guard
                // checks; failure Acquire mirrors the success ordering.
                match slot.compare_exchange(child, Owned::new(split), AcqRel, Acquire, guard) {
                    Ok(_) => {
                        // The old leaf was replaced (its data was copied into
                        // the new subtree); retire it.
                        // SAFETY: our CAS unlinked the old leaf (single winner per expected
                        // pointer); readers are protected by their epoch guards.
                        unsafe { guard.defer_destroy(child) };
                    }
                    Err(e) => {
                        // Another helper already applied the change; discard
                        // our speculative subtree (never published).
                        // SAFETY: the CAS failed, so the speculative subtree in `e.new` was never
                        // published; this thread owns it exclusively.
                        free_subtree_now(
                            e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                        );
                    }
                }
            }
            OpKind::Remove { key } => {
                if leaf.created_ts >= ts || &leaf.key != key {
                    // Either the leaf was already replaced through a rebuild
                    // that accounted for this removal, or it belongs to a
                    // later operation that reused the slot after our removal
                    // was applied; nothing to do (and the second case must
                    // not be touched).
                    return;
                }
                // ORDERING: success AcqRel — Release publishes the Empty placeholder,
                // Acquire orders it after the `created_ts` check; failure Acquire mirrors
                // the success ordering.
                match slot.compare_exchange(
                    child,
                    Owned::new(Node::empty(ts)),
                    AcqRel,
                    Acquire,
                    guard,
                ) {
                    // SAFETY: our CAS unlinked the removed leaf (single winner per expected
                    // pointer); readers hold epoch guards until `defer_destroy` fires.
                    Ok(_) => unsafe { guard.defer_destroy(child) },
                    Err(e) => {
                        // SAFETY: the CAS failed, so the placeholder in `e.new` was never
                        // published; this thread owns it exclusively.
                        free_subtree_now(
                            e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                        );
                    }
                }
            }
            OpKind::Lookup { key } => {
                let found = if &leaf.key == key {
                    Some(leaf.value.clone())
                } else {
                    None
                };
                *partial = Partial::Lookup(Some(found));
            }
            OpKind::RangeAgg { .. } => {
                let mode = mode.expect("range queries always carry a mode");
                if mode.admits(&leaf.key) {
                    let contribution = A::of_entry(&leaf.key, &leaf.value);
                    merge_agg::<K, V, A>(partial, &contribution);
                }
            }
            OpKind::Collect { .. } => {
                let mode = mode.expect("collect always carries its bounds");
                if mode.admits(&leaf.key) {
                    if let Partial::Entries(entries) = partial {
                        entries.push((leaf.key, leaf.value.clone()));
                    }
                }
            }
        }
        let _ = ts; // timestamps are not needed at leaves beyond the CAS guards above
    }

    /// Bottom-of-path handling when the continuation child is an `Empty`
    /// placeholder.
    #[allow(clippy::too_many_arguments)]
    fn execute_at_empty(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        child: Shared<'_, Node<K, V, A>>,
        empty: &crate::node::EmptyNode,
        _mode: Option<RangeMode<K>>,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        match &op.kind {
            OpKind::Insert { key, value } | OpKind::Replace { key, value } => {
                if empty.created_ts >= ts {
                    // The placeholder was created by a later removal: our
                    // insertion has already been applied (and possibly undone
                    // again) by later-linearized operations.
                    return;
                }
                let leaf = Node::Leaf(LeafNode {
                    key: *key,
                    value: value.clone(),
                    created_ts: ts,
                });
                // ORDERING: success AcqRel — Release publishes the new leaf to the Acquire
                // child loads, Acquire orders it after the `created_ts` check; failure
                // Acquire mirrors the success ordering.
                match slot.compare_exchange(child, Owned::new(leaf), AcqRel, Acquire, guard) {
                    // SAFETY: our CAS unlinked the Empty placeholder (single winner per
                    // expected pointer); readers hold epoch guards.
                    Ok(_) => unsafe { guard.defer_destroy(child) },
                    Err(e) => {
                        // SAFETY: the CAS failed, so the leaf in `e.new` was never published; this
                        // thread owns it exclusively.
                        free_subtree_now(
                            e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                        );
                    }
                }
            }
            OpKind::Remove { .. } => {
                // A successful remove never bottoms out at Empty (the key was
                // present at the linearization point and nothing else can
                // remove it before us); a stalled helper may get here after
                // the fact, in which case there is nothing to do.
            }
            OpKind::Lookup { .. } => {
                *partial = Partial::Lookup(Some(None));
            }
            OpKind::RangeAgg { .. } | OpKind::Collect { .. } => {
                // An empty position contributes nothing.
            }
        }
    }

    /// `Mod_Cnt > K · Init_Sz` check (§II-E).
    fn needs_rebuild(&self, prospective_mod_cnt: u64, init_sz: u64) -> bool {
        (prospective_mod_cnt as f64) > self.config.rebuild_factor * (init_sz.max(1) as f64)
    }

    /// Rebuilds the subtree stored in `slot` (currently `old_child`) into a
    /// perfectly balanced one, as part of executing the operation with
    /// timestamp `op_ts` in the slot's owner (§II-E):
    ///
    /// 1. finish every operation still pending inside the subtree,
    /// 2. collect its entries,
    /// 3. build a balanced replacement whose queues/states carry the
    ///    watermark `op_ts - 1`,
    /// 4. CAS the slot; on failure another helper already installed an
    ///    equivalent replacement.
    pub(crate) fn rebuild_subtree(
        &self,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        old_child: Shared<'_, Node<K, V, A>>,
        op_ts: Timestamp,
        guard: &Guard,
    ) {
        // 1. Finish pending work. Only operations older than `op_ts` can be
        // inside (later ones cannot pass us in the parent's queue).
        self.drain_subtree(old_child, guard);

        // 2. Collect the (now physically settled) entries.
        let mut entries = Vec::new();
        collect_subtree(old_child, &mut entries, guard);

        // 3. Build the balanced replacement.
        let watermark = op_ts.prev_saturating();
        let (new_node, _agg) = build_subtree::<K, V, A>(&entries, watermark, &self.ids);

        // 4. Swap it in.
        // ORDERING: success AcqRel — Release publishes the fully built balanced
        // subtree to the Acquire child loads, Acquire orders the swap after the
        // drain/collect above (the replacement must reflect every settled entry);
        // failure Acquire reads the subtree another helper installed.
        match slot.compare_exchange(old_child, Owned::new(new_node), AcqRel, Acquire, guard) {
            Ok(_) => {
                retire_subtree(old_child, guard);
                TreeCounters::bump(&self.counters.rebuilds);
                TreeCounters::add(&self.counters.rebuilt_items, entries.len() as u64);
                // Rebuilds are the update path's heavyweight anomaly; a
                // timestamped timeline of them (arg: items copied, low 16
                // bits) is what distinguishes a helping cascade from a
                // retry storm in a post-mortem.
                wft_obs::trace::emit(
                    wft_obs::TraceKind::HelpRebuild,
                    u16::try_from(entries.len()).unwrap_or(u16::MAX - 1),
                );
            }
            Err(e) => {
                // Another helper replaced the subtree first; ours was never
                // published and can be freed immediately.
                // SAFETY: the CAS failed, so our replacement subtree was never published;
                // this thread owns it exclusively and may free it in place.
                free_subtree_now(e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }));
            }
        }
    }

    /// Executes every descriptor still queued anywhere in the subtree rooted
    /// at `node` (pre-order: a node's queue is drained before its children
    /// are visited, so descriptors pushed downwards by the drain are picked
    /// up later in the same pass).
    fn drain_subtree(&self, node: Shared<'_, Node<K, V, A>>, guard: &Guard) {
        if node.is_null() {
            return;
        }
        // SAFETY: `node` is a child pointer loaded under `guard` (or the slot value
        // passed in by `rebuild_subtree`, same guard); retirement goes through
        // `retire_subtree`, so the deref is valid.
        if let Node::Inner(inner) = unsafe { node.deref() } {
            loop {
                match inner.queue.peek(guard) {
                    None => break,
                    Some((head_ts, head_op)) => {
                        TreeCounters::bump(&self.counters.helped_executions);
                        self.execute_op_at(&head_op, head_ts, ParentRef::Inner(inner), guard);
                    }
                }
            }
            // ORDERING: Acquire pairs with the AcqRel child-slot CASes, so the drain
            // visits fully initialised children.
            self.drain_subtree(inner.left.load(Acquire, guard), guard);
            // ORDERING: as above, for the right child.
            self.drain_subtree(inner.right.load(Acquire, guard), guard);
        }
    }
}

/// Folds an aggregate contribution into a `Partial::Agg` accumulator.
fn merge_agg<K: Key, V: Value, A: Augmentation<K, V>>(
    partial: &mut Partial<K, V, A::Agg>,
    contribution: &A::Agg,
) {
    if let Partial::Agg(acc) = partial {
        *acc = A::combine(acc, contribution);
    }
}
