//! # Wait-free trees with asymptotically-efficient range queries
//!
//! A from-scratch Rust implementation of the concurrent tree described in
//! *"Wait-free Trees with Asymptotically-Efficient Range Queries"*
//! (Kokorin, Alistarh, Aksenov — IPPS 2024, arXiv:2310.05293).
//!
//! The central type is [`WaitFreeTree`]: a linearizable concurrent ordered
//! set/map whose **aggregate range queries** (`count`, `range_sum`, or any
//! user-supplied group augmentation) run in time proportional to the tree
//! height rather than to the number of keys in the range, while scalar
//! operations (`insert`, `remove`, `contains`) stay logarithmic and the whole
//! structure is non-blocking.
//!
//! ## How it works (paper §II)
//!
//! * Every inner node owns a FIFO queue of operation descriptors; operations
//!   are applied to a subtree strictly in the order their descriptors entered
//!   that queue, and the root queue doubles as the timestamp allocator that
//!   defines the linearization order.
//! * A process traverses the tree top-down; before it may execute its own
//!   operation in a node it first **helps** execute every descriptor ahead of
//!   it — a wait-free analogue of hand-over-hand locking ("hand-over-hand
//!   helping").
//! * Inner-node metadata (subtree aggregates, modification counters) lives in
//!   immutable state records swapped by CAS and guarded by the timestamp of
//!   the last modifying operation, so each operation's effect is applied
//!   exactly once no matter how many helpers race.
//! * Balance is maintained by rebuilding any subtree whose modification count
//!   exceeds a constant factor of its size at creation (§II-E), giving
//!   amortized `O(log N + |P|)` operations (Theorems 3–4).
//!
//! ## Crate layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`tree`] | the public [`WaitFreeTree`] API |
//! | [`exec`] | the hand-over-hand helping engine (Listings 1–3, rebuilds) |
//! | [`read`] | descriptor-free read fast paths (presence-index point reads, optimistic validated range traversal) |
//! | [`node`] | node layout, immutable states, subtree build/retire |
//! | [`descriptor`] | operation descriptors, range modes, partial results |
//! | [`config`] | construction parameters and operational statistics |
//!
//! The concurrent primitives (timestamped queues, traverse queue,
//! first-write-wins map, presence index, wait-free root queue) live in the
//! companion crate [`wft_queue`]; the augmentation algebra and the sequential
//! oracle live in [`wft_seq`].
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use wft_core::WaitFreeTree;
//!
//! let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
//! let writers: Vec<_> = (0..4)
//!     .map(|t| {
//!         let tree = Arc::clone(&tree);
//!         std::thread::spawn(move || {
//!             for k in 0..100 {
//!                 tree.insert(t * 100 + k, ());
//!             }
//!         })
//!     })
//!     .collect();
//! for w in writers {
//!     w.join().unwrap();
//! }
//! assert_eq!(tree.len(), 400);
//! assert_eq!(tree.count(0, 399), 400);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod config;
pub mod descriptor;
pub mod exec;
pub mod node;
pub mod read;
mod rootq;
pub mod tree;

pub use config::{ReadPath, RootQueueKind, TreeConfig, TreeStats};
pub use descriptor::{OpKind, RangeMode};
pub use tree::WaitFreeTree;

// Re-export the timestamp type: the tree's front API (`stable_ts`,
// `settle_front`, the `*_at` reads) speaks it, and downstream layers (the
// sharded store's global front) should not need a direct `wft-queue` edge.
pub use wft_queue::Timestamp;

// Re-export the shared trait family: the tree is its reference
// implementation (see the `api` module).
pub use wft_api::{
    BatchApply, PointMap, RangeRead, RangeSpec, SnapshotRead, SnapshotToken, TimestampFront,
    UpdateOutcome,
};

// Re-export the augmentation vocabulary so downstream users only need one
// import for the common case.
pub use wft_seq::{Augmentation, Key, Pair, Size, Sum, Value};
