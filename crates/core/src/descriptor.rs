//! Operation descriptors (§II-B).
//!
//! A descriptor is the shared record through which an operation is executed
//! cooperatively: it is enqueued at the root, propagated into per-node queues
//! and *helped* by any process that finds it ahead of its own operation. The
//! descriptor carries everything helpers need —
//!
//! * the operation itself ([`OpKind`]),
//! * the write-once [`Decision`] resolved at the linearization point for
//!   updates,
//! * the `Processed` first-write-wins map of per-node partial results,
//! * the per-node [`RangeMode`] map telling helpers which border of a range
//!   query applies at a node,
//! * the `Traverse` queue of nodes the initiator still has to visit.
//!
//! Descriptors are reference-counted (`Arc`); queues hold clones of the
//! handle, so a descriptor lives until the last queue node referencing it is
//! reclaimed.

use std::sync::Arc;
use std::sync::OnceLock;

use wft_queue::{Decision, FirstWriteMap, TraverseQueue};
use wft_seq::{Augmentation, Key, Value};

use crate::node::{NodeId, NodePtr};

/// Shared handle to a descriptor.
pub type OpRef<K, V, A> = Arc<Descriptor<K, V, A>>;

/// The operation a descriptor performs.
#[derive(Debug, Clone)]
pub enum OpKind<K, V> {
    /// `insert(key, value)`: add the key if absent.
    Insert {
        /// Key to insert.
        key: K,
        /// Value to associate.
        value: V,
    },
    /// `replace(key, value)`: add the key or overwrite its value — the
    /// atomic upsert. Unlike `Insert` it always takes effect; its decision
    /// records the overwritten value. One descriptor, one root-queue
    /// timestamp: the operation linearizes exactly like every other update
    /// instead of composing `remove` + `insert`.
    Replace {
        /// Key to insert or overwrite.
        key: K,
        /// Value to associate.
        value: V,
    },
    /// `remove(key)`: delete the key if present.
    Remove {
        /// Key to remove.
        key: K,
    },
    /// `contains(key)` / `get(key)`: look the key up.
    Lookup {
        /// Key to look up.
        key: K,
    },
    /// Aggregate range query over `[min, max]` (`count`, `range_sum`, ...):
    /// logarithmic time thanks to the augmentation.
    RangeAgg {
        /// Lower bound (inclusive).
        min: K,
        /// Upper bound (inclusive).
        max: K,
    },
    /// `collect(min, max)`: list all entries in `[min, max]` (linear in the
    /// output size, like prior work).
    Collect {
        /// Lower bound (inclusive).
        min: K,
        /// Upper bound (inclusive).
        max: K,
    },
}

impl<K: Key, V: Value> OpKind<K, V> {
    /// `true` for operations that may modify the tree.
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            OpKind::Insert { .. } | OpKind::Replace { .. } | OpKind::Remove { .. }
        )
    }

    /// The single routing key of a scalar operation (`insert`, `replace`,
    /// `remove`, `contains`); range queries return `None`.
    pub fn scalar_key(&self) -> Option<K> {
        match self {
            OpKind::Insert { key, .. }
            | OpKind::Replace { key, .. }
            | OpKind::Remove { key }
            | OpKind::Lookup { key } => Some(*key),
            _ => None,
        }
    }
}

/// Which part of a range query applies at a particular node.
///
/// This encodes the three procedures of the paper's appendix: descending with
/// both borders (`count_both_borders`), with only the lower border
/// (`count_left_border`) or with only the upper border
/// (`count_right_border`). The mode of a child is fully determined by the
/// parent's mode and the parent's routing key, so all helpers compute the
/// same value; it is recorded first-write-wins before the descriptor is
/// pushed into the child's queue so helpers executing the descriptor there
/// can find it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeMode<K> {
    /// Keys in `[min, max]` count.
    Both {
        /// Lower bound.
        min: K,
        /// Upper bound.
        max: K,
    },
    /// Keys `>= min` count (right border already satisfied).
    LeftBorder {
        /// Lower bound.
        min: K,
    },
    /// Keys `<= max` count (left border already satisfied).
    RightBorder {
        /// Upper bound.
        max: K,
    },
}

impl<K: Key> RangeMode<K> {
    /// Does `key` fall inside the range described by this mode?
    pub fn admits(&self, key: &K) -> bool {
        match self {
            RangeMode::Both { min, max } => min <= key && key <= max,
            RangeMode::LeftBorder { min } => key >= min,
            RangeMode::RightBorder { max } => key <= max,
        }
    }
}

/// The per-node partial result recorded in the `Processed` map.
///
/// A partial is recorded **unconditionally** for every node an operation is
/// executed in, even when the contribution is empty: claiming the node id in
/// the first-write-wins map is what protects the final result from values
/// computed by stalled helpers at the wrong linearization point (§II-B).
#[derive(Debug, Clone)]
pub enum Partial<K, V, Agg> {
    /// Contribution of a node to an aggregate range query.
    Agg(Agg),
    /// Result of a lookup resolved at this node (`None` if this node was not
    /// the bottom of the search path).
    Lookup(Option<Option<V>>),
    /// Entries contributed by this node's leaf children to a `collect`.
    Entries(Vec<(K, V)>),
    /// Updates record no data; the entry only claims the node id.
    Unit,
}

/// The shared operation descriptor.
pub struct Descriptor<K: Key, V: Value, A: Augmentation<K, V>> {
    /// The operation to perform.
    pub kind: OpKind<K, V>,
    /// Effect of an update, resolved exactly once at the linearization point
    /// (fictive-root execution) through the presence index.
    pub decision: OnceLock<Decision<V>>,
    /// `Op.Processed`: per-node partial results, first write wins.
    pub processed: FirstWriteMap<NodeId, Partial<K, V, A::Agg>>,
    /// Range-query mode per node, recorded before the descriptor enters the
    /// node's queue.
    pub modes: FirstWriteMap<NodeId, RangeMode<K>>,
    /// `Op.Traverse`: nodes the initiator still has to visit.
    pub traverse: TraverseQueue<NodePtr<K, V, A>>,
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Descriptor<K, V, A> {
    /// Creates a fresh descriptor for `kind`.
    pub fn new(kind: OpKind<K, V>) -> Self {
        // Scalar operations and aggregate range queries record `O(height +
        // |P|)` partials, where a single-bucket map is both smallest and
        // fastest; a `collect` records one partial per visited node, so its
        // map is bucketed to keep insertion constant-time over wide ranges.
        let processed = match &kind {
            OpKind::Collect { .. } => FirstWriteMap::with_buckets(256),
            _ => FirstWriteMap::new(),
        };
        Descriptor {
            kind,
            decision: OnceLock::new(),
            processed,
            modes: FirstWriteMap::new(),
            traverse: TraverseQueue::new(),
        }
    }

    /// Creates a reference-counted descriptor.
    pub fn new_ref(kind: OpKind<K, V>) -> OpRef<K, V, A> {
        Arc::new(Self::new(kind))
    }

    /// The resolved decision of an update descriptor.
    ///
    /// # Panics
    ///
    /// Panics if called before the descriptor was executed at the fictive
    /// root (the decision is always resolved there first).
    pub fn resolved_decision(&self) -> &Decision<V> {
        self.decision
            .get()
            .expect("update descriptor executed below the root before being resolved")
    }

    /// Assembles the final aggregate of a range query by combining every
    /// recorded per-node partial. Must only be called after the traverse
    /// queue has drained (the map can no longer change then).
    pub fn assemble_agg(&self) -> A::Agg {
        self.processed.fold(A::identity(), |acc, _, partial| {
            if let Partial::Agg(agg) = partial {
                A::combine(&acc, agg)
            } else {
                acc
            }
        })
    }

    /// Assembles the result of a lookup: the value found at the bottom of
    /// the search path, if any.
    pub fn assemble_lookup(&self) -> Option<V> {
        self.processed.fold(None, |acc, _, partial| {
            if acc.is_some() {
                return acc;
            }
            match partial {
                Partial::Lookup(Some(found)) => found.clone(),
                _ => acc,
            }
        })
    }

    /// Assembles a lookup into a bare presence bit without ever cloning the
    /// value (`contains` on the descriptor read path).
    pub fn assemble_lookup_present(&self) -> bool {
        self.processed.fold(false, |acc, _, partial| {
            acc || matches!(partial, Partial::Lookup(Some(Some(_))))
        })
    }

    /// Assembles a `collect` result: concatenates every node's entries and
    /// sorts them by key.
    pub fn assemble_entries(&self) -> Vec<(K, V)> {
        let mut out = self.processed.fold(Vec::new(), |mut acc, _, partial| {
            if let Partial::Entries(entries) = partial {
                acc.extend(entries.iter().cloned());
            }
            acc
        });
        out.sort_by_key(|a| a.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wft_seq::Size;

    type D = Descriptor<i64, (), Size>;

    #[test]
    fn op_kind_classification() {
        let ins: OpKind<i64, ()> = OpKind::Insert { key: 1, value: () };
        let rep: OpKind<i64, ()> = OpKind::Replace { key: 1, value: () };
        let rem: OpKind<i64, ()> = OpKind::Remove { key: 1 };
        let look: OpKind<i64, ()> = OpKind::Lookup { key: 1 };
        let agg: OpKind<i64, ()> = OpKind::RangeAgg { min: 1, max: 2 };
        assert!(ins.is_update());
        assert!(rep.is_update());
        assert!(rem.is_update());
        assert!(!look.is_update());
        assert!(!agg.is_update());
        assert_eq!(ins.scalar_key(), Some(1));
        assert_eq!(rep.scalar_key(), Some(1));
        assert_eq!(agg.scalar_key(), None);
    }

    #[test]
    fn range_mode_admits_keys_correctly() {
        let both = RangeMode::Both { min: 10, max: 20 };
        assert!(both.admits(&10) && both.admits(&20) && both.admits(&15));
        assert!(!both.admits(&9) && !both.admits(&21));
        let left = RangeMode::LeftBorder { min: 10 };
        assert!(left.admits(&10) && left.admits(&1000));
        assert!(!left.admits(&9));
        let right = RangeMode::RightBorder { max: 20 };
        assert!(right.admits(&20) && right.admits(&-5));
        assert!(!right.admits(&21));
    }

    #[test]
    fn assemble_agg_combines_partials() {
        let d = D::new(OpKind::RangeAgg { min: 0, max: 100 });
        d.processed.try_insert(1, Partial::Agg(3));
        d.processed.try_insert(2, Partial::Agg(4));
        d.processed.try_insert(3, Partial::Unit);
        assert_eq!(d.assemble_agg(), 7);
    }

    #[test]
    fn assemble_lookup_takes_the_resolved_entry() {
        let d: Descriptor<i64, i64, Size> = Descriptor::new(OpKind::Lookup { key: 5 });
        d.processed.try_insert(1, Partial::Lookup(None));
        d.processed.try_insert(2, Partial::Lookup(Some(Some(50))));
        d.processed.try_insert(3, Partial::Lookup(None));
        assert_eq!(d.assemble_lookup(), Some(50));

        let miss: Descriptor<i64, i64, Size> = Descriptor::new(OpKind::Lookup { key: 5 });
        miss.processed.try_insert(1, Partial::Lookup(None));
        miss.processed.try_insert(2, Partial::Lookup(Some(None)));
        assert_eq!(miss.assemble_lookup(), None);
    }

    #[test]
    fn assemble_entries_sorts_by_key() {
        let d: Descriptor<i64, i64, Size> = Descriptor::new(OpKind::Collect { min: 0, max: 100 });
        d.processed
            .try_insert(1, Partial::Entries(vec![(5, 50), (1, 10)]));
        d.processed.try_insert(2, Partial::Entries(vec![(3, 30)]));
        d.processed.try_insert(3, Partial::Unit);
        assert_eq!(d.assemble_entries(), vec![(1, 10), (3, 30), (5, 50)]);
    }

    #[test]
    #[should_panic(expected = "resolved")]
    fn resolved_decision_panics_when_unresolved() {
        let d = D::new(OpKind::Insert { key: 1, value: () });
        let _ = d.resolved_decision();
    }
}
