//! The public concurrent tree type.

use crossbeam_epoch::Atomic;
use std::sync::atomic::{AtomicU64, Ordering};

use wft_queue::PresenceIndex;
use wft_seq::{Augmentation, Key, Size, Value};

use crate::config::{ReadPath, RootQueueKind, TreeConfig, TreeCounters, TreeStats};
use crate::descriptor::OpKind;
use crate::node::{build_subtree, collect_subtree, free_subtree_now, IdAllocator, Node};
use crate::rootq::RootQueue;

/// A linearizable concurrent ordered set/map with wait-free operations and
/// `O(log N)`-time aggregate range queries.
///
/// This is the data structure of *"Wait-free Trees with
/// Asymptotically-Efficient Range Queries"*: an external binary search tree
/// in which every operation is funnelled through per-node descriptor queues
/// and executed cooperatively ("hand-over-hand helping"), so that
///
/// * scalar operations ([`insert`](WaitFreeTree::insert),
///   [`remove`](WaitFreeTree::remove), [`contains`](WaitFreeTree::contains),
///   [`get`](WaitFreeTree::get)) take amortized `O(log N + |P|)` time,
/// * aggregate range queries ([`count`](WaitFreeTree::count),
///   [`range_agg`](WaitFreeTree::range_agg)) take amortized
///   `O(log N + |P|)` time instead of time linear in the range size,
/// * the linear-time [`collect_range`](WaitFreeTree::collect_range) of prior
///   work is also available,
/// * all operations are linearizable (ordered by their root-queue timestamp)
///   and free of locks; with the wait-free root queue
///   ([`RootQueueKind::WaitFree`]) every operation completes in a bounded
///   number of steps.
///
/// The tree is generic over the key, the value and the
/// [`Augmentation`] maintained in inner nodes; the defaults (`V = ()`,
/// `A = Size`) give the plain integer-set interface evaluated in the paper.
///
/// # Example
///
/// ```
/// use wft_core::WaitFreeTree;
///
/// let tree: WaitFreeTree<i64> = WaitFreeTree::new();
/// tree.insert(3, ());
/// tree.insert(7, ());
/// tree.insert(40, ());
/// assert!(tree.contains(&7));
/// assert_eq!(tree.count(0, 10), 2);
/// tree.remove(&7);
/// assert_eq!(tree.count(0, 10), 1);
/// ```
pub struct WaitFreeTree<K: Key, V: Value = (), A: Augmentation<K, V> = Size> {
    pub(crate) root_queue: RootQueue<crate::descriptor::OpRef<K, V, A>>,
    pub(crate) root_child: Atomic<Node<K, V, A>>,
    pub(crate) presence: PresenceIndex<K, V>,
    pub(crate) ids: IdAllocator,
    pub(crate) config: TreeConfig,
    pub(crate) counters: TreeCounters,
    pub(crate) len: AtomicU64,
    /// Highest update timestamp whose linearization has *begun*: bumped
    /// (monotone max) before the update is resolved through the presence
    /// index, i.e. before its effect can be observed by any read. See
    /// [`WaitFreeTree::stable_ts`].
    pub(crate) advertised_ts: AtomicU64,
    /// Highest update timestamp whose linearization has *completed* (the
    /// presence-index resolution returned). Always `<= advertised_ts`;
    /// equality means no update is mid-linearization.
    pub(crate) resolved_ts: AtomicU64,
}

// SAFETY: the tree owns its nodes, queues and presence index; all shared
// mutation goes through atomics/epoch pointers, and the `Key`/`Value`
// bounds require `Send + Sync + 'static` for the payload.
unsafe impl<K: Key, V: Value, A: Augmentation<K, V>> Send for WaitFreeTree<K, V, A> {}
// SAFETY: same argument as `Send` — shared access only follows
// atomically-published, epoch-protected pointers.
unsafe impl<K: Key, V: Value, A: Augmentation<K, V>> Sync for WaitFreeTree<K, V, A> {}

impl<K: Key, V: Value, A: Augmentation<K, V>> Default for WaitFreeTree<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> WaitFreeTree<K, V, A> {
    /// Creates an empty tree with the default configuration (lock-free root
    /// queue, rebuild factor 1).
    pub fn new() -> Self {
        Self::with_config(TreeConfig::default())
    }

    /// Creates an empty tree with an explicit [`TreeConfig`].
    pub fn with_config(config: TreeConfig) -> Self {
        config.validate();
        let root_queue = match config.root_queue {
            RootQueueKind::LockFree => RootQueue::lock_free(),
            RootQueueKind::WaitFree { slots } => RootQueue::wait_free(slots),
        };
        WaitFreeTree {
            root_queue,
            root_child: Atomic::new(Node::empty(wft_queue::Timestamp::ZERO)),
            presence: PresenceIndex::with_buckets(config.presence_buckets),
            ids: IdAllocator::new(),
            config,
            counters: TreeCounters::default(),
            len: AtomicU64::new(0),
            advertised_ts: AtomicU64::new(0),
            resolved_ts: AtomicU64::new(0),
        }
    }

    /// Builds a tree containing `entries` (duplicates keep the first value),
    /// perfectly balanced, with the default configuration.
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        Self::from_entries_with_config(entries, TreeConfig::default())
    }

    /// Builds a pre-populated, perfectly balanced tree with an explicit
    /// configuration. This is how the benchmark harness creates the
    /// pre-filled trees of the paper's experiments without paying one queue
    /// round-trip per initial key.
    pub fn from_entries_with_config<I: IntoIterator<Item = (K, V)>>(
        entries: I,
        config: TreeConfig,
    ) -> Self {
        let tree = Self::with_config(config);
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);
        let guard = crossbeam_epoch::pin();
        for (key, value) in &sorted {
            tree.presence.prefill(*key, value.clone(), &guard);
        }
        let (root, _agg) = build_subtree::<K, V, A>(&sorted, wft_queue::Timestamp::ZERO, &tree.ids);
        // The tree is still private to this thread: a plain store is fine and
        // the initial Empty placeholder can be freed immediately.
        // ORDERING: AcqRel out of caution only — the tree is still private to this
        // thread (see above), so the swap cannot race; Release publishes the
        // prefilled subtree to whichever thread the tree is moved to.
        let old = tree
            .root_child
            .swap(crossbeam_epoch::Owned::new(root), Ordering::AcqRel, &guard);
        free_subtree_now(old);
        tree.len.store(sorted.len() as u64, Ordering::Relaxed);
        tree
    }

    /// Inserts `key → value`. Returns `true` if the key was absent (the
    /// paper's `insert` semantics: an existing key leaves the tree, and its
    /// value, unmodified).
    pub fn insert(&self, key: K, value: V) -> bool {
        let (op, _ts) = self.run_operation(OpKind::Insert { key, value });
        op.resolved_decision().success
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// value it replaced, if any (the atomic upsert).
    ///
    /// This executes as a **single** [`OpKind::Replace`] descriptor: one
    /// root-queue enqueue, one linearization point, helped like any other
    /// update, with the augmentation delta (new entry in, displaced entry
    /// out) applied eagerly top-down. There is no window in which a
    /// concurrent reader can observe the key absent, unlike a
    /// `remove` + `insert` composition.
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        let (op, _ts) = self.run_operation(OpKind::Replace { key, value });
        op.resolved_decision().prior_value.clone()
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        let (op, _ts) = self.run_operation(OpKind::Remove { key: *key });
        op.resolved_decision().success
    }

    /// Removes `key` and returns the value it was mapped to, if any.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        let (op, _ts) = self.run_operation(OpKind::Remove { key: *key });
        let decision = op.resolved_decision();
        if decision.success {
            decision.prior_value.clone()
        } else {
            None
        }
    }

    /// Returns `true` if `key` is in the tree.
    ///
    /// Presence-only: with [`ReadPath::Fast`] (the default) this is one
    /// presence-index bucket load — `O(1)`, no descriptor, no root-queue
    /// enqueue, and the value is **never cloned**. Under
    /// [`ReadPath::Descriptor`] the lookup runs as a full descriptor but the
    /// result is still assembled without cloning the value.
    pub fn contains(&self, key: &K) -> bool {
        if self.config.read_path == ReadPath::Fast {
            TreeCounters::bump(&self.counters.fast_point_reads);
            let guard = crossbeam_epoch::pin();
            return self.presence.contains_key(key, &guard);
        }
        let (op, _ts) = self.run_operation(OpKind::Lookup { key: *key });
        op.assemble_lookup_present()
    }

    /// Returns the value associated with `key`, if any.
    ///
    /// With [`ReadPath::Fast`] (the default) the value comes straight from
    /// the presence index — the tree's resolution authority, where every
    /// update's effect is fixed at its linearization point — in `O(1)` with
    /// a single clone of the returned value (see `crate::read`).
    pub fn get(&self, key: &K) -> Option<V> {
        if self.config.read_path == ReadPath::Fast {
            TreeCounters::bump(&self.counters.fast_point_reads);
            let guard = crossbeam_epoch::pin();
            return self.presence.read_value(key, &guard);
        }
        let (op, _ts) = self.run_operation(OpKind::Lookup { key: *key });
        op.assemble_lookup()
    }

    /// Aggregate of every entry with key in `[min, max]` under the tree's
    /// augmentation — the paper's asymptotically efficient aggregate range
    /// query (`count`, `range_sum`, ... depending on `A`).
    ///
    /// With [`ReadPath::Fast`] (the default) the query first attempts an
    /// optimistic descriptor-free traversal that validates its read set and
    /// falls back to the descriptor path on contention (see `crate::read`
    /// for the linearization argument and the fallback conditions).
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        if min > max {
            return A::identity();
        }
        if self.config.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for attempt in 1..=self.config.fast_read_attempts {
                if let Some(agg) = self.try_fast_range_agg(min, max, &guard) {
                    TreeCounters::bump(&self.counters.fast_range_hits);
                    return agg;
                }
                // A failed validation usually means one in-flight update; a
                // bounded retry beats paying the descriptor slow path.
                if attempt < self.config.fast_read_attempts {
                    TreeCounters::bump(&self.counters.fast_range_retries);
                }
            }
            self.note_range_fallback();
        }
        let (op, _ts) = self.run_operation(OpKind::RangeAgg { min, max });
        op.assemble_agg()
    }

    /// Every `(key, value)` with key in `[min, max]`, in key order. Linear in
    /// the number of reported entries (the `collect` query of prior work).
    ///
    /// Attempts the same optimistic descriptor-free traversal as
    /// [`range_agg`](WaitFreeTree::range_agg) under [`ReadPath::Fast`].
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if min > max {
            return Vec::new();
        }
        if self.config.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for attempt in 1..=self.config.fast_read_attempts {
                if let Some(entries) = self.try_fast_collect(min, max, &guard) {
                    TreeCounters::bump(&self.counters.fast_range_hits);
                    return entries;
                }
                if attempt < self.config.fast_read_attempts {
                    TreeCounters::bump(&self.counters.fast_range_retries);
                }
            }
            self.note_range_fallback();
        }
        let (op, _ts) = self.run_operation(OpKind::Collect { min, max });
        op.assemble_entries()
    }

    /// The (up to) `limit` smallest entries with key in `[min, max]`, in key
    /// order — the chunk primitive of the streaming scan API
    /// (`wft_api::RangeScan`).
    ///
    /// Under [`ReadPath::Fast`] (the default) the optimistic traversal
    /// **early-exits** once `limit` entries are gathered, so a chunk costs
    /// `O(log N + limit)` instead of `O(answer)`: skipped subtrees only
    /// cover keys beyond the last collected one, so the result is provably
    /// a prefix of the full listing (see `crate::read`). Early exits are
    /// counted in [`TreeStats::fast_range_early_exits`]. The descriptor
    /// fallback collects the full range and truncates — correct, linear,
    /// and only taken when every optimistic attempt failed validation.
    pub fn collect_range_limited(&self, min: K, max: K, limit: usize) -> Vec<(K, V)> {
        if min > max || limit == 0 {
            return Vec::new();
        }
        if self.config.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for attempt in 1..=self.config.fast_read_attempts {
                if let Some((entries, early_exit)) =
                    self.try_fast_collect_limited(min, max, limit, &guard)
                {
                    TreeCounters::bump(&self.counters.fast_range_hits);
                    if early_exit {
                        TreeCounters::bump(&self.counters.fast_range_early_exits);
                    }
                    return entries;
                }
                if attempt < self.config.fast_read_attempts {
                    TreeCounters::bump(&self.counters.fast_range_retries);
                }
            }
            self.note_range_fallback();
        }
        let (op, _ts) = self.run_operation(OpKind::Collect { min, max });
        let mut entries = op.assemble_entries();
        entries.truncate(limit);
        entries
    }

    /// Number of keys currently stored (exact once all in-flight updates have
    /// returned; maintained at update linearization points).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when the tree stores no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// A snapshot of the operational counters (helping events, rebuilds, …).
    pub fn stats(&self) -> TreeStats {
        self.counters.snapshot()
    }

    /// Counts a descriptor-path fallback and drops a timeline event into
    /// the global trace ring: fallbacks are the tree's per-read anomaly
    /// signal, and a burst of them is exactly what a post-mortem needs to
    /// see with timestamps (cf. `wft_obs::trace`).
    fn note_range_fallback(&self) {
        TreeCounters::bump(&self.counters.range_fallbacks);
        wft_obs::trace::emit(wft_obs::TraceKind::RangeFallback, wft_obs::NO_SHARD);
    }

    // -- the timestamp front ------------------------------------------------

    /// The **stable watermark**: the latest root-queue timestamp whose update
    /// effects are fully resolved through the presence index. Every update
    /// with a timestamp `<= stable_ts()` has linearized; an update with a
    /// larger timestamp may be mid-linearization (see
    /// [`settle_front`](WaitFreeTree::settle_front) for a quiescent value).
    ///
    /// Updates resolve strictly in root-queue order (only the queue head is
    /// resolved), so this single number is a complete description of the
    /// linearized prefix. Read descriptors never advance it.
    pub fn stable_ts(&self) -> wft_queue::Timestamp {
        // ORDERING: pairs with the SeqCst `resolved_ts` fetch_max in
        // `resolve_update`; the watermark read must be totally ordered against
        // every helper's bump.
        // wft-lint: allow(seqcst) -- the stable watermark is only meaningful in the single total order the SeqCst resolve bumps establish.
        wft_queue::Timestamp(self.resolved_ts.load(Ordering::SeqCst))
    }

    /// The **advertised watermark**: the latest update timestamp whose
    /// linearization has *begun*. It is advanced before the update's effect
    /// can be observed by any read, which is what makes "advertised watermark
    /// unchanged across a window" mean "no update became visible inside the
    /// window" — the validation rule of the snapshot front.
    pub fn advertised_ts(&self) -> wft_queue::Timestamp {
        // ORDERING: pairs with the SeqCst `advertised_ts` fetch_max in
        // `resolve_update` (advertise-before-resolve).
        // wft-lint: allow(seqcst) -- the snapshot-front proof needs the advertise bump, the update's effects and this read in one total order.
        wft_queue::Timestamp(self.advertised_ts.load(Ordering::SeqCst))
    }

    /// Acquires a **settled front**: a watermark observed at an instant with
    /// no update mid-linearization (`advertised == resolved`). If an update
    /// is in flight, the caller *helps* execute the root-queue head — the
    /// same helping any descriptor operation performs — so the loop is
    /// lock-free: each iteration either returns or completes a concurrent
    /// update's root-level work.
    ///
    /// A front returned here is the anchor of a snapshot read: as long as
    /// [`advertised_ts`](WaitFreeTree::advertised_ts) still equals it, the
    /// tree's abstract state is unchanged since the acquisition instant.
    pub fn settle_front(&self) -> wft_queue::Timestamp {
        let guard = crossbeam_epoch::pin();
        loop {
            // ORDERING: pairs with the SeqCst advertise bump in `resolve_update`.
            // wft-lint: allow(seqcst) -- the advertised/resolved double-read below is only meaningful in the gauge's single total order.
            let advertised = self.advertised_ts.load(Ordering::SeqCst);
            // ORDERING: pairs with the SeqCst resolve bump in `resolve_update`.
            // wft-lint: allow(seqcst) -- comparing the two watermarks cross-thread requires the single total order of their SeqCst bumps.
            if self.resolved_ts.load(Ordering::SeqCst) >= advertised {
                // Quiescent instant — but only if nothing new was advertised
                // while we looked at `resolved`.
                // ORDERING: re-validates `advertised` in the same total order.
                // wft-lint: allow(seqcst) -- an advertise between the two reads must be impossible to miss, which only the SeqCst total order guarantees.
                if self.advertised_ts.load(Ordering::SeqCst) == advertised {
                    return wft_queue::Timestamp(advertised);
                }
            } else if let Some((head_ts, head_op)) = self.root_queue.peek(&guard) {
                // An update is mid-linearization; it sits at the root-queue
                // head for the whole window (it is only resolved as the head
                // and only popped afterwards). Help it to completion.
                TreeCounters::bump(&self.counters.helped_executions);
                self.execute_op_at(&head_op, head_ts, crate::exec::ParentRef::Fictive, &guard);
            }
            // `resolved < advertised` with an empty queue: the resolving
            // helper is between its two watermark bumps — re-read.
            std::hint::spin_loop();
        }
    }

    /// `true` while no update has begun linearizing past `front` — the
    /// validation half of the snapshot sandwich.
    pub fn front_unchanged(&self, front: wft_queue::Timestamp) -> bool {
        // ORDERING: pairs with the SeqCst advertise bump in `resolve_update` — an
        // unchanged advertised watermark proves no update began linearizing.
        // wft-lint: allow(seqcst) -- the validation must observe every advertise bump that could have made an update visible inside the window; needs the total order.
        self.advertised_ts.load(Ordering::SeqCst) == front.get()
    }

    /// [`range_agg`](WaitFreeTree::range_agg) **at** a settled front: returns
    /// the aggregate of the tree state at exactly `front`, or `None` when the
    /// tree has advanced past it (the caller re-settles and retries). Named
    /// `*_at_front` — not `*_at` — so it cannot shadow the
    /// `SnapshotToken`-typed `wft_api::SnapshotRead::range_agg_at`.
    ///
    /// Under [`ReadPath::Fast`] the read is **optimistic-only**: bounded
    /// descriptor-free attempts, bailing out with `None` the moment the
    /// advertised front moves, and *never* falling back to the descriptor
    /// path. A failed fast validation at a still-unchanged front means an
    /// update is mid-linearization — the front is about to expire, so a
    /// descriptor read would do `O(answer)` work (helped, and therefore
    /// re-done, by every concurrent updater it blocks) only to have its
    /// final front check discard the result. Reporting expiry keeps
    /// front-anchored reads from ever stalling the update pipeline; the
    /// caller's contract is unchanged (`None` ⇒ re-settle and retry).
    /// The front checks before and after the read prove its linearization
    /// instant fell inside a window in which the state was constant and
    /// equal to the state at `front`.
    pub fn range_agg_at_front(
        &self,
        min: K,
        max: K,
        front: wft_queue::Timestamp,
    ) -> Option<A::Agg> {
        // ORDERING: pairs with the SeqCst resolve bump in `resolve_update`.
        // wft-lint: allow(seqcst) -- front anchoring compares both SeqCst watermarks; a weaker read could see a stale resolved value and accept an expired front.
        if self.resolved_ts.load(Ordering::SeqCst) != front.get() || !self.front_unchanged(front) {
            return None;
        }
        if min > max {
            return Some(A::identity());
        }
        if self.config.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for _ in 0..self.config.fast_read_attempts {
                if let Some(agg) = self.try_fast_range_agg(min, max, &guard) {
                    TreeCounters::bump(&self.counters.fast_range_hits);
                    return self.front_unchanged(front).then_some(agg);
                }
                TreeCounters::bump(&self.counters.fast_range_retries);
                if !self.front_unchanged(front) {
                    return None;
                }
            }
            return None;
        }
        let agg = self.range_agg(min, max);
        self.front_unchanged(front).then_some(agg)
    }

    /// [`collect_range`](WaitFreeTree::collect_range) at a settled front; see
    /// [`range_agg_at_front`](WaitFreeTree::range_agg_at_front) — including
    /// the optimistic-only read discipline under [`ReadPath::Fast`].
    pub fn collect_range_at_front(
        &self,
        min: K,
        max: K,
        front: wft_queue::Timestamp,
    ) -> Option<Vec<(K, V)>> {
        // ORDERING: pairs with the SeqCst resolve bump in `resolve_update`; see
        // `range_agg_at_front`.
        // wft-lint: allow(seqcst) -- same total-order argument as range_agg_at_front.
        if self.resolved_ts.load(Ordering::SeqCst) != front.get() || !self.front_unchanged(front) {
            return None;
        }
        if min > max {
            return Some(Vec::new());
        }
        if self.config.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for _ in 0..self.config.fast_read_attempts {
                if let Some(entries) = self.try_fast_collect(min, max, &guard) {
                    TreeCounters::bump(&self.counters.fast_range_hits);
                    return self.front_unchanged(front).then_some(entries);
                }
                TreeCounters::bump(&self.counters.fast_range_retries);
                if !self.front_unchanged(front) {
                    return None;
                }
            }
            return None;
        }
        let entries = self.collect_range(min, max);
        self.front_unchanged(front).then_some(entries)
    }

    /// [`collect_range_limited`](WaitFreeTree::collect_range_limited) at a
    /// settled front: the `limit` smallest entries of `[min, max]` in the
    /// tree state at exactly `front`, or `None` once the tree advanced past
    /// it. This is the per-shard chunk read of the sharded store's
    /// streaming scan cursor, with the same optimistic-only discipline as
    /// [`range_agg_at_front`](WaitFreeTree::range_agg_at_front).
    pub fn collect_range_limited_at_front(
        &self,
        min: K,
        max: K,
        limit: usize,
        front: wft_queue::Timestamp,
    ) -> Option<Vec<(K, V)>> {
        // ORDERING: pairs with the SeqCst resolve bump in `resolve_update`; see
        // `range_agg_at_front`.
        // wft-lint: allow(seqcst) -- same total-order argument as range_agg_at_front.
        if self.resolved_ts.load(Ordering::SeqCst) != front.get() || !self.front_unchanged(front) {
            return None;
        }
        if min > max || limit == 0 {
            return Some(Vec::new());
        }
        if self.config.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for _ in 0..self.config.fast_read_attempts {
                if let Some((entries, early_exit)) =
                    self.try_fast_collect_limited(min, max, limit, &guard)
                {
                    TreeCounters::bump(&self.counters.fast_range_hits);
                    if early_exit {
                        TreeCounters::bump(&self.counters.fast_range_early_exits);
                    }
                    return self.front_unchanged(front).then_some(entries);
                }
                TreeCounters::bump(&self.counters.fast_range_retries);
                if !self.front_unchanged(front) {
                    return None;
                }
            }
            return None;
        }
        let entries = self.collect_range_limited(min, max, limit);
        self.front_unchanged(front).then_some(entries)
    }

    /// All entries in key order.
    ///
    /// **Quiescent only**: the caller must guarantee no concurrent
    /// operations; intended for tests, examples and experiment validation.
    pub fn entries_quiescent(&self) -> Vec<(K, V)> {
        let guard = crossbeam_epoch::pin();
        let mut out = Vec::new();
        collect_subtree(
            // ORDERING: Acquire pairs with the AcqRel child-slot CASes; quiescent use.
            self.root_child.load(Ordering::Acquire, &guard),
            &mut out,
            &guard,
        );
        out
    }

    /// Validates the structural invariants of the tree: routing intervals,
    /// augmentation freshness of every inner node, emptiness of every
    /// descriptor queue, agreement between the stored length, the presence
    /// index and the physical leaves.
    ///
    /// **Quiescent only**; panics on violation. Intended for tests.
    pub fn check_invariants(&self) {
        let guard = crossbeam_epoch::pin();
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes; quiescent use.
        let root = self.root_child.load(Ordering::Acquire, &guard);
        let n = check_node::<K, V, A>(root, None, None, &guard);
        assert_eq!(
            n,
            self.len(),
            "cached length diverged from the physical leaf count"
        );
        let mut entries = Vec::new();
        collect_subtree(root, &mut entries, &guard);
        for (key, _) in &entries {
            assert!(
                self.presence.is_present(key, &guard),
                "leaf key {key:?} missing from the presence index"
            );
        }
    }
}

impl<K: Key, V: Value> WaitFreeTree<K, V, Size> {
    /// Number of keys in `[min, max]` — the paper's headline `count` query,
    /// running in `O(log N + |P|)` amortized time.
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Drop for WaitFreeTree<K, V, A> {
    fn drop(&mut self) {
        // Exclusive access: free the whole tree. Queues, the presence index
        // and the root queue free themselves through their own Drop impls.
        // SAFETY: `drop` takes `&mut self`, so no other thread can reach the tree;
        // the unprotected guard and immediate free are sound.
        let root = self
            .root_child
            .load(Ordering::Relaxed, unsafe { crossbeam_epoch::unprotected() });
        free_subtree_now(root);
    }
}

/// Recursive invariant checker (quiescent).
fn check_node<K: Key, V: Value, A: Augmentation<K, V>>(
    node: crossbeam_epoch::Shared<'_, Node<K, V, A>>,
    lo: Option<&K>,
    hi: Option<&K>,
    guard: &crossbeam_epoch::Guard,
) -> u64 {
    if node.is_null() {
        return 0;
    }
    // SAFETY: quiescent walk — `node` came from the root slot (or a child
    // slot) under `guard` and nothing is being retired concurrently.
    match unsafe { node.deref() } {
        Node::Empty(_) => 0,
        Node::Leaf(leaf) => {
            if let Some(lo) = lo {
                assert!(&leaf.key >= lo, "leaf key below its routing interval");
            }
            if let Some(hi) = hi {
                assert!(&leaf.key < hi, "leaf key above its routing interval");
            }
            1
        }
        Node::Inner(inner) => {
            assert!(
                inner.queue.is_empty(guard),
                "descriptor queue not empty in a quiescent tree"
            );
            let nl = check_node::<K, V, A>(
                // ORDERING: Acquire pairs with the AcqRel child-slot CASes; quiescent use.
                inner.left.load(Ordering::Acquire, guard),
                lo,
                Some(&inner.rsm),
                guard,
            );
            let nr = check_node::<K, V, A>(
                // ORDERING: as above, for the right child.
                inner.right.load(Ordering::Acquire, guard),
                Some(&inner.rsm),
                hi,
                guard,
            );
            // The stored aggregate must equal the aggregate recomputed from
            // the leaves below.
            let mut entries = Vec::new();
            collect_subtree(node, &mut entries, guard);
            let expect = entries
                .iter()
                .fold(A::identity(), |acc, (k, v)| A::insert_delta(&acc, k, v));
            assert_eq!(
                &inner.load_state(guard).agg,
                &expect,
                "stored augmentation value is stale"
            );
            nl + nr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_properties() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(!tree.contains(&1));
        assert_eq!(tree.count(i64::MIN, i64::MAX), 0);
        assert!(tree.collect_range(i64::MIN, i64::MAX).is_empty());
        assert!(!tree.remove(&1));
        tree.check_invariants();
    }

    #[test]
    fn single_thread_insert_remove_contains() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::new();
        assert!(tree.insert(5, ()));
        assert!(!tree.insert(5, ()));
        assert!(tree.insert(1, ()));
        assert!(tree.insert(9, ()));
        assert_eq!(tree.len(), 3);
        assert!(tree.contains(&5));
        assert!(tree.contains(&1));
        assert!(tree.contains(&9));
        assert!(!tree.contains(&2));
        assert!(tree.remove(&5));
        assert!(!tree.remove(&5));
        assert!(!tree.contains(&5));
        assert_eq!(tree.len(), 2);
        tree.check_invariants();
    }

    #[test]
    fn count_and_collect_agree_single_thread() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::new();
        for k in (0..200).step_by(3) {
            tree.insert(k, ());
        }
        for (min, max) in [(0, 199), (10, 50), (-100, 5), (150, 400), (60, 60), (7, 3)] {
            assert_eq!(
                tree.count(min, max),
                tree.collect_range(min, max).len() as u64,
                "range [{min}, {max}]"
            );
        }
        tree.check_invariants();
    }

    #[test]
    fn get_and_remove_entry_return_values() {
        let tree: WaitFreeTree<i64, String> = WaitFreeTree::new();
        assert!(tree.insert(1, "one".into()));
        assert!(!tree.insert(1, "uno".into()));
        assert_eq!(tree.get(&1), Some("one".to_string()));
        assert_eq!(tree.remove_entry(&1), Some("one".to_string()));
        assert_eq!(tree.remove_entry(&1), None);
        assert_eq!(tree.get(&1), None);
    }

    #[test]
    fn from_entries_builds_working_tree() {
        let tree: WaitFreeTree<i64, i64> =
            WaitFreeTree::from_entries((0..1000).map(|k| (k, k * 2)));
        assert_eq!(tree.len(), 1000);
        assert_eq!(tree.get(&500), Some(1000));
        assert!(!tree.insert(500, 0), "prefilled keys are present");
        assert!(tree.remove(&500));
        assert_eq!(tree.len(), 999);
        tree.check_invariants();
    }

    #[test]
    fn rebuilds_keep_the_tree_usable() {
        let cfg = TreeConfig {
            rebuild_factor: 0.5,
            ..TreeConfig::default()
        };
        let tree: WaitFreeTree<i64> = WaitFreeTree::with_config(cfg);
        for k in 0..2000 {
            tree.insert(k, ());
        }
        assert!(
            tree.stats().rebuilds > 0,
            "sorted insertions must trigger rebuilds"
        );
        for k in 0..2000 {
            assert!(tree.contains(&k), "key {k} lost after rebuilds");
        }
        assert_eq!(tree.count(0, 1999), 2000);
        tree.check_invariants();
    }

    #[test]
    fn wait_free_root_queue_variant_works() {
        let cfg = TreeConfig {
            root_queue: RootQueueKind::WaitFree { slots: 8 },
            ..TreeConfig::default()
        };
        let tree: WaitFreeTree<i64> = WaitFreeTree::with_config(cfg);
        for k in 0..500 {
            assert!(tree.insert(k, ()));
        }
        assert_eq!(tree.count(0, 499), 500);
        assert_eq!(tree.len(), 500);
        tree.check_invariants();
    }

    #[test]
    fn stats_track_updates() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::new();
        tree.insert(1, ());
        tree.insert(1, ());
        tree.insert(2, ());
        tree.remove(&1);
        tree.remove(&3);
        let stats = tree.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.removes, 1);
        assert_eq!(stats.failed_updates, 2);
    }

    #[test]
    fn insert_or_replace_single_thread() {
        let tree: WaitFreeTree<i64, String> = WaitFreeTree::new();
        assert_eq!(tree.insert_or_replace(1, "one".into()), None);
        assert_eq!(tree.len(), 1);
        assert_eq!(
            tree.insert_or_replace(1, "uno".into()),
            Some("one".to_string())
        );
        assert_eq!(tree.len(), 1, "an overwrite must not change the length");
        assert_eq!(tree.get(&1), Some("uno".to_string()));
        assert_eq!(tree.remove_entry(&1), Some("uno".to_string()));
        assert_eq!(tree.insert_or_replace(1, "ein".into()), None);
        assert_eq!(tree.stats().replaces, 3);
        tree.check_invariants();
    }

    #[test]
    fn replace_maintains_augmentations() {
        use wft_seq::{Pair, Sum};
        let tree: WaitFreeTree<i64, i64, Pair<Size, Sum>> =
            WaitFreeTree::from_entries((0..100).map(|k| (k, k)));
        // Overwrite every even key's value with 1000 + k.
        for k in (0..100).step_by(2) {
            assert_eq!(tree.insert_or_replace(k, 1000 + k), Some(k));
        }
        let (count, sum) = tree.range_agg(0, 99);
        assert_eq!(count, 100);
        let expect: i128 = (0..100i64)
            .map(|k| if k % 2 == 0 { 1000 + k } else { k } as i128)
            .sum();
        assert_eq!(sum, expect);
        tree.check_invariants();
    }

    #[test]
    fn replace_survives_rebuilds() {
        let cfg = TreeConfig {
            rebuild_factor: 0.5,
            ..TreeConfig::default()
        };
        let tree: WaitFreeTree<i64, i64> = WaitFreeTree::with_config(cfg);
        for k in 0..1000 {
            tree.insert_or_replace(k, k);
        }
        for k in 0..1000 {
            assert_eq!(tree.insert_or_replace(k, -k), Some(k));
        }
        assert!(tree.stats().rebuilds > 0, "sorted upserts must rebuild");
        assert_eq!(tree.len(), 1000);
        assert_eq!(tree.get(&999), Some(-999));
        tree.check_invariants();
    }

    #[test]
    fn both_read_paths_answer_identically_single_thread() {
        let fast_cfg = TreeConfig::default();
        let desc_cfg = TreeConfig {
            read_path: ReadPath::Descriptor,
            ..TreeConfig::default()
        };
        assert_eq!(fast_cfg.read_path, ReadPath::Fast, "fast is the default");
        let entries: Vec<(i64, i64)> = (0..300).step_by(3).map(|k| (k, k * 10)).collect();
        let fast: WaitFreeTree<i64, i64> =
            WaitFreeTree::from_entries_with_config(entries.clone(), fast_cfg);
        let desc: WaitFreeTree<i64, i64> =
            WaitFreeTree::from_entries_with_config(entries, desc_cfg);
        for tree in [&fast, &desc] {
            tree.insert(1, 11);
            tree.remove(&3);
            tree.insert_or_replace(6, -60);
        }
        for k in [-1, 0, 1, 2, 3, 6, 9, 298, 299, 500] {
            assert_eq!(fast.get(&k), desc.get(&k), "get({k})");
            assert_eq!(fast.contains(&k), desc.contains(&k), "contains({k})");
        }
        for (min, max) in [(0, 299), (10, 50), (-5, 4), (200, 600), (7, 7), (9, 3)] {
            assert_eq!(
                fast.count(min, max),
                desc.count(min, max),
                "count [{min},{max}]"
            );
            assert_eq!(
                fast.collect_range(min, max),
                desc.collect_range(min, max),
                "collect [{min},{max}]"
            );
        }
        fast.check_invariants();
        desc.check_invariants();
    }

    #[test]
    fn fast_read_counters_track_hits() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..100).map(|k| (k, ())));
        assert!(tree.contains(&5));
        assert!(tree.get(&6).is_some());
        assert_eq!(tree.count(0, 99), 100);
        assert_eq!(tree.collect_range(10, 12).len(), 3);
        let stats = tree.stats();
        assert_eq!(stats.fast_point_reads, 2);
        assert_eq!(
            stats.fast_range_hits, 2,
            "quiescent range reads must validate"
        );
        assert_eq!(stats.range_fallbacks, 0);

        let desc: WaitFreeTree<i64> = WaitFreeTree::with_config(TreeConfig {
            read_path: ReadPath::Descriptor,
            ..TreeConfig::default()
        });
        desc.insert(1, ());
        assert!(desc.contains(&1));
        assert_eq!(desc.get(&2), None);
        assert_eq!(desc.count(0, 10), 1);
        let stats = desc.stats();
        assert_eq!(stats.fast_point_reads, 0, "descriptor path counts nothing");
        assert_eq!(stats.fast_range_hits, 0);
    }

    #[test]
    fn timestamp_front_tracks_updates() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::new();
        assert_eq!(tree.stable_ts(), wft_queue::Timestamp::ZERO);
        let front = tree.settle_front();
        assert!(tree.front_unchanged(front));

        tree.insert(1, ());
        assert!(!tree.front_unchanged(front), "an update advances the front");
        // Failed updates linearize too (they occupy a timestamp).
        let front = tree.settle_front();
        tree.insert(1, ());
        assert!(!tree.front_unchanged(front));
        // Read-only operations never advance the front.
        let front = tree.settle_front();
        tree.contains(&1);
        tree.count(0, 10);
        tree.collect_range(0, 10);
        assert!(tree.front_unchanged(front));
        assert_eq!(tree.stable_ts(), tree.advertised_ts());
    }

    #[test]
    fn front_bounded_reads_succeed_then_expire() {
        let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..50).map(|k| (k, ())));
        let front = tree.settle_front();
        assert_eq!(tree.range_agg_at_front(0, 49, front), Some(50));
        assert_eq!(
            tree.collect_range_at_front(10, 12, front).map(|v| v.len()),
            Some(3)
        );
        tree.remove(&25);
        assert_eq!(tree.range_agg_at_front(0, 49, front), None, "front expired");
        assert_eq!(tree.collect_range_at_front(0, 49, front), None);
        let fresh = tree.settle_front();
        assert_eq!(tree.range_agg_at_front(0, 49, fresh), Some(49));
    }

    #[test]
    fn bounded_retry_config_is_validated() {
        let cfg = TreeConfig {
            fast_read_attempts: 1,
            ..TreeConfig::default()
        };
        let tree: WaitFreeTree<i64> = WaitFreeTree::with_config(cfg);
        tree.insert(1, ());
        assert_eq!(tree.count(0, 5), 1);
        assert_eq!(tree.stats().fast_range_retries, 0, "one attempt, no retry");
    }

    #[test]
    #[should_panic(expected = "at least one optimistic attempt")]
    fn zero_fast_read_attempts_rejected() {
        let cfg = TreeConfig {
            fast_read_attempts: 0,
            ..TreeConfig::default()
        };
        let _: WaitFreeTree<i64> = WaitFreeTree::with_config(cfg);
    }

    #[test]
    fn concurrent_replaces_of_one_key_form_a_total_order() {
        use std::sync::Arc;
        let tree: Arc<WaitFreeTree<i64, i64>> = Arc::new(WaitFreeTree::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tree.insert_or_replace(7, t * 1000 + i);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(tree.len(), 1);
        // Exactly one writer's final value survives, and it is a value some
        // thread actually wrote last in its loop.
        let survivor = tree.get(&7).expect("key must be present");
        assert!((0..4).any(|t| survivor == t * 1000 + 249));
        tree.check_invariants();
    }
}
