//! Concurrent tree nodes.
//!
//! The concurrent tree uses the same *external* (leaf-oriented) layout as the
//! sequential tree in `wft-seq`, enriched with the per-node machinery of the
//! paper (§II):
//!
//! * every inner node owns an operations queue ([`wft_queue::TsQueue`]) whose
//!   dummy timestamp doubles as the node's creation watermark,
//! * the mutable part of an inner node — augmentation value, modification
//!   counter and last-modification timestamp — lives in an **immutable,
//!   heap-allocated [`NodeState`]** swapped atomically by CAS (§II-C), so a
//!   state can be read with one pointer load and modified exactly once per
//!   operation,
//! * child pointers are epoch-managed atomics; all structural changes are
//!   CASes on a *parent's* child slot (insert splits a leaf, remove replaces
//!   a leaf with [`Node::Empty`], rebuilds swap whole subtrees), which keeps
//!   the paper's rule that executing an operation in `v` only modifies `v`'s
//!   children.

use crossbeam_epoch::{Atomic, Guard, Owned, Shared};
use std::sync::atomic::{AtomicU64, Ordering};

use wft_queue::{Timestamp, TsQueue};
use wft_seq::{Augmentation, Key, Value};

use crate::descriptor::OpRef;

/// Unique identifier of an inner node, used as the key of the per-operation
/// `Processed` and mode maps. The fictive root uses id `0`; real nodes get
/// ids `>= 1` from the tree's counter.
pub type NodeId = u64;

/// Reserved [`NodeId`] of the fictive root (§II-B).
pub const FICTIVE_ROOT_ID: NodeId = 0;

/// Allocates unique node identifiers (a fetch-and-add counter, as suggested
/// in §II-B).
#[derive(Debug)]
pub(crate) struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    pub(crate) fn new() -> Self {
        IdAllocator {
            next: AtomicU64::new(FICTIVE_ROOT_ID + 1),
        }
    }

    pub(crate) fn fresh(&self) -> NodeId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// The immutable state record of an inner node (§II-C).
///
/// A state is never mutated in place: modifications allocate a new record and
/// CAS the node's state pointer, guarded by `ts_mod` so each operation's
/// effect is applied exactly once no matter how many helpers race.
#[derive(Debug)]
pub struct NodeState<Agg> {
    /// Augmentation value of the node's subtree *as of the last update that
    /// was executed in this node's parent* — i.e. including updates that are
    /// still propagating further down (§II-C: eager top-down maintenance).
    pub agg: Agg,
    /// Number of successful updates applied to this subtree since the node
    /// was created (`Mod_Cnt`, §II-E).
    pub mod_cnt: u64,
    /// Timestamp of the last operation that modified this state (`Ts_Mod`).
    pub ts_mod: Timestamp,
}

/// A leaf holding one data item. Leaves are immutable.
///
/// `created_ts` is the timestamp of the operation (or the watermark of the
/// rebuild) that physically installed the leaf. Structural CASes are guarded
/// by it: a stalled helper whose operation is *older* than the node it finds
/// in a child slot must not touch that slot — its own structural change has
/// already been applied by a faster helper, and the slot has since been
/// reused by later-linearized operations (see `execute_at_leaf` /
/// `execute_at_empty`). Because leaves are immutable, a `Replace` descriptor
/// that overwrites an existing key installs a *fresh* leaf carrying the new
/// value and its own timestamp, so the same guard covers upserts: any leaf
/// for the key with a smaller `created_ts` either predates the replace or is
/// a rebuild's verbatim copy of its effect.
#[derive(Debug)]
pub struct LeafNode<K, V> {
    /// The stored key.
    pub key: K,
    /// The associated value.
    pub value: V,
    /// Timestamp of the operation that created this leaf.
    pub created_ts: Timestamp,
}

/// A removed leaf position (or the empty tree), carrying the timestamp of the
/// operation that created it for the same structural-CAS guard as
/// [`LeafNode::created_ts`].
#[derive(Debug)]
pub struct EmptyNode {
    /// Timestamp of the operation that created this placeholder.
    pub created_ts: Timestamp,
}

/// An inner (routing) node.
pub struct InnerNode<K: Key, V: Value, A: Augmentation<K, V>> {
    /// Unique node identifier (never reused).
    pub id: NodeId,
    /// `Right_Subtree_Min`: keys `< rsm` route left, keys `>= rsm` right.
    pub rsm: K,
    /// Subtree size at creation (`Init_Sz`, §II-E); immutable.
    pub init_sz: u64,
    /// Left child slot.
    pub left: Atomic<Node<K, V, A>>,
    /// Right child slot.
    pub right: Atomic<Node<K, V, A>>,
    /// Swappable immutable state record.
    pub state: Atomic<NodeState<A::Agg>>,
    /// Per-node operations queue (§II-A). The dummy timestamp equals the
    /// node's creation watermark: descriptors older than the node can never
    /// enter.
    pub queue: TsQueue<OpRef<K, V, A>>,
}

/// A node of the concurrent external BST.
pub enum Node<K: Key, V: Value, A: Augmentation<K, V>> {
    /// A removed leaf position (or the empty tree); cleaned up by rebuilds.
    Empty(EmptyNode),
    /// A data item.
    Leaf(LeafNode<K, V>),
    /// A routing node with queue and state.
    Inner(InnerNode<K, V, A>),
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Node<K, V, A> {
    /// An empty placeholder created by the operation with timestamp `ts`.
    pub fn empty(ts: Timestamp) -> Self {
        Node::Empty(EmptyNode { created_ts: ts })
    }

    /// `true` for [`Node::Inner`].
    pub fn is_inner(&self) -> bool {
        matches!(self, Node::Inner(_))
    }

    /// The inner node, if this is one.
    pub fn as_inner(&self) -> Option<&InnerNode<K, V, A>> {
        match self {
            Node::Inner(inner) => Some(inner),
            _ => None,
        }
    }

    /// Current augmentation value of this child as seen from its parent:
    /// identity for `Empty`, the entry contribution for a leaf, and the
    /// *current state's* aggregate for an inner node.
    pub fn current_agg(&self, guard: &Guard) -> A::Agg {
        match self {
            Node::Empty(_) => A::identity(),
            Node::Leaf(leaf) => A::of_entry(&leaf.key, &leaf.value),
            Node::Inner(inner) => {
                // ORDERING: Acquire pairs with the AcqRel state CAS in
                // `apply_state_delta`, so the record's fields are visible.
                let state = inner.state.load(Ordering::Acquire, guard);
                // Inner nodes always carry a state record.
                // SAFETY: inner nodes always carry a non-null state record (installed at
                // construction, only ever swapped for a successor) and records are retired
                // via `defer_destroy`, so the deref is valid under `guard`.
                unsafe { state.deref() }.agg.clone()
            }
        }
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> InnerNode<K, V, A> {
    /// Loads the current state record.
    pub fn load_state<'g>(&self, guard: &'g Guard) -> &'g NodeState<A::Agg> {
        // ORDERING: Acquire pairs with the AcqRel state CAS in
        // `apply_state_delta`.
        let state = self.state.load(Ordering::Acquire, guard);
        // SAFETY: the state record is non-null by construction and
        // epoch-protected under `guard`; see `current_agg`.
        unsafe { state.deref() }
    }

    /// Loads the current state record as a `Shared` pointer (needed as the
    /// expected value of a CAS).
    pub fn load_state_shared<'g>(&self, guard: &'g Guard) -> Shared<'g, NodeState<A::Agg>> {
        // ORDERING: Acquire pairs with the AcqRel state CAS in
        // `apply_state_delta`.
        self.state.load(Ordering::Acquire, guard)
    }
}

/// A `Send + Sync` wrapper around a raw pointer to a tree node, used as the
/// item type of the per-operation traverse queue.
///
/// Safety: the pointer is only dereferenced by the operation's initiator
/// while it holds the epoch guard it pinned *before* the operation entered
/// the root queue. Any node reachable through the traverse queue was loaded
/// from a live child slot after that point, so its reclamation (if it gets
/// unlinked by a rebuild) is deferred past the initiator's guard.
pub struct NodePtr<K: Key, V: Value, A: Augmentation<K, V>>(*const Node<K, V, A>);

impl<K: Key, V: Value, A: Augmentation<K, V>> Clone for NodePtr<K, V, A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Key, V: Value, A: Augmentation<K, V>> Copy for NodePtr<K, V, A> {}

// SAFETY: see the type-level comment — the raw pointer is only
// dereferenced by the initiator under its pre-enqueue epoch guard, so
// sending the wrapper across threads is sound.
unsafe impl<K: Key, V: Value, A: Augmentation<K, V>> Send for NodePtr<K, V, A> {}
// SAFETY: same argument as `Send`; shared copies only ever read the
// pointer value, the deref contract is enforced by `NodePtr::deref`.
unsafe impl<K: Key, V: Value, A: Augmentation<K, V>> Sync for NodePtr<K, V, A> {}

impl<K: Key, V: Value, A: Augmentation<K, V>> NodePtr<K, V, A> {
    /// Wraps a shared pointer obtained under an epoch guard.
    pub fn from_shared(shared: Shared<'_, Node<K, V, A>>) -> Self {
        NodePtr(shared.as_raw())
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The caller must be the operation's initiator and must still hold the
    /// guard pinned before the operation was enqueued (see the type-level
    /// safety comment).
    // SAFETY: the pointee stays alive because the initiator's guard predates
    // every possible unlink of this node (see above); callers uphold the
    // initiator+guard requirement.
    pub unsafe fn deref<'g>(&self, _guard: &'g Guard) -> &'g Node<K, V, A> {
        &*self.0
    }
}

/// Recursively builds a perfectly balanced concurrent subtree from sorted,
/// de-duplicated `entries` (the §II-E rebuild).
///
/// Every created inner node gets a fresh id, `mod_cnt = 0`,
/// `ts_mod = watermark` and a queue watermark of `watermark`, where the
/// caller passes `watermark = rebuild_op_timestamp - 1` so the rebuilding
/// operation itself and all later operations can still modify the new
/// subtree while all earlier (already-accounted-for) operations cannot.
pub(crate) fn build_subtree<K: Key, V: Value, A: Augmentation<K, V>>(
    entries: &[(K, V)],
    watermark: Timestamp,
    ids: &IdAllocator,
) -> (Node<K, V, A>, A::Agg) {
    match entries {
        [] => (Node::empty(watermark), A::identity()),
        [(key, value)] => (
            Node::Leaf(LeafNode {
                key: *key,
                value: value.clone(),
                created_ts: watermark,
            }),
            A::of_entry(key, value),
        ),
        _ => {
            let mid = entries.len() / 2;
            let (left, left_agg) = build_subtree::<K, V, A>(&entries[..mid], watermark, ids);
            let (right, right_agg) = build_subtree::<K, V, A>(&entries[mid..], watermark, ids);
            let agg = A::combine(&left_agg, &right_agg);
            let inner = InnerNode {
                id: ids.fresh(),
                rsm: entries[mid].0,
                init_sz: entries.len() as u64,
                left: Atomic::new(left),
                right: Atomic::new(right),
                state: Atomic::new(NodeState {
                    agg: agg.clone(),
                    mod_cnt: 0,
                    ts_mod: watermark,
                }),
                queue: TsQueue::new(watermark),
            };
            (Node::Inner(inner), agg)
        }
    }
}

/// Collects every `(key, value)` stored in the subtree rooted at `node`, in
/// key order, following the *current* child pointers. Used by the rebuild
/// procedure after it has drained every queue in the subtree, and by
/// quiescent diagnostics.
pub(crate) fn collect_subtree<K: Key, V: Value, A: Augmentation<K, V>>(
    node: Shared<'_, Node<K, V, A>>,
    out: &mut Vec<(K, V)>,
    guard: &Guard,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: the caller passes a child pointer loaded under `guard` from a
    // drained, still-reachable subtree; nodes are retired only via
    // `retire_subtree`/`defer_destroy`.
    match unsafe { node.deref() } {
        Node::Empty(_) => {}
        Node::Leaf(leaf) => out.push((leaf.key, leaf.value.clone())),
        Node::Inner(inner) => {
            // ORDERING: Acquire pairs with the AcqRel child-slot CASes, so both
            // subtrees are fully initialised when walked.
            collect_subtree(inner.left.load(Ordering::Acquire, guard), out, guard);
            // ORDERING: as above.
            collect_subtree(inner.right.load(Ordering::Acquire, guard), out, guard);
        }
    }
}

/// Retires every node of an *unlinked* subtree through the epoch collector.
///
/// Must only be called on a subtree that has just been atomically replaced
/// (rebuild) — i.e. no new references to it can be created, and existing
/// references are protected by their owners' guards.
pub(crate) fn retire_subtree<K: Key, V: Value, A: Augmentation<K, V>>(
    node: Shared<'_, Node<K, V, A>>,
    guard: &Guard,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: the subtree was just unlinked by its replacer (single CAS
    // winner), so no new references can form; existing readers hold epoch
    // guards, which `defer_destroy` waits out.
    if let Node::Inner(inner) = unsafe { node.deref() } {
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes so the walk
        // sees the subtree's final shape.
        retire_subtree(inner.left.load(Ordering::Acquire, guard), guard);
        // ORDERING: as above.
        retire_subtree(inner.right.load(Ordering::Acquire, guard), guard);
        // ORDERING: Acquire pairs with the AcqRel state CAS in `apply_state_delta`.
        let state = inner.state.load(Ordering::Acquire, guard);
        if !state.is_null() {
            // SAFETY: the state record belongs to the unlinked subtree and is retired
            // exactly once (this walk is the only retirement path for it).
            unsafe { guard.defer_destroy(state) };
        }
    }
    // SAFETY: `node` is unlinked (see above); each node of the subtree is
    // retired exactly once by this single post-order walk.
    unsafe { guard.defer_destroy(node) };
}

/// Frees a subtree immediately. Only safe with exclusive access (tree `Drop`
/// or a speculative subtree that was never published).
pub(crate) fn free_subtree_now<K: Key, V: Value, A: Augmentation<K, V>>(
    node: Shared<'_, Node<K, V, A>>,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: the caller guarantees exclusive access (tree `Drop` or a
    // never-published speculative subtree), so freeing in place without epoch
    // protection is sound and each node is freed exactly once.
    unsafe {
        let unprotected = crossbeam_epoch::unprotected();
        if let Node::Inner(inner) = node.deref() {
            free_subtree_now(inner.left.load(Ordering::Relaxed, unprotected));
            free_subtree_now(inner.right.load(Ordering::Relaxed, unprotected));
            let state = inner.state.load(Ordering::Relaxed, unprotected);
            if !state.is_null() {
                drop(state.into_owned());
            }
            // The queue frees its own nodes when the InnerNode is dropped.
        }
        drop(node.into_owned());
    }
}

/// Wraps a freshly built subtree into an `Owned` allocation ready to be
/// CAS-ed into a child slot.
#[allow(dead_code)]
pub(crate) fn into_owned_node<K: Key, V: Value, A: Augmentation<K, V>>(
    node: Node<K, V, A>,
) -> Owned<Node<K, V, A>> {
    Owned::new(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;
    use wft_seq::Size;

    type N = Node<i64, (), Size>;

    #[test]
    fn id_allocator_is_monotone_and_skips_fictive_root() {
        let ids = IdAllocator::new();
        let a = ids.fresh();
        let b = ids.fresh();
        assert!(a > FICTIVE_ROOT_ID);
        assert!(b > a);
    }

    #[test]
    fn build_subtree_computes_aggregates_and_watermarks() {
        let ids = IdAllocator::new();
        let entries: Vec<(i64, ())> = (0..100).map(|k| (k, ())).collect();
        let (node, agg) = build_subtree::<i64, (), Size>(&entries, Timestamp(41), &ids);
        assert_eq!(agg, 100);
        let guard = epoch::pin();
        match &node {
            Node::Inner(inner) => {
                assert_eq!(inner.init_sz, 100);
                assert_eq!(inner.load_state(&guard).agg, 100);
                assert_eq!(inner.load_state(&guard).ts_mod, Timestamp(41));
                assert_eq!(inner.load_state(&guard).mod_cnt, 0);
                assert!(inner.queue.is_empty(&guard));
                // The watermark rejects older descriptors; we can't push a
                // real descriptor here without a full tree, but the queue's
                // last timestamp reflects the watermark.
                assert_eq!(inner.queue.last_timestamp(&guard), Timestamp(41));
            }
            _ => panic!("100 entries must build an inner root"),
        }
        // Free the speculative subtree.
        let owned = into_owned_node(node);
        // SAFETY: the subtree was never published; this test owns it exclusively.
        free_subtree_now(owned.into_shared(unsafe { epoch::unprotected() }));
    }

    #[test]
    fn build_and_collect_roundtrip() {
        let ids = IdAllocator::new();
        for n in [0usize, 1, 2, 3, 7, 64, 101] {
            let entries: Vec<(i64, ())> = (0..n as i64).map(|k| (k * 2, ())).collect();
            let (node, agg) = build_subtree::<i64, (), Size>(&entries, Timestamp::ZERO, &ids);
            assert_eq!(agg, n as u64);
            let owned = into_owned_node(node);
            // SAFETY: the subtree was never published; this test owns it exclusively.
            let shared = owned.into_shared(unsafe { epoch::unprotected() });
            let guard = epoch::pin();
            let mut out = Vec::new();
            collect_subtree(shared, &mut out, &guard);
            assert_eq!(out, entries);
            free_subtree_now(shared);
        }
    }

    #[test]
    fn current_agg_per_node_kind() {
        let guard = epoch::pin();
        let empty: N = Node::empty(Timestamp::ZERO);
        assert_eq!(empty.current_agg(&guard), 0);
        let leaf: N = Node::Leaf(LeafNode {
            key: 3,
            value: (),
            created_ts: Timestamp::ZERO,
        });
        assert_eq!(leaf.current_agg(&guard), 1);
        assert!(!leaf.is_inner());
        assert!(leaf.as_inner().is_none());
    }
}
