//! [`wft_api`] trait implementations for [`WaitFreeTree`].
//!
//! The wait-free tree is the reference implementation of the trait family:
//! every update maps to exactly one descriptor (including
//! [`PointMap::replace`] → [`crate::OpKind::Replace`]), range reads resolve
//! their [`RangeSpec`] once and answer with the native closed-interval
//! query, and batches run through the shared serial phase-two helper (a
//! single tree has one root queue — there is nothing to fan out over).

use wft_api::{
    apply_batch_point, BatchApply, BatchError, ChunkRead, FrontScanCursor, OpOutcome, PointMap,
    RangeKey, RangeRead, RangeScan, RangeSpec, StoreOp, TimestampFront, UpdateOutcome,
};
use wft_seq::{Augmentation, Key, Value};

use crate::tree::WaitFreeTree;

impl<K: Key, V: Value, A: Augmentation<K, V>> PointMap<K, V> for WaitFreeTree<K, V, A> {
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V> {
        let (op, _ts) = self.run_operation(crate::OpKind::Insert { key, value });
        let decision = op.resolved_decision();
        if decision.success {
            UpdateOutcome::Applied { prior: None }
        } else {
            UpdateOutcome::Unchanged {
                current: decision.prior_value.clone(),
            }
        }
    }

    fn replace(&self, key: K, value: V) -> UpdateOutcome<V> {
        UpdateOutcome::Applied {
            prior: self.insert_or_replace(key, value),
        }
    }

    fn remove(&self, key: &K) -> UpdateOutcome<V> {
        let (op, _ts) = self.run_operation(crate::OpKind::Remove { key: *key });
        let decision = op.resolved_decision();
        if decision.success {
            UpdateOutcome::Applied {
                prior: decision.prior_value.clone(),
            }
        } else {
            UpdateOutcome::Unchanged { current: None }
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        WaitFreeTree::get(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        // Presence-only: `O(1)` on the fast read path and never clones the
        // value, unlike the trait's `get(key).is_some()` default.
        WaitFreeTree::contains(self, key)
    }

    fn len(&self) -> u64 {
        WaitFreeTree::len(self)
    }
}

impl<K: RangeKey, V: Value, A: Augmentation<K, V>> RangeRead<K, V> for WaitFreeTree<K, V, A> {
    type Agg = A::Agg;

    fn range_agg(&self, range: RangeSpec<K>) -> A::Agg {
        wft_api::agg_over(range, A::identity, |min, max| {
            WaitFreeTree::range_agg(self, min, max)
        })
    }

    fn count(&self, range: RangeSpec<K>) -> u64 {
        wft_api::count_over(
            range,
            |min, max| WaitFreeTree::range_agg(self, min, max),
            A::count_of,
            |min, max| WaitFreeTree::collect_range(self, min, max).len() as u64,
        )
    }

    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)> {
        wft_api::collect_over(range, |min, max| {
            WaitFreeTree::collect_range(self, min, max)
        })
    }
}

/// The tree's chunk primitive is the limit-bounded optimistic collect:
/// `O(log N + limit)` per chunk on the fast path (early exit after `limit`
/// leaves, counted in [`crate::TreeStats::fast_range_early_exits`]), with
/// the descriptor fallback preserved.
impl<K: RangeKey, V: Value, A: Augmentation<K, V>> ChunkRead<K, V> for WaitFreeTree<K, V, A> {
    fn collect_chunk(&self, min: K, max: K, limit: usize) -> Vec<(K, V)> {
        WaitFreeTree::collect_range_limited(self, min, max, limit)
    }
}

/// Streaming scans: the tree's cursor is the shared front-sandwiched
/// [`FrontScanCursor`] over the chunk primitive above — the scan logic
/// lives once in `wft-api`, this impl only hands the cursor out.
impl<K: RangeKey, V: Value, A: Augmentation<K, V>> RangeScan<K, V> for WaitFreeTree<K, V, A> {
    type Cursor<'a>
        = FrontScanCursor<'a, Self, K, V>
    where
        Self: 'a;

    fn scan(&self, range: RangeSpec<K>) -> FrontScanCursor<'_, Self, K, V> {
        FrontScanCursor::new(self, range)
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> BatchApply<K, V> for WaitFreeTree<K, V, A> {
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        apply_batch_point(self, batch)
    }
}

/// Opts into the blanket `SnapshotRead`: plain reads here are
/// validation-free linearizable queries, so the blanket's sandwich is the
/// single validation layer.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_api::FrontSnapshot for WaitFreeTree<K, V, A> {}

/// The tree's snapshot front is its root-queue timestamp front: the
/// watermarks maintained at update resolution (see
/// [`WaitFreeTree::stable_ts`]). With this impl in place the blanket
/// [`wft_api::SnapshotRead`] applies: the tree supports consistent
/// multi-range reads against one acquired front.
impl<K: Key, V: Value, A: Augmentation<K, V>> TimestampFront for WaitFreeTree<K, V, A> {
    fn settle_front(&self) -> u64 {
        WaitFreeTree::settle_front(self).get()
    }

    fn front_advertised(&self) -> u64 {
        self.advertised_ts().get()
    }

    fn front_resolved(&self) -> u64 {
        self.stable_ts().get()
    }
}

/// Mirrors the tree's operational counters ([`WaitFreeTree::stats`]) plus
/// its size into the `wft-obs` metrics vocabulary under the `tree_` prefix.
/// The `TreeCounters` atomics stay the single source of truth — this impl
/// reads the same cells the legacy `stats()` API reads, so the two views
/// can never drift.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_obs::MetricsSource for WaitFreeTree<K, V, A> {
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        self.stats().collect_into("tree", out);
        out.push_gauge("tree_len", self.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wft_seq::Size;

    #[test]
    fn point_map_outcomes_are_typed() {
        let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
        assert_eq!(
            PointMap::insert(&tree, 1, 10),
            UpdateOutcome::Applied { prior: None }
        );
        assert_eq!(
            PointMap::insert(&tree, 1, 11),
            UpdateOutcome::Unchanged { current: Some(10) }
        );
        assert_eq!(
            PointMap::replace(&tree, 1, 12),
            UpdateOutcome::Applied { prior: Some(10) }
        );
        assert_eq!(
            PointMap::remove(&tree, &1),
            UpdateOutcome::Applied { prior: Some(12) }
        );
        assert_eq!(
            PointMap::remove(&tree, &1),
            UpdateOutcome::Unchanged { current: None }
        );
    }

    #[test]
    fn range_read_resolves_specs() {
        let tree: WaitFreeTree<i64, (), Size> =
            WaitFreeTree::from_entries((0..10).map(|k| (k, ())));
        assert_eq!(RangeRead::count(&tree, RangeSpec::from_bounds(2..5)), 3);
        assert_eq!(RangeRead::count(&tree, RangeSpec::all()), 10);
        assert_eq!(RangeRead::count(&tree, RangeSpec::inclusive(5, 2)), 0);
        assert_eq!(RangeRead::range_agg(&tree, RangeSpec::at_least(7)), 3);
        assert!(RangeRead::collect_range(&tree, RangeSpec::from_bounds(4..4)).is_empty());
    }

    #[test]
    fn single_tree_accepts_batches() {
        let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
        let outcomes = tree
            .apply_batch(vec![
                StoreOp::Insert { key: 1, value: 10 },
                StoreOp::InsertOrReplace { key: 2, value: 20 },
                StoreOp::Remove { key: 3 },
            ])
            .unwrap();
        assert_eq!(
            outcomes,
            vec![
                OpOutcome::Inserted(true),
                OpOutcome::Replaced(None),
                OpOutcome::Removed(false),
            ]
        );
        let err = tree
            .apply_batch(vec![
                StoreOp::Remove { key: 1 },
                StoreOp::RemoveEntry { key: 1 },
            ])
            .unwrap_err();
        assert_eq!(err, BatchError::DuplicateKey { key: 1 });
        assert!(
            PointMap::contains(&tree, &1),
            "failed batch mutates nothing"
        );
    }
}
