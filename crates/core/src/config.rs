//! Tree configuration and operational statistics.

use std::sync::atomic::{AtomicU64, Ordering};

pub use wft_queue::ReadPath;

/// Which root-queue implementation allocates timestamps (§II-D / §II-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootQueueKind {
    /// Michael–Scott based queue whose enqueue assigns `tail.ts + 1` in a
    /// CAS loop. Lock-free; this is the paper's baseline implementation.
    LockFree,
    /// Announce-array + fetch-and-add + helping queue (Lemma 1). Wait-free;
    /// bounded by the configured number of announce slots.
    WaitFree {
        /// Maximum number of concurrent enqueuers (the paper's `|P|`).
        slots: usize,
    },
}

/// Construction-time parameters of a [`crate::WaitFreeTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Rebuild factor `K` (§II-E): a subtree is rebuilt when its modification
    /// counter exceeds `K` times its size at creation.
    pub rebuild_factor: f64,
    /// Number of hash buckets of the presence index.
    pub presence_buckets: usize,
    /// Root queue implementation.
    pub root_queue: RootQueueKind,
    /// Which implementation answers reads (`get`/`contains`/`count`/
    /// `range_agg`/`collect_range`): the presence-index + optimistic-
    /// traversal fast paths ([`ReadPath::Fast`], the default) or the full
    /// descriptor machinery ([`ReadPath::Descriptor`], for testing and
    /// comparison). See `crate::read` for the linearization argument.
    pub read_path: ReadPath,
    /// How many optimistic traversals a range read attempts before falling
    /// back to the descriptor slow path (under [`ReadPath::Fast`]). A failed
    /// validation is usually caused by one in-flight update that the next
    /// attempt no longer sees, so a small bounded retry converts most
    /// would-be fallbacks into fast hits on bursty write traffic; `1`
    /// restores the single-attempt behaviour. Extra attempts are counted in
    /// [`TreeStats::fast_range_retries`].
    pub fast_read_attempts: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            rebuild_factor: 1.0,
            presence_buckets: 1 << 16,
            root_queue: RootQueueKind::LockFree,
            read_path: ReadPath::Fast,
            fast_read_attempts: 3,
        }
    }
}

impl TreeConfig {
    /// Validates the configuration, panicking on nonsensical values.
    pub(crate) fn validate(&self) {
        assert!(
            self.rebuild_factor.is_finite() && self.rebuild_factor > 0.0,
            "rebuild factor must be positive and finite"
        );
        if let RootQueueKind::WaitFree { slots } = self.root_queue {
            assert!(slots >= 1, "wait-free root queue needs at least one slot");
        }
        assert!(
            self.fast_read_attempts >= 1,
            "range reads need at least one optimistic attempt"
        );
    }
}

/// Live operational counters of a tree (all relaxed atomics; approximate
/// under concurrency but exact once the tree is quiescent).
#[derive(Debug, Default)]
pub struct TreeCounters {
    /// Successful inserts applied.
    pub inserts: AtomicU64,
    /// Replace (upsert) descriptors applied.
    pub replaces: AtomicU64,
    /// Successful removes applied.
    pub removes: AtomicU64,
    /// Update operations whose decision was "no effect".
    pub failed_updates: AtomicU64,
    /// Descriptors executed in nodes on behalf of *other* operations
    /// (hand-over-hand helping events).
    pub helped_executions: AtomicU64,
    /// Subtree rebuilds performed.
    pub rebuilds: AtomicU64,
    /// Data items copied into rebuilt subtrees.
    pub rebuilt_items: AtomicU64,
    /// Point reads (`get`/`contains`) answered from the presence index in
    /// `O(1)`, without a descriptor.
    pub fast_point_reads: AtomicU64,
    /// Range reads answered by a validated optimistic traversal, without a
    /// descriptor.
    pub fast_range_hits: AtomicU64,
    /// Additional optimistic attempts made after a failed validation
    /// (bounded by [`TreeConfig::fast_read_attempts`]) before either
    /// succeeding or falling back.
    pub fast_range_retries: AtomicU64,
    /// Range reads whose optimistic traversals all failed validation and
    /// which fell back to the descriptor slow path.
    pub range_fallbacks: AtomicU64,
    /// Limit-bounded collects (`collect_range_limited`) whose optimistic
    /// walk stopped early because the chunk limit was reached — the
    /// `O(log N + limit)` early exit of the streaming scan API.
    pub fast_range_early_exits: AtomicU64,
}

/// A point-in-time snapshot of [`TreeCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Successful inserts applied.
    pub inserts: u64,
    /// Replace (upsert) descriptors applied.
    pub replaces: u64,
    /// Successful removes applied.
    pub removes: u64,
    /// Updates that had no effect.
    pub failed_updates: u64,
    /// Helping events (descriptor executed by a non-initiator).
    pub helped_executions: u64,
    /// Subtree rebuilds performed.
    pub rebuilds: u64,
    /// Items copied during rebuilds.
    pub rebuilt_items: u64,
    /// Point reads answered from the presence index (no descriptor).
    pub fast_point_reads: u64,
    /// Range reads answered by a validated optimistic traversal.
    pub fast_range_hits: u64,
    /// Extra optimistic attempts after a failed validation.
    pub fast_range_retries: u64,
    /// Range reads that fell back to the descriptor slow path.
    pub range_fallbacks: u64,
    /// Limit-bounded collects whose optimistic walk early-exited at the
    /// chunk limit.
    pub fast_range_early_exits: u64,
}

impl TreeStats {
    /// Adds every field of `other` into `self` — the fold used by
    /// aggregations over several trees (e.g. a sharded store summing its
    /// per-shard stats into one `tree_stats()` view).
    pub fn accumulate(&mut self, other: &TreeStats) {
        self.inserts += other.inserts;
        self.replaces += other.replaces;
        self.removes += other.removes;
        self.failed_updates += other.failed_updates;
        self.helped_executions += other.helped_executions;
        self.rebuilds += other.rebuilds;
        self.rebuilt_items += other.rebuilt_items;
        self.fast_point_reads += other.fast_point_reads;
        self.fast_range_hits += other.fast_range_hits;
        self.fast_range_retries += other.fast_range_retries;
        self.range_fallbacks += other.range_fallbacks;
        self.fast_range_early_exits += other.fast_range_early_exits;
    }

    /// Mirrors the stats into a metrics snapshot under the given name
    /// prefix (e.g. `tree`) — the bridge between the legacy counter struct
    /// and the `wft-obs` registry/exporters.
    pub fn collect_into(&self, prefix: &str, out: &mut wft_obs::MetricsSnapshot) {
        out.push_counter(format!("{prefix}_inserts"), self.inserts);
        out.push_counter(format!("{prefix}_replaces"), self.replaces);
        out.push_counter(format!("{prefix}_removes"), self.removes);
        out.push_counter(format!("{prefix}_failed_updates"), self.failed_updates);
        out.push_counter(
            format!("{prefix}_helped_executions"),
            self.helped_executions,
        );
        out.push_counter(format!("{prefix}_rebuilds"), self.rebuilds);
        out.push_counter(format!("{prefix}_rebuilt_items"), self.rebuilt_items);
        out.push_counter(format!("{prefix}_fast_point_reads"), self.fast_point_reads);
        out.push_counter(format!("{prefix}_fast_range_hits"), self.fast_range_hits);
        out.push_counter(
            format!("{prefix}_fast_range_retries"),
            self.fast_range_retries,
        );
        out.push_counter(format!("{prefix}_range_fallbacks"), self.range_fallbacks);
        out.push_counter(
            format!("{prefix}_fast_range_early_exits"),
            self.fast_range_early_exits,
        );
    }
}

impl TreeCounters {
    pub(crate) fn snapshot(&self) -> TreeStats {
        TreeStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            replaces: self.replaces.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            failed_updates: self.failed_updates.load(Ordering::Relaxed),
            helped_executions: self.helped_executions.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            rebuilt_items: self.rebuilt_items.load(Ordering::Relaxed),
            fast_point_reads: self.fast_point_reads.load(Ordering::Relaxed),
            fast_range_hits: self.fast_range_hits.load(Ordering::Relaxed),
            fast_range_retries: self.fast_range_retries.load(Ordering::Relaxed),
            range_fallbacks: self.range_fallbacks.load(Ordering::Relaxed),
            fast_range_early_exits: self.fast_range_early_exits.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TreeConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "rebuild factor")]
    fn zero_rebuild_factor_rejected() {
        TreeConfig {
            rebuild_factor: 0.0,
            ..TreeConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_wait_free_queue_rejected() {
        TreeConfig {
            root_queue: RootQueueKind::WaitFree { slots: 0 },
            ..TreeConfig::default()
        }
        .validate();
    }

    #[test]
    fn counters_snapshot_reflects_bumps() {
        let counters = TreeCounters::default();
        TreeCounters::bump(&counters.inserts);
        TreeCounters::bump(&counters.inserts);
        TreeCounters::add(&counters.rebuilt_items, 40);
        let snap = counters.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.rebuilt_items, 40);
        assert_eq!(snap.removes, 0);
    }
}
