//! Concurrent correctness tests for the wait-free tree.
//!
//! These tests exercise the hand-over-hand helping engine under real thread
//! interleavings and check linearizability-derived invariants that do not
//! require knowing the exact linearization order:
//!
//! * per-key alternation: successful inserts and removes of one key must
//!   alternate, so their counts differ by at most one and the difference
//!   equals the key's final presence;
//! * per-thread exactness: a thread that is the only writer of a key range
//!   must observe exact `count` results for that range in its own program
//!   order;
//! * global conservation: once quiescent, `len()`, `count(ALL)`,
//!   `collect(ALL).len()` and the physical leaves all agree, and the
//!   structural invariants hold.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wft_core::{RootQueueKind, TreeConfig, WaitFreeTree};

/// Number of worker threads used throughout (kept small so the suite stays
/// fast on single-core CI machines while still producing real interleavings
/// through preemption).
const THREADS: usize = 4;

#[test]
fn disjoint_concurrent_inserts_are_all_applied() {
    const PER_THREAD: i64 = 2_000;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    assert!(tree.insert(t * PER_THREAD + i, ()), "fresh key must insert");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = THREADS as i64 * PER_THREAD;
    assert_eq!(tree.len(), total as u64);
    assert_eq!(tree.count(0, total - 1), total as u64);
    assert_eq!(
        tree.collect_range(0, total - 1).len() as i64,
        total,
        "collect must report every inserted key"
    );
    tree.check_invariants();
}

#[test]
fn racing_inserts_of_the_same_keys_succeed_exactly_once() {
    const KEYS: i64 = 1_500;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let successes = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let tree = Arc::clone(&tree);
            let successes = Arc::clone(&successes);
            thread::spawn(move || {
                for k in 0..KEYS {
                    if tree.insert(k, ()) {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        successes.load(Ordering::Relaxed),
        KEYS as u64,
        "each key must be successfully inserted exactly once across all racers"
    );
    assert_eq!(tree.len(), KEYS as u64);
    assert_eq!(tree.count(i64::MIN, i64::MAX), KEYS as u64);
    tree.check_invariants();
}

#[test]
fn per_key_insert_remove_alternation_holds_under_contention() {
    const KEYS: i64 = 64; // small key space => heavy per-key contention
    const OPS_PER_THREAD: usize = 3_000;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xFEED + t as u64);
                // per-key counters of successful inserts / removes
                let mut ins = vec![0u64; KEYS as usize];
                let mut rem = vec![0u64; KEYS as usize];
                for _ in 0..OPS_PER_THREAD {
                    let k = rng.gen_range(0..KEYS);
                    if rng.gen_bool(0.5) {
                        if tree.insert(k, ()) {
                            ins[k as usize] += 1;
                        }
                    } else if tree.remove(&k) {
                        rem[k as usize] += 1;
                    }
                }
                (ins, rem)
            })
        })
        .collect();
    let mut ins_total = vec![0u64; KEYS as usize];
    let mut rem_total = vec![0u64; KEYS as usize];
    for h in handles {
        let (ins, rem) = h.join().unwrap();
        for k in 0..KEYS as usize {
            ins_total[k] += ins[k];
            rem_total[k] += rem[k];
        }
    }
    let final_entries = tree.entries_quiescent();
    for k in 0..KEYS {
        let present = final_entries.iter().any(|(key, _)| *key == k);
        let diff = ins_total[k as usize] as i64 - rem_total[k as usize] as i64;
        assert!(
            diff == 0 || diff == 1,
            "key {k}: successful inserts ({}) and removes ({}) cannot both win twice in a row",
            ins_total[k as usize],
            rem_total[k as usize]
        );
        assert_eq!(
            diff == 1,
            present,
            "key {k}: final presence must match the update balance"
        );
    }
    assert_eq!(tree.len() as usize, final_entries.len());
    tree.check_invariants();
}

#[test]
fn count_is_exact_for_a_threads_private_range() {
    // Each thread owns a disjoint key range and is its only writer; by
    // linearizability + program order, every count over its own range must be
    // exact, no matter what the other threads do to the rest of the tree.
    const RANGE: i64 = 512;
    const STEPS: usize = 1_500;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let lo = t * RANGE;
                let hi = lo + RANGE - 1;
                let mut rng = StdRng::seed_from_u64(0xABCD + t as u64);
                let mut mine = std::collections::BTreeSet::new();
                for step in 0..STEPS {
                    let k = rng.gen_range(lo..=hi);
                    match rng.gen_range(0..4) {
                        0 | 1 => {
                            assert_eq!(tree.insert(k, ()), mine.insert(k), "step {step}");
                        }
                        2 => {
                            assert_eq!(tree.remove(&k), mine.remove(&k), "step {step}");
                        }
                        _ => {
                            let a = rng.gen_range(lo..=hi);
                            let b = rng.gen_range(a..=hi);
                            let expect = mine.range(a..=b).count() as u64;
                            assert_eq!(
                                tree.count(a, b),
                                expect,
                                "step {step}: exact count over privately-owned range [{a}, {b}]"
                            );
                        }
                    }
                }
                mine.len() as u64
            })
        })
        .collect();
    let mut expected_total = 0;
    for h in handles {
        expected_total += h.join().unwrap();
    }
    assert_eq!(tree.len(), expected_total);
    assert_eq!(tree.count(i64::MIN, i64::MAX), expected_total);
    tree.check_invariants();
}

#[test]
fn global_readers_see_consistent_counts_during_updates() {
    // Writers fill the key space; a reader repeatedly counts the whole range
    // and checks monotone-style bounds (counts can never exceed the number of
    // keys whose insertion has started, nor drop below zero, and must be
    // non-decreasing in this insert-only workload).
    const PER_THREAD: i64 = 1_200;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..(THREADS - 1) as i64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tree.insert(t * PER_THREAD + i, ());
                }
            })
        })
        .collect();
    let reader = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let max_possible = (THREADS as i64 - 1) * PER_THREAD;
            let mut last = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::Relaxed) {
                let n = tree.count(i64::MIN, i64::MAX);
                assert!(
                    n >= last,
                    "count went backwards ({last} -> {n}) in an insert-only workload"
                );
                assert!(n <= max_possible as u64);
                last = n;
                observations += 1;
            }
            observations
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let observations = reader.join().unwrap();
    assert!(observations > 0, "the reader must have run");
    let total = ((THREADS - 1) as i64 * PER_THREAD) as u64;
    assert_eq!(tree.count(i64::MIN, i64::MAX), total);
    tree.check_invariants();
}

#[test]
fn heavy_rebuilds_under_concurrency_preserve_contents() {
    // An aggressive rebuild factor forces frequent subtree rebuilds while
    // other threads are mid-operation.
    const PER_THREAD: i64 = 1_500;
    let cfg = TreeConfig {
        rebuild_factor: 0.25,
        ..TreeConfig::default()
    };
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::with_config(cfg));
    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x9E3779B9 ^ t as u64);
                let mut mine = std::collections::BTreeSet::new();
                let lo = t * PER_THREAD * 2;
                for _ in 0..PER_THREAD {
                    let k = lo + rng.gen_range(0..PER_THREAD * 2);
                    if rng.gen_bool(0.7) {
                        assert_eq!(tree.insert(k, ()), mine.insert(k));
                    } else {
                        assert_eq!(tree.remove(&k), mine.remove(&k));
                    }
                }
                mine
            })
        })
        .collect();
    let mut expected = std::collections::BTreeSet::new();
    for h in handles {
        expected.extend(h.join().unwrap());
    }
    assert!(
        tree.stats().rebuilds > 0,
        "the aggressive rebuild factor must trigger rebuilds"
    );
    let got: Vec<i64> = tree
        .entries_quiescent()
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let want: Vec<i64> = expected.into_iter().collect();
    assert_eq!(
        got, want,
        "tree contents diverged after concurrent rebuilds"
    );
    tree.check_invariants();
}

#[test]
fn wait_free_root_queue_under_concurrency() {
    const PER_THREAD: i64 = 800;
    let cfg = TreeConfig {
        root_queue: RootQueueKind::WaitFree { slots: THREADS * 2 },
        ..TreeConfig::default()
    };
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::with_config(cfg));
    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    assert!(tree.insert(t * PER_THREAD + i, ()));
                }
                for i in 0..PER_THREAD {
                    if i % 2 == 0 {
                        assert!(tree.remove(&(t * PER_THREAD + i)));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (THREADS as i64 * PER_THREAD / 2) as u64;
    assert_eq!(tree.len(), total);
    assert_eq!(tree.count(i64::MIN, i64::MAX), total);
    tree.check_invariants();
}

#[test]
fn mixed_workload_with_range_queries_and_prefill() {
    // Mirrors the paper's insert-delete workload shape: a prefilled tree, a
    // 50/50 insert/remove mix, plus concurrent count queries of varying
    // width. Functional checks are per-thread (each thread validates
    // operations on its own prefilled partition).
    const KEYSPACE: i64 = 4_096;
    const OPS: usize = 2_000;
    let prefill: Vec<(i64, ())> = (0..KEYSPACE)
        .filter(|k| k % 2 == 0)
        .map(|k| (k, ()))
        .collect();
    let prefilled_len = prefill.len() as u64;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::from_entries(prefill));
    assert_eq!(tree.len(), prefilled_len);

    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let span = KEYSPACE / THREADS as i64;
                let lo = t * span;
                let hi = lo + span - 1;
                let mut rng = StdRng::seed_from_u64(0xD1CE + t as u64);
                let mut mine: std::collections::BTreeSet<i64> =
                    (lo..=hi).filter(|k| k % 2 == 0).collect();
                for _ in 0..OPS {
                    let k = rng.gen_range(lo..=hi);
                    match rng.gen_range(0..5) {
                        0 | 1 => {
                            assert_eq!(tree.insert(k, ()), mine.insert(k));
                        }
                        2 | 3 => {
                            assert_eq!(tree.remove(&k), mine.remove(&k));
                        }
                        _ => {
                            let width = rng.gen_range(1..span);
                            let a = rng.gen_range(lo..=hi - 1);
                            let b = (a + width).min(hi);
                            assert_eq!(
                                tree.count(a, b),
                                mine.range(a..=b).count() as u64,
                                "count over private prefilled range"
                            );
                        }
                    }
                }
                mine.len() as u64
            })
        })
        .collect();
    let mut expected = 0;
    for h in handles {
        expected += h.join().unwrap();
    }
    assert_eq!(tree.len(), expected);
    assert_eq!(tree.count(0, KEYSPACE - 1), expected);
    assert_eq!(tree.collect_range(0, KEYSPACE - 1).len() as u64, expected);
    tree.check_invariants();
}
