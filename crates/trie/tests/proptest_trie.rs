//! Property tests for the wait-free trie: arbitrary operation sequences are
//! replayed against `BTreeMap`, and every observable result must agree.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wft_trie::WaitFreeTrie;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64),
    Contains(i64),
    Get(i64),
    Count(i64, i64),
    Collect(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A mix of a narrow hot range (forcing long divergence chains and constant
    // collisions) and the full key range (exercising sign handling).
    let key = prop_oneof![3 => -32i64..32, 1 => any::<i64>()];
    prop_oneof![
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        key.clone().prop_map(Op::Contains),
        key.clone().prop_map(Op::Get),
        (key.clone(), key.clone()).prop_map(|(a, b)| Op::Count(a.min(b), a.max(b))),
        (key.clone(), key).prop_map(|(a, b)| Op::Collect(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn sequential_equivalence_with_btreemap(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let trie: WaitFreeTrie<i64, i64> = WaitFreeTrie::new();
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let expected = !oracle.contains_key(&k);
                    if expected {
                        oracle.insert(k, v);
                    }
                    prop_assert_eq!(trie.insert(k, v), expected, "insert({})", k);
                }
                Op::Remove(k) => {
                    let expected = oracle.remove(&k);
                    prop_assert_eq!(trie.remove_entry(&k), expected, "remove({})", k);
                }
                Op::Contains(k) => {
                    prop_assert_eq!(trie.contains(&k), oracle.contains_key(&k), "contains({})", k);
                }
                Op::Get(k) => {
                    prop_assert_eq!(trie.get(&k), oracle.get(&k).copied(), "get({})", k);
                }
                Op::Count(min, max) => {
                    let expected = oracle.range(min..=max).count() as u64;
                    prop_assert_eq!(trie.count(min, max), expected, "count({}, {})", min, max);
                }
                Op::Collect(min, max) => {
                    let expected: Vec<(i64, i64)> =
                        oracle.range(min..=max).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(trie.collect_range(min, max), expected, "collect({}, {})", min, max);
                }
            }
            prop_assert_eq!(trie.len(), oracle.len() as u64);
        }
        trie.check_invariants();
        let entries: Vec<(i64, i64)> = oracle.into_iter().collect();
        prop_assert_eq!(trie.entries_quiescent(), entries);
    }

    #[test]
    fn from_entries_matches_individual_inserts(keys in prop::collection::vec(-80i64..80, 0..120)) {
        let bulk: WaitFreeTrie<i64> = WaitFreeTrie::from_entries(keys.iter().map(|&k| (k, ())));
        let incremental: WaitFreeTrie<i64> = WaitFreeTrie::new();
        for &k in &keys {
            incremental.insert(k, ());
        }
        prop_assert_eq!(bulk.entries_quiescent(), incremental.entries_quiescent());
        prop_assert_eq!(bulk.len(), incremental.len());
        bulk.check_invariants();
        incremental.check_invariants();
    }

    #[test]
    fn range_sum_matches_oracle(entries in prop::collection::vec((-50i64..50, 0i64..1000), 0..80),
                                ranges in prop::collection::vec((-60i64..60, -60i64..60), 1..12)) {
        use wft_trie::Sum;
        let trie: WaitFreeTrie<i64, i64, Sum> = WaitFreeTrie::new();
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        for &(k, v) in &entries {
            oracle.entry(k).or_insert(v);
            trie.insert(k, v);
        }
        for &(a, b) in &ranges {
            let (min, max) = (a.min(b), a.max(b));
            let expected: i128 = oracle.range(min..=max).map(|(_, v)| *v as i128).sum();
            prop_assert_eq!(trie.range_agg(min, max), expected);
        }
        trie.check_invariants();
    }
}
