//! Concurrent tests for the wait-free trie: the same adversarial patterns the
//! core tree is subjected to, adapted to bit-routing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wft_trie::WaitFreeTrie;

/// Simple xorshift so the tests do not depend on `rand` ordering.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn concurrent_disjoint_inserts_all_land() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2_000;
    let trie: Arc<WaitFreeTrie<u64>> = Arc::new(WaitFreeTrie::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let trie = Arc::clone(&trie);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    assert!(trie.insert(t * PER_THREAD + i, ()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(trie.len(), THREADS * PER_THREAD);
    assert_eq!(trie.count(0, u64::MAX), THREADS * PER_THREAD);
    trie.check_invariants();
}

#[test]
fn concurrent_contended_updates_keep_invariants() {
    const THREADS: usize = 4;
    const OPS: usize = 3_000;
    const RANGE: u64 = 128;
    let trie: Arc<WaitFreeTrie<u64>> = Arc::new(WaitFreeTrie::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let trie = Arc::clone(&trie);
            std::thread::spawn(move || {
                let mut state = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..OPS {
                    let key = xorshift(&mut state) % RANGE;
                    match xorshift(&mut state) % 3 {
                        0 => {
                            trie.insert(key, ());
                        }
                        1 => {
                            trie.remove(&key);
                        }
                        _ => {
                            trie.contains(&key);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    trie.check_invariants();
    assert_eq!(trie.entries_quiescent().len() as u64, trie.len());
    assert_eq!(trie.count(0, u64::MAX), trie.len());
}

#[test]
fn concurrent_counts_are_never_torn() {
    // Writers move one key out of a window while inserting another into it,
    // keeping the number of keys in the window invariant; concurrent counts
    // must always observe that invariant (this is the atomicity property a
    // collect-based count cannot give).
    const WINDOW: u64 = 1_000;
    const MOVES: u64 = 2_000;
    let trie: Arc<WaitFreeTrie<u64>> = Arc::new(WaitFreeTrie::new());
    // Pre-fill every even slot in the window: 500 keys.
    for k in (0..WINDOW).step_by(2) {
        trie.insert(k, ());
    }
    let expected = trie.count(0, WINDOW - 1);
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let trie = Arc::clone(&trie);
        std::thread::spawn(move || {
            // Each iteration removes one resident key and inserts a different
            // absent one — always in a single "swap" of two scalar updates, so
            // the count can momentarily be expected-1 or expected+1 but never
            // drift: we alternate remove-then-insert and insert-then-remove.
            for i in 0..MOVES {
                let out_key = (i * 2) % WINDOW;
                let in_key = (i * 2 + 1) % WINDOW;
                if i % 2 == 0 {
                    trie.remove(&out_key);
                    trie.insert(in_key, ());
                } else {
                    trie.insert(out_key, ());
                    trie.remove(&in_key);
                }
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let trie = Arc::clone(&trie);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let n = trie.count(0, WINDOW - 1);
                    // The writer keeps the population within ±1 of the
                    // initial value at every linearization point.
                    assert!(
                        n + 1 >= expected && n <= expected + 1,
                        "count {n} drifted from {expected}"
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();
    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must have observed counts");
    }
    trie.check_invariants();
}

#[test]
fn helping_counters_register_under_contention() {
    const THREADS: usize = 4;
    const OPS: usize = 1_500;
    let trie: Arc<WaitFreeTrie<u64>> = Arc::new(WaitFreeTrie::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let trie = Arc::clone(&trie);
            std::thread::spawn(move || {
                let mut state = (t as u64 + 7) | 1;
                for _ in 0..OPS {
                    // All threads fight over a handful of keys so descriptors
                    // pile up in the same queues.
                    let key = xorshift(&mut state) % 4;
                    if xorshift(&mut state).is_multiple_of(2) {
                        trie.insert(key, ());
                    } else {
                        trie.remove(&key);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = trie.stats();
    assert_eq!(
        stats.inserts - stats.removes,
        trie.len(),
        "successful updates must account for the final size"
    );
    trie.check_invariants();
}

#[test]
fn mixed_range_queries_and_updates() {
    const THREADS: usize = 3;
    const OPS: usize = 2_000;
    const RANGE: u64 = 512;
    let trie: Arc<WaitFreeTrie<u64>> = Arc::new(WaitFreeTrie::from_entries(
        (0..RANGE).step_by(4).map(|k| (k, ())),
    ));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let trie = Arc::clone(&trie);
            std::thread::spawn(move || {
                let mut state = (t as u64 + 3).wrapping_mul(0xD1B5_4A32_D192_ED03) | 1;
                for _ in 0..OPS {
                    let key = xorshift(&mut state) % RANGE;
                    match xorshift(&mut state) % 4 {
                        0 => {
                            trie.insert(key, ());
                        }
                        1 => {
                            trie.remove(&key);
                        }
                        2 => {
                            let width = xorshift(&mut state) % 64;
                            let n = trie.count(key, (key + width).min(RANGE - 1));
                            assert!(n <= width + 1, "count exceeds the range width");
                        }
                        _ => {
                            let width = xorshift(&mut state) % 16;
                            let hi = (key + width).min(RANGE - 1);
                            for (k, _) in trie.collect_range(key, hi) {
                                assert!(k >= key && k <= hi);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    trie.check_invariants();
    assert_eq!(trie.count(0, RANGE - 1), trie.len());
}
