//! The hand-over-hand helping engine, instantiated for bit-routing.
//!
//! The control flow is identical to the BST engine in `wft-core` (paper
//! Listings 1–3): enqueue at the fictive root to obtain a timestamp, help
//! every older descriptor, then walk the descriptor's traverse queue helping
//! at every node on the operation's path. Differences specific to the trie:
//!
//! * routing and range pruning use the node's fixed [`Coverage`] instead of a
//!   stored routing key and per-node range modes;
//! * the structural change of an insertion that lands on an occupied leaf is
//!   a *divergence chain* (single-child nodes down to the first differing
//!   bit) rather than a one-level split;
//! * there is no rebuilding — the depth is bounded by the key width, so the
//!   wait-freedom argument of §II-F needs no amortisation;
//! * structural CASes on leaf/empty slots are additionally guarded by the
//!   slot content's `created_ts`, so a stalled helper whose operation already
//!   took effect can never undo the work of a later operation that reused the
//!   slot.

use crossbeam_epoch::{Guard, Owned, Shared};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use wft_queue::{Timestamp, UpdateKind};
use wft_seq::{Augmentation, Value};

use crate::descriptor::{Descriptor, OpKind, OpRef, Partial};
use crate::key::TrieKey;
use crate::node::{
    build_divergence_chain, free_subtrie_now, Coverage, EmptyNode, InnerNode, LeafNode, Node,
    NodePtr, NodeState, Overlap, FICTIVE_ROOT_ID,
};
use crate::tree::WaitFreeTrie;

/// The node an operation is currently executed *in*.
pub(crate) enum ParentRef<'g, K: TrieKey, V: Value, A: Augmentation<K, V>> {
    /// The fictive root: owns the root queue and the real-root child slot.
    Fictive,
    /// A regular inner node.
    Inner(&'g InnerNode<K, V, A>),
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Clone for ParentRef<'_, K, V, A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Copy for ParentRef<'_, K, V, A> {}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> WaitFreeTrie<K, V, A> {
    /// Runs one operation end to end; returns its descriptor and timestamp.
    pub(crate) fn run_operation(&self, kind: OpKind<K, V>) -> (OpRef<K, V, A>, Timestamp) {
        let guard = crossbeam_epoch::pin();
        let op = Descriptor::new_ref(kind);
        let ts = self.root_queue.enqueue_assign(op.clone(), &guard);

        self.help_until(ParentRef::Fictive, ts, &guard);

        loop {
            match op.traverse.peek() {
                None => break,
                Some(node_ptr) => {
                    // SAFETY: initiator, guard pinned since before enqueue.
                    let node = unsafe { node_ptr.deref(&guard) };
                    if let Node::Inner(inner) = node {
                        self.help_until(ParentRef::Inner(inner), ts, &guard);
                    }
                    op.traverse.pop();
                }
            }
        }
        (op, ts)
    }

    /// `execute_until_timestamp` (Listing 1).
    pub(crate) fn help_until(&self, parent: ParentRef<'_, K, V, A>, ts: Timestamp, guard: &Guard) {
        loop {
            let head = match parent {
                ParentRef::Fictive => self.root_queue.peek(guard),
                ParentRef::Inner(inner) => inner.queue.peek(guard),
            };
            match head {
                None => return,
                Some((head_ts, head_op)) => {
                    if head_ts > ts {
                        return;
                    }
                    if head_ts != ts {
                        self.counters.helped_executions.fetch_add(1, Relaxed);
                    }
                    self.execute_op_at(&head_op, head_ts, parent, guard);
                }
            }
        }
    }

    /// `execute_in_node` (Listing 3). Idempotent.
    pub(crate) fn execute_op_at(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        parent: ParentRef<'_, K, V, A>,
        guard: &Guard,
    ) {
        if op.kind.is_update() && matches!(parent, ParentRef::Fictive) {
            self.resolve_update(op, ts, guard);
        }

        let parent_id = match parent {
            ParentRef::Fictive => FICTIVE_ROOT_ID,
            ParentRef::Inner(inner) => inner.id,
        };

        let mut partial: Partial<K, V, A::Agg> = match &op.kind {
            OpKind::Insert { .. } | OpKind::Replace { .. } | OpKind::Remove { .. } => Partial::Unit,
            OpKind::Lookup { .. } => Partial::Lookup(None),
            OpKind::RangeAgg { .. } => Partial::Agg(A::identity()),
            OpKind::Collect { .. } => Partial::Entries(Vec::new()),
        };

        match parent {
            ParentRef::Fictive => {
                let descend = match &op.kind {
                    // A replace always succeeds, so this also always descends.
                    OpKind::Insert { .. } | OpKind::Replace { .. } | OpKind::Remove { .. } => {
                        op.resolved_decision().success
                    }
                    _ => true,
                };
                if descend {
                    self.continue_into_child(
                        op,
                        ts,
                        &self.root_child,
                        Coverage::ROOT,
                        &mut partial,
                        guard,
                    );
                }
            }
            ParentRef::Inner(inner) => match &op.kind {
                OpKind::Insert { key, .. }
                | OpKind::Replace { key, .. }
                | OpKind::Remove { key }
                | OpKind::Lookup { key } => {
                    let (slot, coverage) = inner.child_slot(key.to_index());
                    self.continue_into_child(op, ts, slot, coverage, &mut partial, guard);
                }
                OpKind::RangeAgg { .. } => {
                    let (min, max) = op.kind.index_range();
                    for (slot, coverage) in [
                        (&inner.left, inner.coverage.left()),
                        (&inner.right, inner.coverage.right()),
                    ] {
                        match coverage.classify(min, max) {
                            Overlap::Disjoint => {}
                            Overlap::Contained => {
                                // The whole child subtree is inside the range:
                                // take its aggregate from the child, do not
                                // descend (this is what makes the query
                                // logarithmic in the key width).
                                // ORDERING: Acquire pairs with the AcqRel child-slot CASes, so the loaded
                                // child (and its state record) is fully initialised.
                                // SAFETY: `child` is epoch-protected under `guard` (retired only via
                                // `defer_destroy`/`retire_subtrie`).
                                let child = slot.load(Acquire, guard);
                                // SAFETY: as above.
                                let contribution = unsafe { child.deref() }.current_agg(guard);
                                merge_agg::<K, V, A>(&mut partial, &contribution);
                            }
                            Overlap::Partial => {
                                self.continue_into_child(
                                    op,
                                    ts,
                                    slot,
                                    coverage,
                                    &mut partial,
                                    guard,
                                );
                            }
                        }
                    }
                }
                OpKind::Collect { .. } => {
                    let (min, max) = op.kind.index_range();
                    for (slot, coverage) in [
                        (&inner.left, inner.coverage.left()),
                        (&inner.right, inner.coverage.right()),
                    ] {
                        if coverage.classify(min, max) != Overlap::Disjoint {
                            self.continue_into_child(op, ts, slot, coverage, &mut partial, guard);
                        }
                    }
                }
            },
        }

        op.processed.try_insert(parent_id, partial);

        match parent {
            ParentRef::Fictive => {
                self.root_queue.pop_if(ts, guard);
            }
            ParentRef::Inner(inner) => {
                inner.queue.pop_if(ts, guard);
            }
        }
    }

    /// Resolves the effect of an update at its linearization point through
    /// the presence index, exactly once.
    fn resolve_update(&self, op: &OpRef<K, V, A>, ts: Timestamp, guard: &Guard) {
        let (key, update) = match &op.kind {
            OpKind::Insert { key, value } => (key, UpdateKind::Insert(value.clone())),
            OpKind::Replace { key, value } => (key, UpdateKind::Replace(value.clone())),
            OpKind::Remove { key } => (key, UpdateKind::Remove),
            _ => unreachable!("resolve_update called for a read-only operation"),
        };
        // Advertise before the resolution can make the update visible — the
        // snapshot-front invariant shared with `wft-core` (monotone max, so
        // stalled helpers re-advertising old timestamps are no-ops).
        // ORDERING: must be totally ordered against the SeqCst watermark reads of
        // the snapshot-front validation in `tree.rs`/`read.rs`.
        // wft-lint: allow(seqcst) -- the snapshot-front proof needs the advertise, the update's effects and the validator's reads in one total order.
        self.advertised_ts
            .fetch_max(ts.get(), std::sync::atomic::Ordering::SeqCst);
        let (decision, first_application) =
            self.presence.resolve(key, ts, &update, &op.decision, guard);
        if first_application {
            if decision.success {
                match &op.kind {
                    OpKind::Insert { .. } => {
                        self.len.fetch_add(1, Relaxed);
                        self.counters.inserts.fetch_add(1, Relaxed);
                    }
                    OpKind::Replace { .. } => {
                        // An overwrite leaves the length unchanged.
                        if decision.prior_value.is_none() {
                            self.len.fetch_add(1, Relaxed);
                        }
                        self.counters.replaces.fetch_add(1, Relaxed);
                    }
                    OpKind::Remove { .. } => {
                        self.len.fetch_sub(1, Relaxed);
                        self.counters.removes.fetch_add(1, Relaxed);
                    }
                    _ => unreachable!(),
                }
            } else {
                self.counters.failed_updates.fetch_add(1, Relaxed);
            }
        }
        // Resolution complete: advance the resolved watermark (every helper
        // bumps it before it can pop the descriptor from the root queue).
        // ORDERING: SeqCst for the same total-order reason as the advertise —
        // "popped implies resolved" needs the bump ordered before the pop for
        // every observer.
        // wft-lint: allow(seqcst) -- pairs with the SeqCst resolved_ts reads of the snapshot-front validation.
        self.resolved_ts
            .fetch_max(ts.get(), std::sync::atomic::Ordering::SeqCst);
    }

    /// Continues the execution of `op` into the child stored in `slot`
    /// (which covers `coverage`).
    fn continue_into_child(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        coverage: Coverage,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes (divergence
        // chain install, remove, replace), so the observed node is initialised.
        // SAFETY: `child` is epoch-protected under `guard` and only retired via
        // `defer_destroy` after being unlinked.
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(c) => {
                // Make the child reachable for the initiator before the
                // descriptor can be executed (and popped) there.
                op.traverse.push(NodePtr::from_shared(child));
                if op.kind.is_update() {
                    self.apply_state_delta(op, ts, c, guard);
                }
                c.queue.push_if(ts, op.clone(), guard);
            }
            Node::Leaf(leaf) => {
                self.execute_at_leaf(op, ts, slot, child, leaf, coverage, partial, guard);
            }
            Node::Empty(empty) => {
                self.execute_at_empty(op, ts, slot, child, empty, partial, guard);
            }
        }
    }

    /// Applies the augmentation delta of a successful update to an inner
    /// child's state, exactly once (`Ts_Mod` guard, §II-C).
    fn apply_state_delta(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        child: &InnerNode<K, V, A>,
        guard: &Guard,
    ) {
        let decision = op.resolved_decision();
        if !decision.success {
            return;
        }
        let state_shared = child.load_state_shared(guard);
        // SAFETY: the state record is non-null by construction, loaded under
        // `guard`, and retired via `defer_destroy` only after the CAS below
        // replaces it.
        let state = unsafe { state_shared.deref() };
        if state.ts_mod >= ts {
            return;
        }
        let new_agg = match &op.kind {
            OpKind::Insert { key, value } => A::insert_delta(&state.agg, key, value),
            OpKind::Replace { key, value } => {
                // New entry in, displaced entry out (plain insertion when the
                // key was absent).
                let added = A::insert_delta(&state.agg, key, value);
                match decision.prior_value.as_ref() {
                    Some(prior) => A::remove_delta(&added, key, prior),
                    None => added,
                }
            }
            OpKind::Remove { key } => {
                let prior = decision
                    .prior_value
                    .as_ref()
                    .expect("a successful remove always knows the removed value");
                A::remove_delta(&state.agg, key, prior)
            }
            _ => unreachable!("state deltas only exist for updates"),
        };
        let new_state = Owned::new(NodeState {
            agg: new_agg,
            ts_mod: ts,
        });
        // ORDERING: success AcqRel — Release publishes the new state record to the
        // Acquire `load_state` reads, Acquire orders the swap after the `ts_mod`
        // check; failure Acquire reads the record a faster helper installed.
        if child
            .state
            .compare_exchange(state_shared, new_state, AcqRel, Acquire, guard)
            .is_ok()
        {
            // SAFETY: our CAS unlinked `state_shared` (single winner per predecessor),
            // so the record is retired exactly once; readers hold epoch guards.
            unsafe { guard.defer_destroy(state_shared) };
        }
    }

    /// Bottom-of-path handling when the continuation child is a leaf.
    #[allow(clippy::too_many_arguments)]
    fn execute_at_leaf(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        child: Shared<'_, Node<K, V, A>>,
        leaf: &LeafNode<K, V>,
        coverage: Coverage,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        match &op.kind {
            OpKind::Insert { key, value } | OpKind::Replace { key, value } => {
                // A leaf created by a later operation means our structural
                // change already happened and the slot was since reused:
                // leave it alone.
                if leaf.created_ts >= ts {
                    return;
                }
                if &leaf.key == key {
                    if matches!(op.kind, OpKind::Insert { .. }) {
                        // The key is already physically present (installed
                        // through a rebuilt chain); nothing to do.
                        return;
                    }
                    // Replace bottoming out on its own key: install a leaf
                    // carrying the new value; the expected-pointer CAS keeps
                    // this exactly-once among racing helpers.
                    let new_leaf = Node::Leaf(LeafNode {
                        key: *key,
                        value: value.clone(),
                        created_ts: ts,
                    });
                    // ORDERING: success AcqRel — Release publishes the new leaf, Acquire
                    // orders the swap after the `created_ts`/key checks; failure Acquire is
                    // the conservative mirror (the result is discarded).
                    match slot.compare_exchange(child, Owned::new(new_leaf), AcqRel, Acquire, guard)
                    {
                        // SAFETY: our CAS unlinked the old leaf (single winner per expected
                        // pointer); readers are protected by their epoch guards.
                        Ok(_) => unsafe { guard.defer_destroy(child) },
                        Err(e) => {
                            // SAFETY: the CAS failed, so `e.new` was never published; this thread
                            // still owns it exclusively and may free it in place.
                            free_subtrie_now(
                                e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                            );
                        }
                    }
                    return;
                }
                let chain = build_divergence_chain::<K, V, A>(
                    (leaf.key, leaf.value.clone()),
                    (*key, value.clone()),
                    coverage,
                    ts,
                    &self.ids,
                );
                // ORDERING: success AcqRel — Release publishes the fully built divergence
                // chain to the Acquire child loads, Acquire orders it after the guard
                // checks; failure Acquire mirrors the success ordering.
                match slot.compare_exchange(child, Owned::new(chain), AcqRel, Acquire, guard) {
                    // SAFETY: our CAS unlinked the old leaf (single winner per expected
                    // pointer); readers hold epoch guards.
                    Ok(_) => unsafe { guard.defer_destroy(child) },
                    Err(e) => {
                        // SAFETY: the CAS failed, so the speculative chain in `e.new` was never
                        // published; this thread owns it exclusively.
                        free_subtrie_now(
                            e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                        );
                    }
                }
            }
            OpKind::Remove { key } => {
                if leaf.created_ts >= ts || &leaf.key != key {
                    return;
                }
                // ORDERING: success AcqRel — Release publishes the Empty placeholder,
                // Acquire orders it after the `created_ts` check; failure Acquire mirrors
                // the success ordering.
                match slot.compare_exchange(
                    child,
                    Owned::new(Node::empty(ts)),
                    AcqRel,
                    Acquire,
                    guard,
                ) {
                    // SAFETY: our CAS unlinked the removed leaf (single winner per expected
                    // pointer); readers hold epoch guards.
                    Ok(_) => unsafe { guard.defer_destroy(child) },
                    Err(e) => {
                        // SAFETY: the CAS failed, so the placeholder in `e.new` was never
                        // published; this thread owns it exclusively.
                        free_subtrie_now(
                            e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                        );
                    }
                }
            }
            OpKind::Lookup { key } => {
                let found = if &leaf.key == key {
                    Some(leaf.value.clone())
                } else {
                    None
                };
                *partial = Partial::Lookup(Some(found));
            }
            OpKind::RangeAgg { min, max } => {
                if min <= &leaf.key && &leaf.key <= max {
                    let contribution = A::of_entry(&leaf.key, &leaf.value);
                    merge_agg::<K, V, A>(partial, &contribution);
                }
            }
            OpKind::Collect { min, max } => {
                if min <= &leaf.key && &leaf.key <= max {
                    if let Partial::Entries(entries) = partial {
                        entries.push((leaf.key, leaf.value.clone()));
                    }
                }
            }
        }
    }

    /// Bottom-of-path handling when the continuation child is an empty
    /// placeholder.
    #[allow(clippy::too_many_arguments)]
    fn execute_at_empty(
        &self,
        op: &OpRef<K, V, A>,
        ts: Timestamp,
        slot: &crossbeam_epoch::Atomic<Node<K, V, A>>,
        child: Shared<'_, Node<K, V, A>>,
        empty: &EmptyNode,
        partial: &mut Partial<K, V, A::Agg>,
        guard: &Guard,
    ) {
        match &op.kind {
            OpKind::Insert { key, value } | OpKind::Replace { key, value } => {
                if empty.created_ts >= ts {
                    // The placeholder was created by a later removal: our
                    // insertion has already been applied and undone by
                    // later linearized operations.
                    return;
                }
                let leaf = Node::Leaf(LeafNode {
                    key: *key,
                    value: value.clone(),
                    created_ts: ts,
                });
                // ORDERING: success AcqRel — Release publishes the new leaf, Acquire
                // orders it after the `created_ts` check; failure Acquire mirrors the
                // success ordering.
                match slot.compare_exchange(child, Owned::new(leaf), AcqRel, Acquire, guard) {
                    // SAFETY: our CAS unlinked the Empty placeholder (single winner per
                    // expected pointer); readers hold epoch guards.
                    Ok(_) => unsafe { guard.defer_destroy(child) },
                    Err(e) => {
                        // SAFETY: the CAS failed, so the leaf in `e.new` was never published; this
                        // thread owns it exclusively.
                        free_subtrie_now(
                            e.new.into_shared(unsafe { crossbeam_epoch::unprotected() }),
                        );
                    }
                }
            }
            OpKind::Remove { .. } => {
                // A successful remove only bottoms out at Empty if a stalled
                // helper arrives after the fact; nothing to do.
            }
            OpKind::Lookup { .. } => {
                *partial = Partial::Lookup(Some(None));
            }
            OpKind::RangeAgg { .. } | OpKind::Collect { .. } => {}
        }
    }
}

/// Folds an aggregate contribution into a `Partial::Agg` accumulator.
fn merge_agg<K: TrieKey, V: Value, A: Augmentation<K, V>>(
    partial: &mut Partial<K, V, A::Agg>,
    contribution: &A::Agg,
) {
    if let Partial::Agg(acc) = partial {
        *acc = A::combine(acc, contribution);
    }
}
