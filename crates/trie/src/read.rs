//! Descriptor-free read fast paths — the trie mirror of `wft_core::read`.
//!
//! Point reads are answered in `O(1)` from the presence index (the trie's
//! resolution authority, exactly as in the BST); aggregate range reads
//! attempt an optimistic validated traversal and fall back to the
//! descriptor path when validation fails. See `wft_core::read` for the full
//! linearization argument — it carries over verbatim, with two
//! simplifications on the trie side:
//!
//! * pruning uses the node's fixed [`Coverage`] interval instead of
//!   per-node range modes (`Contained` children are absorbed through their
//!   stored aggregate, `Partial` children are descended, `Disjoint`
//!   children are skipped);
//! * there are no §II-E rebuilds, so child slots only ever change through
//!   leaf-level CASes — the slot-pointer checks of the read log cover them.

use crossbeam_epoch::{Atomic, Guard, Shared};
use std::sync::atomic::Ordering::Acquire;

use wft_seq::{Augmentation, Value};

use crate::key::TrieKey;
use crate::node::{Coverage, InnerNode, Node, NodeState, Overlap};
use crate::tree::WaitFreeTrie;

/// A logged `(inner node, observed state pointer)` pair.
type StateObservation<'g, K, V, A> = (
    &'g InnerNode<K, V, A>,
    Shared<'g, NodeState<<A as Augmentation<K, V>>::Agg>>,
);

/// A logged `(child slot, observed child pointer)` pair.
type SlotObservation<'g, K, V, A> = (&'g Atomic<Node<K, V, A>>, Shared<'g, Node<K, V, A>>);

/// The read log of one optimistic traversal (see `wft_core::read`).
struct ReadLog<'g, K: TrieKey, V: Value, A: Augmentation<K, V>> {
    /// Inner nodes the traversal descended through, with the state pointer
    /// observed at the visit. Queues are re-checked at validation.
    descended: Vec<StateObservation<'g, K, V, A>>,
    /// `Contained` inner children whose stored aggregate was absorbed.
    absorbed: Vec<StateObservation<'g, K, V, A>>,
    /// Leaf/empty child slots whose content was read.
    slots: Vec<SlotObservation<'g, K, V, A>>,
}

impl<'g, K: TrieKey, V: Value, A: Augmentation<K, V>> ReadLog<'g, K, V, A> {
    fn new() -> Self {
        ReadLog {
            descended: Vec::new(),
            absorbed: Vec::new(),
            slots: Vec::new(),
        }
    }

    fn validate(&self, guard: &'g Guard) -> bool {
        self.descended.iter().all(|(node, state)| {
            node.load_state_shared(guard) == *state && node.queue.is_empty(guard)
        }) && self
            .absorbed
            .iter()
            .all(|(node, state)| node.load_state_shared(guard) == *state)
            && self
                .slots
                .iter()
                // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec` — an
                // unchanged pointer means the slot was not modified since it was logged.
                .all(|(slot, child)| slot.load(Acquire, guard) == *child)
    }
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> WaitFreeTrie<K, V, A> {
    /// `true` while a resolved (hence linearized, point-read-visible)
    /// successful update may not yet have applied its first effect below
    /// the fictive root; such an update is always the root-queue head for
    /// the whole window (see `wft_core::read`), so an optimistic range read
    /// overlapping it must fall back.
    fn resolved_update_pending(&self, guard: &Guard) -> bool {
        match self.root_queue.peek(guard) {
            None => false,
            Some((_ts, op)) => op.kind.is_update() && op.decision.get().is_some_and(|d| d.success),
        }
    }

    /// Optimistic descriptor-free `range_agg` over `[min, max]`; `None`
    /// when validation fails and the descriptor slow path must run.
    pub(crate) fn try_fast_range_agg(&self, min: K, max: K, guard: &Guard) -> Option<A::Agg> {
        if self.resolved_update_pending(guard) {
            return None;
        }
        let mut log = ReadLog::new();
        let mut acc = A::identity();
        self.walk_agg_slot(
            &self.root_child,
            Coverage::ROOT,
            (min.to_index(), max.to_index()),
            (&min, &max),
            &mut acc,
            &mut log,
            guard,
        )?;
        if log.validate(guard) && !self.resolved_update_pending(guard) {
            Some(acc)
        } else {
            None
        }
    }

    /// Optimistic descriptor-free `collect_range` over `[min, max]`;
    /// entries in key order. `None` on validation failure.
    pub(crate) fn try_fast_collect(&self, min: K, max: K, guard: &Guard) -> Option<Vec<(K, V)>> {
        self.try_fast_collect_limited(min, max, usize::MAX, guard)
            .map(|(out, _)| out)
    }

    /// Optimistic collect of the (up to) `limit` smallest entries of
    /// `[min, max]` — the trie mirror of
    /// `wft_core::WaitFreeTree::try_fast_collect_limited`. The in-order
    /// walk stops once `limit` entries are gathered; skipped slots cover
    /// only larger keys (bit-routing keeps children in key order), so the
    /// result is a prefix of the full listing and validating the visited
    /// log suffices. The bool is `true` when the limit cut the walk short.
    pub(crate) fn try_fast_collect_limited(
        &self,
        min: K,
        max: K,
        limit: usize,
        guard: &Guard,
    ) -> Option<(Vec<(K, V)>, bool)> {
        if self.resolved_update_pending(guard) {
            return None;
        }
        let mut log = ReadLog::new();
        let mut out = Vec::new();
        let mut early_exit = false;
        self.walk_collect_slot(
            &self.root_child,
            Coverage::ROOT,
            (min.to_index(), max.to_index()),
            (&min, &max),
            limit,
            &mut out,
            &mut early_exit,
            &mut log,
            guard,
        )?;
        if log.validate(guard) && !self.resolved_update_pending(guard) {
            Some((out, early_exit))
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_agg_slot<'g>(
        &self,
        slot: &'g Atomic<Node<K, V, A>>,
        coverage: Coverage,
        idx: (u64, u64),
        bounds: (&K, &K),
        acc: &mut A::Agg,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) -> Option<()> {
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`, so
        // the loaded node is fully initialised.
        // SAFETY: `child` is epoch-protected under `guard` and retired only via
        // `defer_destroy` after being unlinked.
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(inner) => {
                if !inner.queue.is_empty(guard) {
                    return None;
                }
                log.descended.push((inner, inner.load_state_shared(guard)));
                for (child_slot, child_cov) in [
                    (&inner.left, coverage.left()),
                    (&inner.right, coverage.right()),
                ] {
                    match child_cov.classify(idx.0, idx.1) {
                        Overlap::Disjoint => {}
                        Overlap::Contained => self.absorb_child(child_slot, acc, log, guard),
                        Overlap::Partial => {
                            self.walk_agg_slot(
                                child_slot, child_cov, idx, bounds, acc, log, guard,
                            )?;
                        }
                    }
                }
                Some(())
            }
            Node::Leaf(leaf) => {
                log.slots.push((slot, child));
                if bounds.0 <= &leaf.key && &leaf.key <= bounds.1 {
                    *acc = A::combine(acc, &A::of_entry(&leaf.key, &leaf.value));
                }
                Some(())
            }
            Node::Empty(_) => {
                log.slots.push((slot, child));
                Some(())
            }
        }
    }

    /// Absorbs a `Contained` child through its stored (eagerly maintained)
    /// aggregate without descending.
    fn absorb_child<'g>(
        &self,
        slot: &'g Atomic<Node<K, V, A>>,
        acc: &mut A::Agg,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) {
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`, so
        // the loaded node is fully initialised.
        // SAFETY: `child` is epoch-protected under `guard` and retired only via
        // `defer_destroy` after being unlinked.
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(inner) => {
                let state = inner.load_state_shared(guard);
                // SAFETY: state records are non-null by construction and epoch-protected
                // under `guard`; the pointer was loaded with Acquire in
                // `load_state_shared`.
                *acc = A::combine(acc, &unsafe { state.deref() }.agg);
                log.absorbed.push((inner, state));
            }
            Node::Leaf(leaf) => {
                log.slots.push((slot, child));
                *acc = A::combine(acc, &A::of_entry(&leaf.key, &leaf.value));
            }
            Node::Empty(_) => {
                log.slots.push((slot, child));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_collect_slot<'g>(
        &self,
        slot: &'g Atomic<Node<K, V, A>>,
        coverage: Coverage,
        idx: (u64, u64),
        bounds: (&K, &K),
        limit: usize,
        out: &mut Vec<(K, V)>,
        early_exit: &mut bool,
        log: &mut ReadLog<'g, K, V, A>,
        guard: &'g Guard,
    ) -> Option<()> {
        if out.len() >= limit {
            *early_exit = true;
            return Some(());
        }
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`, so
        // the loaded node is fully initialised.
        // SAFETY: `child` is epoch-protected under `guard` and retired only via
        // `defer_destroy` after being unlinked.
        let child = slot.load(Acquire, guard);
        // SAFETY: as above.
        match unsafe { child.deref() } {
            Node::Inner(inner) => {
                if !inner.queue.is_empty(guard) {
                    return None;
                }
                log.descended.push((inner, inner.load_state_shared(guard)));
                for (child_slot, child_cov) in [
                    (&inner.left, coverage.left()),
                    (&inner.right, coverage.right()),
                ] {
                    if child_cov.classify(idx.0, idx.1) != Overlap::Disjoint {
                        self.walk_collect_slot(
                            child_slot, child_cov, idx, bounds, limit, out, early_exit, log, guard,
                        )?;
                    }
                }
                Some(())
            }
            Node::Leaf(leaf) => {
                log.slots.push((slot, child));
                if bounds.0 <= &leaf.key && &leaf.key <= bounds.1 {
                    out.push((leaf.key, leaf.value.clone()));
                }
                Some(())
            }
            Node::Empty(_) => {
                log.slots.push((slot, child));
                Some(())
            }
        }
    }
}
