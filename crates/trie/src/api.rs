//! [`wft_api`] trait implementations for [`WaitFreeTrie`].
//!
//! The trie shares the BST's descriptor semantics, so the mapping is the
//! same: one descriptor per update ([`PointMap::replace`] →
//! [`crate::OpKind::Replace`]), [`RangeSpec`] resolved once at the boundary,
//! batches through the shared serial helper.

use wft_api::{
    apply_batch_point, BatchApply, BatchError, ChunkRead, FrontScanCursor, OpOutcome, PointMap,
    RangeKey, RangeRead, RangeScan, RangeSpec, StoreOp, TimestampFront, UpdateOutcome,
};
use wft_seq::{Augmentation, Value};

use crate::key::TrieKey;
use crate::tree::WaitFreeTrie;

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> PointMap<K, V> for WaitFreeTrie<K, V, A> {
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V> {
        let (op, _ts) = self.run_operation(crate::OpKind::Insert { key, value });
        let decision = op.resolved_decision();
        if decision.success {
            UpdateOutcome::Applied { prior: None }
        } else {
            UpdateOutcome::Unchanged {
                current: decision.prior_value.clone(),
            }
        }
    }

    fn replace(&self, key: K, value: V) -> UpdateOutcome<V> {
        UpdateOutcome::Applied {
            prior: self.insert_or_replace(key, value),
        }
    }

    fn remove(&self, key: &K) -> UpdateOutcome<V> {
        let (op, _ts) = self.run_operation(crate::OpKind::Remove { key: *key });
        let decision = op.resolved_decision();
        if decision.success {
            UpdateOutcome::Applied {
                prior: decision.prior_value.clone(),
            }
        } else {
            UpdateOutcome::Unchanged { current: None }
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        WaitFreeTrie::get(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        // Presence-only: `O(1)` on the fast read path and never clones the
        // value, unlike the trait's `get(key).is_some()` default.
        WaitFreeTrie::contains(self, key)
    }

    fn len(&self) -> u64 {
        WaitFreeTrie::len(self)
    }
}

impl<K, V, A> RangeRead<K, V> for WaitFreeTrie<K, V, A>
where
    K: TrieKey + RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Agg = A::Agg;

    fn range_agg(&self, range: RangeSpec<K>) -> A::Agg {
        wft_api::agg_over(range, A::identity, |min, max| {
            WaitFreeTrie::range_agg(self, min, max)
        })
    }

    fn count(&self, range: RangeSpec<K>) -> u64 {
        wft_api::count_over(
            range,
            |min, max| WaitFreeTrie::range_agg(self, min, max),
            A::count_of,
            |min, max| WaitFreeTrie::collect_range(self, min, max).len() as u64,
        )
    }

    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)> {
        wft_api::collect_over(range, |min, max| {
            WaitFreeTrie::collect_range(self, min, max)
        })
    }
}

/// The trie's chunk primitive: the limit-bounded optimistic collect
/// (`O(W + limit)` per chunk, early exits counted in
/// [`crate::TrieStats::fast_range_early_exits`]).
impl<K, V, A> ChunkRead<K, V> for WaitFreeTrie<K, V, A>
where
    K: TrieKey + RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    fn collect_chunk(&self, min: K, max: K, limit: usize) -> Vec<(K, V)> {
        WaitFreeTrie::collect_range_limited(self, min, max, limit)
    }
}

/// Streaming scans through the shared front-sandwich cursor.
impl<K, V, A> RangeScan<K, V> for WaitFreeTrie<K, V, A>
where
    K: TrieKey + RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Cursor<'a>
        = FrontScanCursor<'a, Self, K, V>
    where
        Self: 'a;

    fn scan(&self, range: RangeSpec<K>) -> FrontScanCursor<'_, Self, K, V> {
        FrontScanCursor::new(self, range)
    }
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> BatchApply<K, V> for WaitFreeTrie<K, V, A> {
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        apply_batch_point(self, batch)
    }
}

/// Opts into the blanket `SnapshotRead`: plain reads here are
/// validation-free linearizable queries, so the blanket's sandwich is the
/// single validation layer.
impl<K: TrieKey, V: Value, A: Augmentation<K, V>> wft_api::FrontSnapshot for WaitFreeTrie<K, V, A> {}

/// The trie shares the BST's root-queue timestamp front, so the blanket
/// [`wft_api::SnapshotRead`] applies to it the same way.
impl<K: TrieKey, V: Value, A: Augmentation<K, V>> TimestampFront for WaitFreeTrie<K, V, A> {
    fn settle_front(&self) -> u64 {
        WaitFreeTrie::settle_front(self).get()
    }

    fn front_advertised(&self) -> u64 {
        self.advertised_ts().get()
    }

    fn front_resolved(&self) -> u64 {
        self.stable_ts().get()
    }
}

/// Mirrors the trie's operational counters ([`WaitFreeTrie::stats`]) plus
/// its size into the `wft-obs` metrics vocabulary under the `trie_` prefix
/// (same bridge as `wft_core`'s impl: the legacy counters stay the source
/// of truth).
impl<K: TrieKey, V: Value, A: Augmentation<K, V>> wft_obs::MetricsSource for WaitFreeTrie<K, V, A> {
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        let stats = self.stats();
        out.push_counter("trie_inserts", stats.inserts);
        out.push_counter("trie_replaces", stats.replaces);
        out.push_counter("trie_removes", stats.removes);
        out.push_counter("trie_failed_updates", stats.failed_updates);
        out.push_counter("trie_helped_executions", stats.helped_executions);
        out.push_counter("trie_fast_point_reads", stats.fast_point_reads);
        out.push_counter("trie_fast_range_hits", stats.fast_range_hits);
        out.push_counter("trie_fast_range_retries", stats.fast_range_retries);
        out.push_counter("trie_range_fallbacks", stats.range_fallbacks);
        out.push_counter("trie_fast_range_early_exits", stats.fast_range_early_exits);
        out.push_gauge("trie_len", self.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_surface_matches_inherent_semantics() {
        let trie: WaitFreeTrie<u64, u64> = WaitFreeTrie::new();
        assert!(PointMap::insert(&trie, 1, 10).is_applied());
        assert_eq!(
            PointMap::replace(&trie, 1, 11),
            UpdateOutcome::Applied { prior: Some(10) }
        );
        assert_eq!(RangeRead::count(&trie, RangeSpec::all()), 1);
        assert_eq!(RangeRead::count(&trie, RangeSpec::inclusive(9, 3)), 0);
        let outcomes = trie
            .apply_batch(vec![StoreOp::InsertOrReplace { key: 1, value: 12 }])
            .unwrap();
        assert_eq!(outcomes, vec![OpOutcome::Replaced(Some(11))]);
    }
}
