//! The public concurrent trie type.

use crossbeam_epoch::Atomic;
use std::sync::atomic::{AtomicU64, Ordering};

use wft_queue::{PresenceIndex, ReadPath, Timestamp, TsQueue};
use wft_seq::{Augmentation, Size, Value};

use crate::descriptor::{OpKind, OpRef};
use crate::key::TrieKey;
use crate::node::{build_subtrie, collect_subtrie, free_subtrie_now, Coverage, IdAllocator, Node};

/// Operational counters of a [`WaitFreeTrie`] (diagnostics and tests).
#[derive(Debug, Default)]
pub(crate) struct TrieCounters {
    pub(crate) inserts: AtomicU64,
    pub(crate) replaces: AtomicU64,
    pub(crate) removes: AtomicU64,
    pub(crate) failed_updates: AtomicU64,
    pub(crate) helped_executions: AtomicU64,
    pub(crate) fast_point_reads: AtomicU64,
    pub(crate) fast_range_hits: AtomicU64,
    pub(crate) fast_range_retries: AtomicU64,
    pub(crate) range_fallbacks: AtomicU64,
    pub(crate) fast_range_early_exits: AtomicU64,
}

/// How many optimistic traversals a range read attempts before falling back
/// to the descriptor slow path (mirrors
/// `wft_core::TreeConfig::fast_read_attempts`, which defaults to the same
/// value; the trie keeps it fixed rather than growing a config struct for
/// one knob).
pub(crate) const FAST_READ_ATTEMPTS: usize = 3;

/// A snapshot of the operational counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieStats {
    /// Successful insertions.
    pub inserts: u64,
    /// Replace (upsert) descriptors applied.
    pub replaces: u64,
    /// Successful removals.
    pub removes: u64,
    /// Updates that did not change the set (key already present / absent).
    pub failed_updates: u64,
    /// Descriptor executions performed on behalf of *other* operations.
    pub helped_executions: u64,
    /// Point reads answered from the presence index (no descriptor).
    pub fast_point_reads: u64,
    /// Range reads answered by a validated optimistic traversal.
    pub fast_range_hits: u64,
    /// Extra optimistic attempts after a failed validation (bounded retry).
    pub fast_range_retries: u64,
    /// Range reads that fell back to the descriptor slow path.
    pub range_fallbacks: u64,
    /// Limit-bounded collects whose optimistic walk early-exited at the
    /// chunk limit (the streaming scan chunk primitive).
    pub fast_range_early_exits: u64,
}

/// A linearizable concurrent ordered map over fixed-width integer keys with
/// wait-free operations and aggregate range queries in `O(W + |P|)` time
/// (where `W` is the key width in bits).
///
/// This is the paper's hand-over-hand-helping scheme (§II) instantiated for a
/// **binary trie**: the paper's conclusion lists tries (and quad trees) as
/// the natural next data structures for the technique, and this type shows
/// that the scheme indeed carries over — the descriptor queues, timestamps,
/// helping and exactly-once state updates are shared with the BST through the
/// `wft-queue` substrates, only the routing and the structural changes
/// differ:
///
/// * routing follows the bits of an order-preserving 64-bit key index
///   ([`crate::TrieKey`]), so a node's subtree is always a fixed key
///   interval and aggregate range queries prune/absorb whole subtrees;
/// * there is no rebalancing and therefore no rebuilding — the depth is
///   bounded by the key width, so every bound is worst-case rather than
///   amortized.
///
/// # Example
///
/// ```
/// use wft_trie::WaitFreeTrie;
///
/// let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
/// trie.insert(10, ());
/// trie.insert(500, ());
/// trie.insert(2_000, ());
/// assert!(trie.contains(&500));
/// assert_eq!(trie.count(0, 1_000), 2);
/// trie.remove(&10);
/// assert_eq!(trie.count(0, 1_000), 1);
/// ```
pub struct WaitFreeTrie<K: TrieKey, V: Value = (), A: Augmentation<K, V> = Size> {
    pub(crate) root_queue: TsQueue<OpRef<K, V, A>>,
    pub(crate) root_child: Atomic<Node<K, V, A>>,
    pub(crate) presence: PresenceIndex<K, V>,
    pub(crate) ids: IdAllocator,
    pub(crate) counters: TrieCounters,
    pub(crate) len: AtomicU64,
    pub(crate) read_path: ReadPath,
    /// Highest update timestamp whose linearization has begun (bumped before
    /// the presence-index resolution makes the update visible); mirrors
    /// `wft_core::WaitFreeTree::advertised_ts`.
    pub(crate) advertised_ts: AtomicU64,
    /// Highest update timestamp whose linearization has completed. Always
    /// `<= advertised_ts`; equality means no update is mid-linearization.
    pub(crate) resolved_ts: AtomicU64,
}

// SAFETY: all shared mutation goes through atomics and epoch-protected
// pointers; `K`, `V` and the augmentation are `Send + Sync` by bound, so
// moving the structure across threads is sound.
unsafe impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Send for WaitFreeTrie<K, V, A> {}
// SAFETY: same argument as `Send` — concurrent access is mediated by
// atomics and epoch guards throughout.
unsafe impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Sync for WaitFreeTrie<K, V, A> {}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Default for WaitFreeTrie<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> WaitFreeTrie<K, V, A> {
    /// Creates an empty trie with the default read path
    /// ([`ReadPath::Fast`]).
    pub fn new() -> Self {
        Self::with_read_path(ReadPath::Fast)
    }

    /// Creates an empty trie with an explicit [`ReadPath`] (mirrors
    /// `wft_core::TreeConfig::read_path`; primarily for tests that force
    /// the descriptor read path).
    pub fn with_read_path(read_path: ReadPath) -> Self {
        WaitFreeTrie {
            root_queue: TsQueue::new(Timestamp::ZERO),
            root_child: Atomic::new(Node::empty(Timestamp::ZERO)),
            presence: PresenceIndex::new(),
            ids: IdAllocator::new(),
            counters: TrieCounters::default(),
            len: AtomicU64::new(0),
            read_path,
            advertised_ts: AtomicU64::new(0),
            resolved_ts: AtomicU64::new(0),
        }
    }

    /// Builds a trie containing `entries` (duplicates keep the first value)
    /// without paying one queue round-trip per key.
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        Self::from_entries_with_read_path(entries, ReadPath::Fast)
    }

    /// Builds a pre-populated trie with an explicit [`ReadPath`].
    pub fn from_entries_with_read_path<I: IntoIterator<Item = (K, V)>>(
        entries: I,
        read_path: ReadPath,
    ) -> Self {
        let trie = Self::with_read_path(read_path);
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);
        let guard = crossbeam_epoch::pin();
        for (key, value) in &sorted {
            trie.presence.prefill(*key, value.clone(), &guard);
        }
        let (root, _agg) = build_subtrie::<K, V, A>(&sorted, Coverage::ROOT, &trie.ids);
        // ORDERING: AcqRel out of caution only — the trie is still private to this
        // thread during construction.
        let old = trie
            .root_child
            .swap(crossbeam_epoch::Owned::new(root), Ordering::AcqRel, &guard);
        free_subtrie_now(old);
        trie.len.store(sorted.len() as u64, Ordering::Relaxed);
        trie
    }

    /// Inserts `key → value`. Returns `true` if the key was absent.
    pub fn insert(&self, key: K, value: V) -> bool {
        let (op, _ts) = self.run_operation(OpKind::Insert { key, value });
        op.resolved_decision().success
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// value it replaced, if any. Executes as a single `Replace` descriptor
    /// (one root-queue timestamp), like the BST's
    /// `WaitFreeTree::insert_or_replace`.
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        let (op, _ts) = self.run_operation(OpKind::Replace { key, value });
        op.resolved_decision().prior_value.clone()
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        let (op, _ts) = self.run_operation(OpKind::Remove { key: *key });
        op.resolved_decision().success
    }

    /// Removes `key` and returns the value it was mapped to, if any.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        let (op, _ts) = self.run_operation(OpKind::Remove { key: *key });
        let decision = op.resolved_decision();
        if decision.success {
            decision.prior_value.clone()
        } else {
            None
        }
    }

    /// Returns `true` if `key` is in the trie.
    ///
    /// Presence-only under [`ReadPath::Fast`] (the default): one presence-
    /// index bucket load, `O(1)`, no descriptor, and the value is never
    /// cloned. The descriptor path assembles the same presence bit without
    /// cloning either.
    pub fn contains(&self, key: &K) -> bool {
        if self.read_path == ReadPath::Fast {
            self.counters
                .fast_point_reads
                .fetch_add(1, Ordering::Relaxed);
            let guard = crossbeam_epoch::pin();
            return self.presence.contains_key(key, &guard);
        }
        let (op, _ts) = self.run_operation(OpKind::Lookup { key: *key });
        op.assemble_lookup_present()
    }

    /// Returns the value associated with `key`, if any. Served from the
    /// presence index in `O(1)` under [`ReadPath::Fast`] (the default), like
    /// `wft_core::WaitFreeTree::get`.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.read_path == ReadPath::Fast {
            self.counters
                .fast_point_reads
                .fetch_add(1, Ordering::Relaxed);
            let guard = crossbeam_epoch::pin();
            return self.presence.read_value(key, &guard);
        }
        let (op, _ts) = self.run_operation(OpKind::Lookup { key: *key });
        op.assemble_lookup()
    }

    /// Aggregate of every entry with key in `[min, max]` under the trie's
    /// augmentation.
    ///
    /// Under [`ReadPath::Fast`] (the default) an optimistic descriptor-free
    /// traversal is attempted first and validated; see `crate::read` and
    /// `wft_core::read` for the linearization argument.
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        if min > max {
            return A::identity();
        }
        if self.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for attempt in 1..=FAST_READ_ATTEMPTS {
                if let Some(agg) = self.try_fast_range_agg(min, max, &guard) {
                    self.counters
                        .fast_range_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return agg;
                }
                if attempt < FAST_READ_ATTEMPTS {
                    self.counters
                        .fast_range_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            self.note_range_fallback();
        }
        let (op, _ts) = self.run_operation(OpKind::RangeAgg { min, max });
        op.assemble_agg()
    }

    /// Every `(key, value)` with key in `[min, max]`, in key order. Attempts
    /// the optimistic traversal under [`ReadPath::Fast`].
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if min > max {
            return Vec::new();
        }
        if self.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for attempt in 1..=FAST_READ_ATTEMPTS {
                if let Some(entries) = self.try_fast_collect(min, max, &guard) {
                    self.counters
                        .fast_range_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return entries;
                }
                if attempt < FAST_READ_ATTEMPTS {
                    self.counters
                        .fast_range_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            self.note_range_fallback();
        }
        let (op, _ts) = self.run_operation(OpKind::Collect { min, max });
        op.assemble_entries()
    }

    /// The (up to) `limit` smallest entries with key in `[min, max]`, in
    /// key order — the trie's chunk primitive for the streaming scan API,
    /// mirroring `wft_core::WaitFreeTree::collect_range_limited`. The
    /// optimistic walk early-exits after `limit` leaves
    /// (`O(W + limit)`, counted in [`TrieStats::fast_range_early_exits`]);
    /// the descriptor fallback collects fully and truncates.
    pub fn collect_range_limited(&self, min: K, max: K, limit: usize) -> Vec<(K, V)> {
        if min > max || limit == 0 {
            return Vec::new();
        }
        if self.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for attempt in 1..=FAST_READ_ATTEMPTS {
                if let Some((entries, early_exit)) =
                    self.try_fast_collect_limited(min, max, limit, &guard)
                {
                    self.counters
                        .fast_range_hits
                        .fetch_add(1, Ordering::Relaxed);
                    if early_exit {
                        self.counters
                            .fast_range_early_exits
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return entries;
                }
                if attempt < FAST_READ_ATTEMPTS {
                    self.counters
                        .fast_range_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            self.note_range_fallback();
        }
        let (op, _ts) = self.run_operation(OpKind::Collect { min, max });
        let mut entries = op.assemble_entries();
        entries.truncate(limit);
        entries
    }

    /// Number of keys currently stored (maintained at update linearization
    /// points).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when the trie stores no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counts a descriptor-path fallback and drops a timeline event into
    /// the global trace ring (mirrors `wft_core`'s emission: fallbacks are
    /// the per-read anomaly signal a post-mortem wants timestamps for).
    fn note_range_fallback(&self) {
        self.counters
            .range_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        wft_obs::trace::emit(wft_obs::TraceKind::RangeFallback, wft_obs::NO_SHARD);
    }

    /// A snapshot of the operational counters.
    pub fn stats(&self) -> TrieStats {
        TrieStats {
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            replaces: self.counters.replaces.load(Ordering::Relaxed),
            removes: self.counters.removes.load(Ordering::Relaxed),
            failed_updates: self.counters.failed_updates.load(Ordering::Relaxed),
            helped_executions: self.counters.helped_executions.load(Ordering::Relaxed),
            fast_point_reads: self.counters.fast_point_reads.load(Ordering::Relaxed),
            fast_range_hits: self.counters.fast_range_hits.load(Ordering::Relaxed),
            fast_range_retries: self.counters.fast_range_retries.load(Ordering::Relaxed),
            range_fallbacks: self.counters.range_fallbacks.load(Ordering::Relaxed),
            fast_range_early_exits: self.counters.fast_range_early_exits.load(Ordering::Relaxed),
        }
    }

    // -- the timestamp front ------------------------------------------------

    /// The stable watermark: the latest root-queue timestamp whose update
    /// effects are fully resolved (mirrors `wft_core::WaitFreeTree::stable_ts`).
    pub fn stable_ts(&self) -> Timestamp {
        // ORDERING: must observe every SeqCst `resolved_ts` bump in the single
        // total order.
        // wft-lint: allow(seqcst) -- pairs with the SeqCst resolved_ts fetch_max in exec::resolve_update.
        Timestamp(self.resolved_ts.load(Ordering::SeqCst))
    }

    /// The advertised watermark: the latest update timestamp whose
    /// linearization has begun — advanced before the update is visible to
    /// any read.
    pub fn advertised_ts(&self) -> Timestamp {
        // ORDERING: must observe every SeqCst `advertised_ts` bump in the single
        // total order.
        // wft-lint: allow(seqcst) -- pairs with the SeqCst advertised_ts fetch_max in exec::resolve_update.
        Timestamp(self.advertised_ts.load(Ordering::SeqCst))
    }

    /// Acquires a settled front (no update mid-linearization), helping the
    /// root-queue head through its execution if one is in flight; lock-free.
    /// See `wft_core::WaitFreeTree::settle_front` for the full contract.
    pub fn settle_front(&self) -> Timestamp {
        let guard = crossbeam_epoch::pin();
        loop {
            // ORDERING: SeqCst advertise read — the first half of the double-read
            // validation below.
            // wft-lint: allow(seqcst) -- the settle proof needs the advertise and resolve reads in the single total order.
            let advertised = self.advertised_ts.load(Ordering::SeqCst);
            // ORDERING: SeqCst — "resolved caught up" must be ordered against both
            // advertise reads.
            // wft-lint: allow(seqcst) -- same total-order argument as the advertise read above.
            if self.resolved_ts.load(Ordering::SeqCst) >= advertised {
                // ORDERING: SeqCst re-read — unchanged means no update advertised between
                // the two reads, so the front is settled.
                // wft-lint: allow(seqcst) -- same total-order argument as the advertise read above.
                if self.advertised_ts.load(Ordering::SeqCst) == advertised {
                    return Timestamp(advertised);
                }
            } else if let Some((head_ts, head_op)) = self.root_queue.peek(&guard) {
                self.counters
                    .helped_executions
                    .fetch_add(1, Ordering::Relaxed);
                self.execute_op_at(&head_op, head_ts, crate::exec::ParentRef::Fictive, &guard);
            }
            std::hint::spin_loop();
        }
    }

    /// `true` while no update has begun linearizing past `front`.
    pub fn front_unchanged(&self, front: Timestamp) -> bool {
        // ORDERING: SeqCst pairs with the SeqCst `advertised_ts` fetch_max in
        // `exec::resolve_update`.
        // wft-lint: allow(seqcst) -- front validation must observe every advertise in the single total order.
        self.advertised_ts.load(Ordering::SeqCst) == front.get()
    }

    /// [`range_agg`](WaitFreeTrie::range_agg) at a settled front, or `None`
    /// when the trie advanced past it.
    ///
    /// Under [`ReadPath::Fast`] the read is **optimistic-only** — bounded
    /// descriptor-free attempts that bail out with `None` instead of falling
    /// back to the descriptor path, mirroring
    /// `wft_core::WaitFreeTree::range_agg_at_front`: a descriptor read at an
    /// expiring front would be helped (and so re-done) by every updater it
    /// blocks, only for its final front check to discard the answer.
    pub fn range_agg_at_front(&self, min: K, max: K, front: Timestamp) -> Option<A::Agg> {
        // ORDERING: SeqCst — the front guard must be ordered against the SeqCst
        // watermark bumps in `exec::resolve_update`.
        // wft-lint: allow(seqcst) -- anchoring a read at a front needs the guard in the single total order.
        if self.resolved_ts.load(Ordering::SeqCst) != front.get() || !self.front_unchanged(front) {
            return None;
        }
        if min > max {
            return Some(A::identity());
        }
        if self.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for _ in 0..FAST_READ_ATTEMPTS {
                if let Some(agg) = self.try_fast_range_agg(min, max, &guard) {
                    self.counters
                        .fast_range_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return self.front_unchanged(front).then_some(agg);
                }
                self.counters
                    .fast_range_retries
                    .fetch_add(1, Ordering::Relaxed);
                if !self.front_unchanged(front) {
                    return None;
                }
            }
            return None;
        }
        let agg = self.range_agg(min, max);
        self.front_unchanged(front).then_some(agg)
    }

    /// [`collect_range`](WaitFreeTrie::collect_range) at a settled front,
    /// with the same optimistic-only discipline as
    /// [`range_agg_at_front`](WaitFreeTrie::range_agg_at_front).
    pub fn collect_range_at_front(&self, min: K, max: K, front: Timestamp) -> Option<Vec<(K, V)>> {
        // ORDERING: SeqCst — the front guard must be ordered against the SeqCst
        // watermark bumps in `exec::resolve_update`.
        // wft-lint: allow(seqcst) -- anchoring a read at a front needs the guard in the single total order.
        if self.resolved_ts.load(Ordering::SeqCst) != front.get() || !self.front_unchanged(front) {
            return None;
        }
        if min > max {
            return Some(Vec::new());
        }
        if self.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for _ in 0..FAST_READ_ATTEMPTS {
                if let Some(entries) = self.try_fast_collect(min, max, &guard) {
                    self.counters
                        .fast_range_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return self.front_unchanged(front).then_some(entries);
                }
                self.counters
                    .fast_range_retries
                    .fetch_add(1, Ordering::Relaxed);
                if !self.front_unchanged(front) {
                    return None;
                }
            }
            return None;
        }
        let entries = self.collect_range(min, max);
        self.front_unchanged(front).then_some(entries)
    }

    /// [`collect_range_limited`](WaitFreeTrie::collect_range_limited) at a
    /// settled front, or `None` once the trie advanced past it; optimistic
    /// only under [`ReadPath::Fast`], like
    /// [`range_agg_at_front`](WaitFreeTrie::range_agg_at_front).
    pub fn collect_range_limited_at_front(
        &self,
        min: K,
        max: K,
        limit: usize,
        front: Timestamp,
    ) -> Option<Vec<(K, V)>> {
        // ORDERING: SeqCst — the front guard must be ordered against the SeqCst
        // watermark bumps in `exec::resolve_update`.
        // wft-lint: allow(seqcst) -- anchoring a read at a front needs the guard in the single total order.
        if self.resolved_ts.load(Ordering::SeqCst) != front.get() || !self.front_unchanged(front) {
            return None;
        }
        if min > max || limit == 0 {
            return Some(Vec::new());
        }
        if self.read_path == ReadPath::Fast {
            let guard = crossbeam_epoch::pin();
            for _ in 0..FAST_READ_ATTEMPTS {
                if let Some((entries, early_exit)) =
                    self.try_fast_collect_limited(min, max, limit, &guard)
                {
                    self.counters
                        .fast_range_hits
                        .fetch_add(1, Ordering::Relaxed);
                    if early_exit {
                        self.counters
                            .fast_range_early_exits
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return self.front_unchanged(front).then_some(entries);
                }
                self.counters
                    .fast_range_retries
                    .fetch_add(1, Ordering::Relaxed);
                if !self.front_unchanged(front) {
                    return None;
                }
            }
            return None;
        }
        let entries = self.collect_range_limited(min, max, limit);
        self.front_unchanged(front).then_some(entries)
    }

    /// All entries in key order. **Quiescent only.**
    pub fn entries_quiescent(&self) -> Vec<(K, V)> {
        let guard = crossbeam_epoch::pin();
        let mut out = Vec::new();
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`.
        collect_subtrie(
            self.root_child.load(Ordering::Acquire, &guard),
            &mut out,
            &guard,
        );
        out
    }

    /// Validates the structural invariants: coverage of every node contains
    /// all leaf indices beneath it, every stored aggregate equals the
    /// aggregate recomputed from the leaves, every descriptor queue is empty,
    /// and the cached length matches the leaf count. **Quiescent only**;
    /// panics on violation.
    pub fn check_invariants(&self) {
        let guard = crossbeam_epoch::pin();
        // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`.
        let root = self.root_child.load(Ordering::Acquire, &guard);
        let n = check_node::<K, V, A>(root, Coverage::ROOT, &guard);
        assert_eq!(
            n,
            self.len(),
            "cached length diverged from the physical leaf count"
        );
    }
}

impl<K: TrieKey, V: Value> WaitFreeTrie<K, V, Size> {
    /// Number of keys in `[min, max]` — the aggregate `count` query.
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Drop for WaitFreeTrie<K, V, A> {
    fn drop(&mut self) {
        // SAFETY: `drop` takes `&mut self`, so no other thread can reach the trie
        // and no epoch guard is needed.
        let root = self
            .root_child
            .load(Ordering::Relaxed, unsafe { crossbeam_epoch::unprotected() });
        free_subtrie_now(root);
    }
}

/// Recursive quiescent invariant checker; returns the number of leaves.
fn check_node<K: TrieKey, V: Value, A: Augmentation<K, V>>(
    node: crossbeam_epoch::Shared<'_, Node<K, V, A>>,
    coverage: Coverage,
    guard: &crossbeam_epoch::Guard,
) -> u64 {
    if node.is_null() {
        return 0;
    }
    // SAFETY: quiescent walk under `guard`; nodes are retired only via
    // `defer_destroy`, so the deref is valid.
    match unsafe { node.deref() } {
        Node::Empty(_) => 0,
        Node::Leaf(leaf) => {
            assert!(
                coverage.contains(leaf.key.to_index()),
                "leaf key {:?} outside its coverage {:?}",
                leaf.key,
                coverage
            );
            1
        }
        Node::Inner(inner) => {
            assert_eq!(
                inner.coverage, coverage,
                "inner node coverage disagrees with its position"
            );
            assert!(
                inner.queue.is_empty(guard),
                "descriptor queue not empty in a quiescent trie"
            );
            // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`.
            let nl = check_node::<K, V, A>(
                inner.left.load(Ordering::Acquire, guard),
                coverage.left(),
                guard,
            );
            // ORDERING: as above.
            let nr = check_node::<K, V, A>(
                inner.right.load(Ordering::Acquire, guard),
                coverage.right(),
                guard,
            );
            let mut entries = Vec::new();
            collect_subtrie(node, &mut entries, guard);
            let expect = entries
                .iter()
                .fold(A::identity(), |acc, (k, v)| A::insert_delta(&acc, k, v));
            assert_eq!(
                &inner.load_state(guard).agg,
                &expect,
                "stored augmentation value is stale"
            );
            nl + nr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trie_properties() {
        let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
        assert!(trie.is_empty());
        assert_eq!(trie.len(), 0);
        assert!(!trie.contains(&1));
        assert_eq!(trie.count(0, u64::MAX), 0);
        assert!(trie.collect_range(0, u64::MAX).is_empty());
        assert!(!trie.remove(&1));
        trie.check_invariants();
    }

    #[test]
    fn single_thread_roundtrip() {
        let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
        assert!(trie.insert(5, ()));
        assert!(!trie.insert(5, ()));
        assert!(trie.insert(1, ()));
        assert!(trie.insert(1_000_000, ()));
        assert_eq!(trie.len(), 3);
        assert!(trie.contains(&5));
        assert!(trie.contains(&1));
        assert!(trie.contains(&1_000_000));
        assert!(!trie.contains(&2));
        assert!(trie.remove(&5));
        assert!(!trie.remove(&5));
        assert_eq!(trie.len(), 2);
        trie.check_invariants();
    }

    #[test]
    fn signed_keys_work_end_to_end() {
        let trie: WaitFreeTrie<i64> = WaitFreeTrie::new();
        for k in [-100i64, -1, 0, 1, 100, i64::MIN, i64::MAX] {
            assert!(trie.insert(k, ()));
        }
        assert_eq!(trie.count(i64::MIN, i64::MAX), 7);
        assert_eq!(trie.count(-100, 100), 5);
        assert_eq!(trie.count(-1, 0), 2);
        assert_eq!(
            trie.collect_range(-100, 1)
                .into_iter()
                .map(|(k, _)| k)
                .collect::<Vec<_>>(),
            vec![-100, -1, 0, 1]
        );
        trie.check_invariants();
    }

    #[test]
    fn count_and_collect_agree() {
        let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
        for k in (0..300u64).step_by(3) {
            trie.insert(k, ());
        }
        for (min, max) in [(0, 299), (10, 50), (0, 5), (150, 400), (60, 60), (7, 3)] {
            assert_eq!(
                trie.count(min, max),
                trie.collect_range(min, max).len() as u64,
                "range [{min}, {max}]"
            );
        }
        trie.check_invariants();
    }

    #[test]
    fn values_are_returned() {
        let trie: WaitFreeTrie<u64, String> = WaitFreeTrie::new();
        assert!(trie.insert(1, "one".into()));
        assert!(!trie.insert(1, "uno".into()));
        assert_eq!(trie.get(&1), Some("one".to_string()));
        assert_eq!(trie.remove_entry(&1), Some("one".to_string()));
        assert_eq!(trie.remove_entry(&1), None);
    }

    #[test]
    fn insert_or_replace_upserts_atomically() {
        let trie: WaitFreeTrie<u64, u64> = WaitFreeTrie::new();
        assert_eq!(trie.insert_or_replace(5, 50), None);
        assert_eq!(trie.insert_or_replace(5, 51), Some(50));
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get(&5), Some(51));
        assert_eq!(trie.stats().replaces, 2);
        // Replacing keeps the size augmentation consistent.
        assert_eq!(trie.count(0, 10), 1);
        trie.check_invariants();
    }

    #[test]
    fn from_entries_builds_working_trie() {
        let trie: WaitFreeTrie<u64, u64> =
            WaitFreeTrie::from_entries((0..1000u64).map(|k| (k, k * 2)));
        assert_eq!(trie.len(), 1000);
        assert_eq!(trie.get(&500), Some(1000));
        assert!(!trie.insert(500, 0));
        assert!(trie.remove(&500));
        assert_eq!(trie.len(), 999);
        assert_eq!(trie.count(0, 999), 999);
        trie.check_invariants();
    }

    #[test]
    fn range_sum_augmentation() {
        use wft_seq::Sum;
        let trie: WaitFreeTrie<u64, u64, Sum> = WaitFreeTrie::new();
        for k in 1..=10u64 {
            trie.insert(k, k * 10);
        }
        assert_eq!(trie.range_agg(1, 10), 550);
        assert_eq!(trie.range_agg(3, 5), 120);
        trie.remove(&4);
        assert_eq!(trie.range_agg(3, 5), 80);
        trie.check_invariants();
    }

    #[test]
    fn stats_track_updates_and_len() {
        let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
        trie.insert(1, ());
        trie.insert(1, ());
        trie.insert(2, ());
        trie.remove(&1);
        trie.remove(&3);
        let stats = trie.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.removes, 1);
        assert_eq!(stats.failed_updates, 2);
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn both_read_paths_answer_identically() {
        let entries: Vec<(u64, u64)> = (0..300u64).step_by(3).map(|k| (k, k * 10)).collect();
        let fast: WaitFreeTrie<u64, u64> =
            WaitFreeTrie::from_entries_with_read_path(entries.clone(), ReadPath::Fast);
        let desc: WaitFreeTrie<u64, u64> =
            WaitFreeTrie::from_entries_with_read_path(entries, ReadPath::Descriptor);
        for trie in [&fast, &desc] {
            trie.insert(1, 11);
            trie.remove(&3);
            trie.insert_or_replace(6, 60_000);
        }
        for k in [0u64, 1, 2, 3, 6, 9, 298, 299, 500] {
            assert_eq!(fast.get(&k), desc.get(&k), "get({k})");
            assert_eq!(fast.contains(&k), desc.contains(&k), "contains({k})");
        }
        for (min, max) in [(0u64, 299), (10, 50), (0, 4), (200, 600), (7, 7), (9, 3)] {
            assert_eq!(
                fast.count(min, max),
                desc.count(min, max),
                "count [{min},{max}]"
            );
            assert_eq!(
                fast.collect_range(min, max),
                desc.collect_range(min, max),
                "collect [{min},{max}]"
            );
        }
        let stats = fast.stats();
        assert!(stats.fast_point_reads > 0);
        assert!(stats.fast_range_hits > 0, "quiescent range reads validate");
        assert_eq!(desc.stats().fast_point_reads, 0);
        fast.check_invariants();
        desc.check_invariants();
    }

    #[test]
    fn timestamp_front_tracks_updates() {
        let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
        let front = trie.settle_front();
        assert!(trie.front_unchanged(front));
        trie.insert(1, ());
        assert!(!trie.front_unchanged(front), "updates advance the front");
        let front = trie.settle_front();
        trie.contains(&1);
        trie.count(0, 10);
        assert!(trie.front_unchanged(front), "reads never advance the front");
        assert_eq!(trie.range_agg_at_front(0, 10, front), Some(1));
        trie.remove(&1);
        assert_eq!(trie.range_agg_at_front(0, 10, front), None, "front expired");
        assert_eq!(
            trie.collect_range_at_front(0, 10, trie.settle_front()),
            Some(vec![])
        );
    }

    #[test]
    fn adjacent_keys_build_long_chains_correctly() {
        let trie: WaitFreeTrie<u64> = WaitFreeTrie::new();
        // Keys differing only in the lowest bits force the deepest chains.
        for k in 0..64u64 {
            assert!(trie.insert(k, ()));
        }
        assert_eq!(trie.count(0, 63), 64);
        for k in 0..64u64 {
            assert!(trie.contains(&k), "key {k}");
        }
        for k in (0..64u64).step_by(2) {
            assert!(trie.remove(&k));
        }
        assert_eq!(trie.count(0, 63), 32);
        trie.check_invariants();
    }
}
