//! Fixed-width keys for the binary trie.
//!
//! The trie routes on the bits of a 64-bit *index* derived from the key
//! through an order-preserving injection, so that the subtree below a node is
//! always a contiguous key interval and aggregate range queries can take
//! whole-subtree aggregates exactly like the BST does. Narrow integer types
//! are mapped into the **high** bits of the index so that distinct keys
//! diverge near the root (a `u8` key space needs at most 8 routing levels,
//! not 64).

use wft_seq::Key;

/// A key usable by the binary trie: totally ordered, with an order-preserving
/// embedding into `u64`.
///
/// Implementations must guarantee `a < b ⇔ a.to_index() < b.to_index()`; the
/// provided integer implementations do (unsigned types shift into the high
/// bits, signed types additionally flip the sign bit).
pub trait TrieKey: Key {
    /// The order-preserving 64-bit index of this key.
    fn to_index(&self) -> u64;
}

macro_rules! impl_trie_key_unsigned {
    ($($t:ty => $bits:expr),*) => {
        $(impl TrieKey for $t {
            fn to_index(&self) -> u64 {
                (*self as u64) << (64 - $bits)
            }
        })*
    };
}

macro_rules! impl_trie_key_signed {
    ($($t:ty => ($unsigned:ty, $bits:expr)),*) => {
        $(impl TrieKey for $t {
            fn to_index(&self) -> u64 {
                // Flip the sign bit so negative keys sort below positive
                // ones, then shift into the high bits.
                let flipped = (*self as $unsigned) ^ (1 << ($bits - 1));
                (flipped as u64) << (64 - $bits)
            }
        })*
    };
}

impl_trie_key_unsigned!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);
impl_trie_key_signed!(i8 => (u8, 8), i16 => (u16, 16), i32 => (u32, 32), i64 => (u64, 64));

impl TrieKey for usize {
    fn to_index(&self) -> u64 {
        *self as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_order_preserving<K: TrieKey>(keys: &[K]) {
        for a in keys {
            for b in keys {
                assert_eq!(
                    a < b,
                    a.to_index() < b.to_index(),
                    "order not preserved for {a:?} vs {b:?}"
                );
                assert_eq!(a == b, a.to_index() == b.to_index());
            }
        }
    }

    #[test]
    fn unsigned_keys_preserve_order() {
        check_order_preserving::<u64>(&[0, 1, 2, 7, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
        check_order_preserving::<u32>(&[0, 1, 1000, u32::MAX]);
        check_order_preserving::<u8>(&[0, 1, 127, 128, 255]);
    }

    #[test]
    fn signed_keys_preserve_order() {
        check_order_preserving::<i64>(&[i64::MIN, -5, -1, 0, 1, 5, i64::MAX]);
        check_order_preserving::<i32>(&[i32::MIN, -1, 0, 1, i32::MAX]);
        check_order_preserving::<i8>(&[i8::MIN, -1, 0, 1, i8::MAX]);
    }

    #[test]
    fn narrow_keys_occupy_the_high_bits() {
        // Distinct u8 keys must diverge within the first 8 bits of the index
        // so the trie never builds 56-level chains of single-child nodes.
        let a = 3u8.to_index();
        let b = 4u8.to_index();
        assert!((a ^ b).leading_zeros() < 8);
    }
}
