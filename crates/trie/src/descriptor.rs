//! Operation descriptors for the trie (§II-B of the paper, instantiated for
//! bit-routing).
//!
//! The descriptor plays exactly the same role as in the main tree: it is the
//! shared record through which helpers cooperate. Because a trie node's
//! subtree covers a *known* key-index interval, range queries do not need the
//! per-node border-mode map the BST uses — every helper can re-derive the
//! node's relationship to the query range from the node's coverage alone.

use std::sync::Arc;
use std::sync::OnceLock;

use wft_queue::{Decision, FirstWriteMap, TraverseQueue};
use wft_seq::{Augmentation, Value};

use crate::key::TrieKey;
use crate::node::{NodeId, NodePtr};

/// Shared handle to a descriptor.
pub type OpRef<K, V, A> = Arc<Descriptor<K, V, A>>;

/// The operation a descriptor performs.
#[derive(Debug, Clone)]
pub enum OpKind<K, V> {
    /// `insert(key, value)`: add the key if absent.
    Insert {
        /// Key to insert.
        key: K,
        /// Value to associate.
        value: V,
    },
    /// `replace(key, value)`: add the key or overwrite its value — the
    /// atomic upsert, one descriptor and one timestamp like every other
    /// update.
    Replace {
        /// Key to insert or overwrite.
        key: K,
        /// Value to associate.
        value: V,
    },
    /// `remove(key)`: delete the key if present.
    Remove {
        /// Key to remove.
        key: K,
    },
    /// `contains(key)` / `get(key)`.
    Lookup {
        /// Key to look up.
        key: K,
    },
    /// Aggregate range query over `[min, max]`.
    RangeAgg {
        /// Lower bound (inclusive).
        min: K,
        /// Upper bound (inclusive).
        max: K,
    },
    /// `collect(min, max)`: list every entry in `[min, max]`.
    Collect {
        /// Lower bound (inclusive).
        min: K,
        /// Upper bound (inclusive).
        max: K,
    },
}

impl<K: TrieKey, V: Value> OpKind<K, V> {
    /// `true` for operations that may modify the trie.
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            OpKind::Insert { .. } | OpKind::Replace { .. } | OpKind::Remove { .. }
        )
    }

    /// The single routing key of a scalar operation.
    pub fn scalar_key(&self) -> Option<K> {
        match self {
            OpKind::Insert { key, .. }
            | OpKind::Replace { key, .. }
            | OpKind::Remove { key }
            | OpKind::Lookup { key } => Some(*key),
            _ => None,
        }
    }

    /// The query range in index space (scalar operations return the
    /// degenerate range of their key).
    pub fn index_range(&self) -> (u64, u64) {
        match self {
            OpKind::Insert { key, .. }
            | OpKind::Replace { key, .. }
            | OpKind::Remove { key }
            | OpKind::Lookup { key } => {
                let i = key.to_index();
                (i, i)
            }
            OpKind::RangeAgg { min, max } | OpKind::Collect { min, max } => {
                (min.to_index(), max.to_index())
            }
        }
    }
}

/// The per-node partial result recorded in the `Processed` map.
///
/// Recorded unconditionally for every node the operation executes in, to
/// claim the node id against stalled helpers (§II-B).
#[derive(Debug, Clone)]
pub enum Partial<K, V, Agg> {
    /// Contribution of a node to an aggregate range query.
    Agg(Agg),
    /// Result of a lookup resolved at this node.
    Lookup(Option<Option<V>>),
    /// Entries contributed by this node to a `collect`.
    Entries(Vec<(K, V)>),
    /// Updates record no data; the entry only claims the node id.
    Unit,
}

/// The shared operation descriptor.
pub struct Descriptor<K: TrieKey, V: Value, A: Augmentation<K, V>> {
    /// The operation to perform.
    pub kind: OpKind<K, V>,
    /// Effect of an update, resolved exactly once at the linearization point.
    pub decision: OnceLock<Decision<V>>,
    /// `Op.Processed`: per-node partial results, first write wins.
    pub processed: FirstWriteMap<NodeId, Partial<K, V, A::Agg>>,
    /// `Op.Traverse`: nodes the initiator still has to visit.
    pub traverse: TraverseQueue<NodePtr<K, V, A>>,
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Descriptor<K, V, A> {
    /// Creates a reference-counted descriptor for `kind`.
    pub fn new_ref(kind: OpKind<K, V>) -> OpRef<K, V, A> {
        // A `collect` records one partial per visited node (`O(range)`), so
        // its map is bucketed; every other operation records `O(W + |P|)`
        // partials, where a single bucket is smaller and faster.
        let processed = match &kind {
            OpKind::Collect { .. } => FirstWriteMap::with_buckets(256),
            _ => FirstWriteMap::new(),
        };
        Arc::new(Descriptor {
            kind,
            decision: OnceLock::new(),
            processed,
            traverse: TraverseQueue::new(),
        })
    }

    /// The resolved decision of an update descriptor.
    ///
    /// # Panics
    ///
    /// Panics if called before the descriptor was executed at the fictive
    /// root.
    pub fn resolved_decision(&self) -> &Decision<V> {
        self.decision
            .get()
            .expect("update descriptor executed below the root before being resolved")
    }

    /// Assembles the final aggregate of a range query from the recorded
    /// per-node partials. Only valid after the traverse queue has drained.
    pub fn assemble_agg(&self) -> A::Agg {
        self.processed.fold(A::identity(), |acc, _, partial| {
            if let Partial::Agg(agg) = partial {
                A::combine(&acc, agg)
            } else {
                acc
            }
        })
    }

    /// Assembles the result of a lookup.
    pub fn assemble_lookup(&self) -> Option<V> {
        self.processed.fold(None, |acc, _, partial| {
            if acc.is_some() {
                return acc;
            }
            match partial {
                Partial::Lookup(Some(found)) => found.clone(),
                _ => acc,
            }
        })
    }

    /// Assembles a lookup into a bare presence bit without cloning the
    /// value (`contains` on the descriptor read path).
    pub fn assemble_lookup_present(&self) -> bool {
        self.processed.fold(false, |acc, _, partial| {
            acc || matches!(partial, Partial::Lookup(Some(Some(_))))
        })
    }

    /// Assembles a `collect` result, sorted by key.
    pub fn assemble_entries(&self) -> Vec<(K, V)> {
        let mut out = self.processed.fold(Vec::new(), |mut acc, _, partial| {
            if let Partial::Entries(entries) = partial {
                acc.extend(entries.iter().cloned());
            }
            acc
        });
        out.sort_by_key(|a| a.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wft_seq::Size;

    type D = Descriptor<u64, (), Size>;

    #[test]
    fn op_kind_classification_and_ranges() {
        let ins: OpKind<u64, ()> = OpKind::Insert { key: 1, value: () };
        let agg: OpKind<u64, ()> = OpKind::RangeAgg { min: 10, max: 20 };
        assert!(ins.is_update());
        assert!(!agg.is_update());
        assert_eq!(ins.scalar_key(), Some(1));
        assert_eq!(agg.scalar_key(), None);
        assert_eq!(ins.index_range(), (1u64.to_index(), 1u64.to_index()));
        assert_eq!(agg.index_range(), (10u64.to_index(), 20u64.to_index()));
    }

    #[test]
    fn assemble_agg_and_lookup() {
        let d = D::new_ref(OpKind::RangeAgg { min: 0, max: 100 });
        d.processed.try_insert(1, Partial::Agg(3));
        d.processed.try_insert(2, Partial::Agg(4));
        d.processed.try_insert(3, Partial::Unit);
        assert_eq!(d.assemble_agg(), 7);

        let l: Descriptor<u64, u32, Size> = Descriptor {
            kind: OpKind::Lookup { key: 5 },
            decision: OnceLock::new(),
            processed: FirstWriteMap::new(),
            traverse: TraverseQueue::new(),
        };
        l.processed.try_insert(1, Partial::Lookup(None));
        l.processed.try_insert(2, Partial::Lookup(Some(Some(50))));
        assert_eq!(l.assemble_lookup(), Some(50));
    }

    #[test]
    fn assemble_entries_sorts() {
        let d: Descriptor<u64, u64, Size> = Descriptor {
            kind: OpKind::Collect { min: 0, max: 100 },
            decision: OnceLock::new(),
            processed: FirstWriteMap::new(),
            traverse: TraverseQueue::new(),
        };
        d.processed
            .try_insert(1, Partial::Entries(vec![(9, 90), (1, 10)]));
        d.processed.try_insert(2, Partial::Entries(vec![(4, 40)]));
        assert_eq!(d.assemble_entries(), vec![(1, 10), (4, 40), (9, 90)]);
    }

    #[test]
    #[should_panic(expected = "resolved")]
    fn unresolved_decision_panics() {
        let d = D::new_ref(OpKind::Insert { key: 1, value: () });
        let _ = d.resolved_decision();
    }
}
