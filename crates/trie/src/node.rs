//! Trie nodes.
//!
//! The concurrent trie uses the same per-node machinery as the main tree
//! (`wft-core`): every inner node owns a timestamped descriptor queue and an
//! immutable, CAS-swapped state record carrying the subtree aggregate. The
//! difference is purely structural: routing follows the bits of the key's
//! 64-bit index instead of a stored `Right_Subtree_Min`, so a node's subtree
//! always covers a fixed, known key-index interval and no rebalancing is ever
//! required (the depth is bounded by the key width).

use crossbeam_epoch::{Atomic, Guard, Shared};
use std::sync::atomic::{AtomicU64, Ordering};

use wft_queue::{Timestamp, TsQueue};
use wft_seq::{Augmentation, Value};

use crate::descriptor::OpRef;
use crate::key::TrieKey;

/// Unique identifier of an inner node (key of the per-operation `Processed`
/// map). The fictive root uses id `0`.
pub type NodeId = u64;

/// Reserved [`NodeId`] of the fictive root.
pub const FICTIVE_ROOT_ID: NodeId = 0;

/// Allocates unique node identifiers.
#[derive(Debug)]
pub(crate) struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    pub(crate) fn new() -> Self {
        IdAllocator {
            next: AtomicU64::new(FICTIVE_ROOT_ID + 1),
        }
    }

    pub(crate) fn fresh(&self) -> NodeId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// The immutable state record of an inner node: the subtree aggregate plus
/// the timestamp of the last operation that modified it (`Ts_Mod`, §II-C).
#[derive(Debug)]
pub struct NodeState<Agg> {
    /// Augmentation value of the node's subtree, maintained eagerly top-down.
    pub agg: Agg,
    /// Timestamp of the last modifying operation.
    pub ts_mod: Timestamp,
}

/// A leaf holding one data item.
///
/// Leaves are immutable; `created_ts` is the timestamp of the operation that
/// physically installed the leaf (zero for bulk-built tries). Structural
/// CASes are guarded by it: a stalled helper whose operation is older than
/// the leaf it finds must not touch it, because its own structural change has
/// already been applied by a faster helper and the slot has since been reused
/// by later operations.
#[derive(Debug)]
pub struct LeafNode<K, V> {
    /// The stored key.
    pub key: K,
    /// The associated value.
    pub value: V,
    /// Timestamp of the operation that created this leaf.
    pub created_ts: Timestamp,
}

/// An empty position (removed leaf or never-populated branch), carrying the
/// timestamp of the operation that created it for the same structural-CAS
/// guard as [`LeafNode::created_ts`].
#[derive(Debug)]
pub struct EmptyNode {
    /// Timestamp of the operation that created this placeholder.
    pub created_ts: Timestamp,
}

/// The fixed key-index interval covered by a (prospective) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Number of index bits consumed on the path to the node.
    pub depth: u32,
    /// The common index prefix of every key below the node (high `depth`
    /// bits; the remaining bits are zero).
    pub prefix: u64,
}

impl Coverage {
    /// Coverage of the whole key space (the real-root slot).
    pub const ROOT: Coverage = Coverage {
        depth: 0,
        prefix: 0,
    };

    /// The inclusive index interval `[lo, hi]` this coverage spans.
    pub fn interval(&self) -> (u64, u64) {
        // Depth 64 (a fully resolved leaf position) covers exactly one index.
        let span = u64::MAX.checked_shr(self.depth).unwrap_or(0);
        (self.prefix, self.prefix | span)
    }

    /// The branching bit used by a node at this coverage (its children split
    /// on this bit of the key index).
    pub fn branch_bit(&self) -> u32 {
        debug_assert!(self.depth < 64, "leaves cannot branch further");
        63 - self.depth
    }

    /// Coverage of the left (`bit = 0`) child.
    pub fn left(&self) -> Coverage {
        Coverage {
            depth: self.depth + 1,
            prefix: self.prefix,
        }
    }

    /// Coverage of the right (`bit = 1`) child.
    pub fn right(&self) -> Coverage {
        Coverage {
            depth: self.depth + 1,
            prefix: self.prefix | (1u64 << self.branch_bit()),
        }
    }

    /// The child coverage an index routes into.
    pub fn child_for(&self, index: u64) -> Coverage {
        if (index >> self.branch_bit()) & 1 == 0 {
            self.left()
        } else {
            self.right()
        }
    }

    /// `true` if `index` lies below this coverage.
    pub fn contains(&self, index: u64) -> bool {
        let (lo, hi) = self.interval();
        lo <= index && index <= hi
    }

    /// Relationship of this coverage to the query interval `[min, max]`
    /// (inclusive, in index space).
    pub fn classify(&self, min: u64, max: u64) -> Overlap {
        let (lo, hi) = self.interval();
        if hi < min || lo > max {
            Overlap::Disjoint
        } else if min <= lo && hi <= max {
            Overlap::Contained
        } else {
            Overlap::Partial
        }
    }
}

/// How a subtree's key interval relates to a query range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// No key of the subtree can be in the range.
    Disjoint,
    /// Every key of the subtree is in the range.
    Contained,
    /// Some keys may be in the range, some outside.
    Partial,
}

/// An inner (routing) node of the trie.
pub struct InnerNode<K: TrieKey, V: Value, A: Augmentation<K, V>> {
    /// Unique identifier.
    pub id: NodeId,
    /// The key-index interval this node covers.
    pub coverage: Coverage,
    /// Left child (branch bit 0).
    pub left: Atomic<Node<K, V, A>>,
    /// Right child (branch bit 1).
    pub right: Atomic<Node<K, V, A>>,
    /// Swappable immutable state record.
    pub state: Atomic<NodeState<A::Agg>>,
    /// Per-node operations queue; the dummy timestamp is the node's creation
    /// watermark, so descriptors older than the node can never enter.
    pub queue: TsQueue<OpRef<K, V, A>>,
}

/// A node of the concurrent trie.
pub enum Node<K: TrieKey, V: Value, A: Augmentation<K, V>> {
    /// An empty position (removed leaf or never-populated branch).
    Empty(EmptyNode),
    /// A data item.
    Leaf(LeafNode<K, V>),
    /// A routing node with queue and state.
    Inner(InnerNode<K, V, A>),
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Node<K, V, A> {
    /// An empty placeholder created by the operation with timestamp `ts`.
    pub fn empty(ts: Timestamp) -> Self {
        Node::Empty(EmptyNode { created_ts: ts })
    }

    /// Current augmentation value of this child as seen from its parent.
    pub fn current_agg(&self, guard: &Guard) -> A::Agg {
        match self {
            Node::Empty(_) => A::identity(),
            Node::Leaf(leaf) => A::of_entry(&leaf.key, &leaf.value),
            Node::Inner(inner) => inner.load_state(guard).agg.clone(),
        }
    }
}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> InnerNode<K, V, A> {
    /// Loads the current state record.
    pub fn load_state<'g>(&self, guard: &'g Guard) -> &'g NodeState<A::Agg> {
        // ORDERING: Acquire pairs with the AcqRel state CAS in
        // `exec::apply_state_delta`, so the record's fields are visible.
        // SAFETY: the state record is non-null by construction and retired only via
        // `defer_destroy`, so the deref is valid under `guard`.
        let state = self.state.load(Ordering::Acquire, guard);
        // SAFETY: as above.
        unsafe { state.deref() }
    }

    /// Loads the current state record as a `Shared` pointer (the expected
    /// value of the state CAS).
    pub fn load_state_shared<'g>(&self, guard: &'g Guard) -> Shared<'g, NodeState<A::Agg>> {
        // ORDERING: Acquire pairs with the AcqRel state CAS in
        // `exec::apply_state_delta`; the pointer serves as a CAS expected value and
        // read-validation token.
        self.state.load(Ordering::Acquire, guard)
    }

    /// The slot and coverage of the child an index routes into.
    pub fn child_slot(&self, index: u64) -> (&Atomic<Node<K, V, A>>, Coverage) {
        if (index >> self.coverage.branch_bit()) & 1 == 0 {
            (&self.left, self.coverage.left())
        } else {
            (&self.right, self.coverage.right())
        }
    }
}

/// A `Send + Sync` raw-pointer wrapper used as the traverse-queue item type.
///
/// Safety: only dereferenced by the operation's initiator while it holds the
/// epoch guard pinned before the operation entered the root queue (trie nodes
/// are never unlinked except by `remove`/`insert` CASes on leaf/empty slots,
/// and inner nodes are never retired while the trie is alive, so any pointer
/// recorded during an operation outlives that operation).
pub struct NodePtr<K: TrieKey, V: Value, A: Augmentation<K, V>>(*const Node<K, V, A>);

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Clone for NodePtr<K, V, A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Copy for NodePtr<K, V, A> {}

// SAFETY: the pointer is only dereferenced through the unsafe `deref`,
// whose contract (initiator + pre-enqueue guard) keeps the pointee alive,
// so moving the raw pointer across threads is sound.
unsafe impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Send for NodePtr<K, V, A> {}
// SAFETY: same argument as `Send` — shared access is read-only and gated by
// `deref`'s contract.
unsafe impl<K: TrieKey, V: Value, A: Augmentation<K, V>> Sync for NodePtr<K, V, A> {}

impl<K: TrieKey, V: Value, A: Augmentation<K, V>> NodePtr<K, V, A> {
    /// Wraps a shared pointer obtained under an epoch guard.
    pub fn from_shared(shared: Shared<'_, Node<K, V, A>>) -> Self {
        NodePtr(shared.as_raw())
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The caller must be the operation's initiator and must still hold the
    /// guard pinned before the operation was enqueued.
    // SAFETY: the contract above guarantees the pointee outlives the guard —
    // inner nodes are never retired while the trie is alive, and leaf/empty
    // nodes recorded by an operation are only retired after it resolves.
    pub unsafe fn deref<'g>(&self, _guard: &'g Guard) -> &'g Node<K, V, A> {
        &*self.0
    }
}

/// Recursively builds a trie subtree from entries sorted by key index, for
/// bulk construction (`from_entries`). All queues and states carry the
/// watermark `Timestamp::ZERO`.
pub(crate) fn build_subtrie<K: TrieKey, V: Value, A: Augmentation<K, V>>(
    entries: &[(K, V)],
    coverage: Coverage,
    ids: &IdAllocator,
) -> (Node<K, V, A>, A::Agg) {
    match entries {
        [] => (Node::empty(Timestamp::ZERO), A::identity()),
        [(key, value)] => (
            Node::Leaf(LeafNode {
                key: *key,
                value: value.clone(),
                created_ts: Timestamp::ZERO,
            }),
            A::of_entry(key, value),
        ),
        _ => {
            let bit = coverage.branch_bit();
            let split = entries.partition_point(|(k, _)| (k.to_index() >> bit) & 1 == 0);
            let (left, left_agg) =
                build_subtrie::<K, V, A>(&entries[..split], coverage.left(), ids);
            let (right, right_agg) =
                build_subtrie::<K, V, A>(&entries[split..], coverage.right(), ids);
            let agg = A::combine(&left_agg, &right_agg);
            let inner = InnerNode {
                id: ids.fresh(),
                coverage,
                left: Atomic::new(left),
                right: Atomic::new(right),
                state: Atomic::new(NodeState {
                    agg: agg.clone(),
                    ts_mod: Timestamp::ZERO,
                }),
                queue: TsQueue::new(Timestamp::ZERO),
            };
            (Node::Inner(inner), agg)
        }
    }
}

/// Builds the divergence chain installed by an insertion that hits an
/// occupied leaf: single-child inner nodes from `coverage` down to the first
/// bit where the two key indices differ, ending in an inner node with the two
/// leaves as children. Every created node carries the inserting operation's
/// timestamp `ts` as its state `ts_mod` and queue watermark, so stalled
/// helpers of the same (or an older) operation can neither re-apply the state
/// delta nor re-enqueue the descriptor.
pub(crate) fn build_divergence_chain<K: TrieKey, V: Value, A: Augmentation<K, V>>(
    existing: (K, V),
    new: (K, V),
    coverage: Coverage,
    ts: Timestamp,
    ids: &IdAllocator,
) -> Node<K, V, A> {
    let a = existing.0.to_index();
    let b = new.0.to_index();
    debug_assert_ne!(a, b, "divergence chain needs two distinct keys");
    debug_assert!(coverage.contains(a) && coverage.contains(b));
    let agg = A::combine(
        &A::of_entry(&existing.0, &existing.1),
        &A::of_entry(&new.0, &new.1),
    );
    let diverge_depth = (a ^ b).leading_zeros();
    debug_assert!(diverge_depth >= coverage.depth);

    // Bottom node: both leaves hang off it.
    let bottom_coverage = Coverage {
        depth: diverge_depth,
        prefix: if diverge_depth == 0 {
            0
        } else {
            a & !(u64::MAX >> diverge_depth)
        },
    };
    let bit = bottom_coverage.branch_bit();
    let (left_entry, right_entry) = if (a >> bit) & 1 == 0 {
        (existing, new)
    } else {
        (new, existing)
    };
    let mut node = Node::Inner(InnerNode {
        id: ids.fresh(),
        coverage: bottom_coverage,
        left: Atomic::new(Node::Leaf(LeafNode {
            key: left_entry.0,
            value: left_entry.1,
            created_ts: ts,
        })),
        right: Atomic::new(Node::Leaf(LeafNode {
            key: right_entry.0,
            value: right_entry.1,
            created_ts: ts,
        })),
        state: Atomic::new(NodeState {
            agg: agg.clone(),
            ts_mod: ts,
        }),
        queue: TsQueue::new(ts),
    });

    // Wrap single-child nodes upwards until we reach the slot's coverage.
    let mut depth = diverge_depth;
    while depth > coverage.depth {
        depth -= 1;
        let wrap_coverage = Coverage {
            depth,
            prefix: if depth == 0 {
                0
            } else {
                a & !(u64::MAX >> depth)
            },
        };
        let bit = wrap_coverage.branch_bit();
        let (left, right) = if (a >> bit) & 1 == 0 {
            (Atomic::new(node), Atomic::new(Node::empty(ts)))
        } else {
            (Atomic::new(Node::empty(ts)), Atomic::new(node))
        };
        node = Node::Inner(InnerNode {
            id: ids.fresh(),
            coverage: wrap_coverage,
            left,
            right,
            state: Atomic::new(NodeState {
                agg: agg.clone(),
                ts_mod: ts,
            }),
            queue: TsQueue::new(ts),
        });
    }
    node
}

/// Collects every `(key, value)` in the subtree, in key order.
pub(crate) fn collect_subtrie<K: TrieKey, V: Value, A: Augmentation<K, V>>(
    node: Shared<'_, Node<K, V, A>>,
    out: &mut Vec<(K, V)>,
    guard: &Guard,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: the subtree is reachable from a slot read under the caller's
    // guard; nodes are retired only via `defer_destroy`, so every deref in this
    // walk is valid.
    match unsafe { node.deref() } {
        Node::Empty(_) => {}
        Node::Leaf(leaf) => out.push((leaf.key, leaf.value.clone())),
        Node::Inner(inner) => {
            // ORDERING: Acquire pairs with the AcqRel child-slot CASes in `exec`, so
            // the loaded children are fully initialised.
            collect_subtrie(inner.left.load(Ordering::Acquire, guard), out, guard);
            // ORDERING: as above.
            collect_subtrie(inner.right.load(Ordering::Acquire, guard), out, guard);
        }
    }
}

/// Frees a subtree immediately. Only safe with exclusive access (trie `Drop`
/// or a speculative chain that was never published).
pub(crate) fn free_subtrie_now<K: TrieKey, V: Value, A: Augmentation<K, V>>(
    node: Shared<'_, Node<K, V, A>>,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: called from `Drop` (exclusive access) or on a speculative chain
    // that was never published, so no other thread can reach these nodes and
    // each is freed exactly once.
    unsafe {
        let unprotected = crossbeam_epoch::unprotected();
        if let Node::Inner(inner) = node.deref() {
            free_subtrie_now(inner.left.load(Ordering::Relaxed, unprotected));
            free_subtrie_now(inner.right.load(Ordering::Relaxed, unprotected));
            let state = inner.state.load(Ordering::Relaxed, unprotected);
            if !state.is_null() {
                drop(state.into_owned());
            }
        }
        drop(node.into_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;
    use wft_seq::Size;

    type N = Node<u64, (), Size>;

    #[test]
    fn coverage_intervals_and_children() {
        let root = Coverage::ROOT;
        assert_eq!(root.interval(), (0, u64::MAX));
        assert_eq!(root.branch_bit(), 63);
        let left = root.left();
        let right = root.right();
        assert_eq!(left.interval(), (0, u64::MAX >> 1));
        assert_eq!(right.interval(), (1 << 63, u64::MAX));
        assert!(left.contains(42));
        assert!(!left.contains(1 << 63));
        assert_eq!(root.child_for(42), left);
        assert_eq!(root.child_for(u64::MAX), right);
    }

    #[test]
    fn coverage_classification() {
        let c = Coverage {
            depth: 60,
            prefix: 0b1010 << 60,
        };
        let (lo, hi) = c.interval();
        assert_eq!(hi - lo, 15);
        assert_eq!(c.classify(lo, hi), Overlap::Contained);
        assert_eq!(c.classify(0, lo - 1), Overlap::Disjoint);
        assert_eq!(c.classify(hi + 1, u64::MAX), Overlap::Disjoint);
        assert_eq!(c.classify(lo + 1, hi), Overlap::Partial);
        assert_eq!(c.classify(0, u64::MAX), Overlap::Contained);
    }

    #[test]
    fn build_subtrie_roundtrip() {
        let ids = IdAllocator::new();
        let entries: Vec<(u64, ())> = (0..200u64).map(|k| (k * 3, ())).collect();
        let (node, agg) = build_subtrie::<u64, (), Size>(&entries, Coverage::ROOT, &ids);
        assert_eq!(agg, 200);
        // SAFETY: the subtrie was never published; this test owns it exclusively.
        let shared = crossbeam_epoch::Owned::new(node).into_shared(unsafe { epoch::unprotected() });
        let guard = epoch::pin();
        let mut out = Vec::new();
        collect_subtrie(shared, &mut out, &guard);
        assert_eq!(out, entries);
        free_subtrie_now(shared);
    }

    #[test]
    fn divergence_chain_holds_both_keys() {
        let ids = IdAllocator::new();
        let guard = epoch::pin();
        // Keys that agree on many leading bits force a long chain.
        let chain: N = build_divergence_chain(
            (1024u64, ()),
            (1025u64, ()),
            Coverage::ROOT,
            Timestamp(5),
            &ids,
        );
        // SAFETY: the chain was never published; this test owns it exclusively.
        let shared =
            crossbeam_epoch::Owned::new(chain).into_shared(unsafe { epoch::unprotected() });
        let mut out = Vec::new();
        collect_subtrie(shared, &mut out, &guard);
        assert_eq!(out, vec![(1024, ()), (1025, ())]);
        // Every inner node on the chain covers both keys and carries the
        // operation's timestamp.
        fn walk(node: Shared<'_, N>, guard: &Guard) {
            // SAFETY: every pointer on the chain is non-null and test-owned.
            if let Node::Inner(inner) = unsafe { node.deref() } {
                assert!(inner.coverage.contains(1024) && inner.coverage.contains(1025));
                assert_eq!(inner.load_state(guard).ts_mod, Timestamp(5));
                assert_eq!(inner.load_state(guard).agg, 2);
                walk(inner.left.load(Ordering::Acquire, guard), guard);
                walk(inner.right.load(Ordering::Acquire, guard), guard);
            }
        }
        walk(shared, &guard);
        free_subtrie_now(shared);
    }

    #[test]
    fn divergence_chain_length_matches_common_prefix() {
        let ids = IdAllocator::new();
        let guard = epoch::pin();
        // Indices diverging at the very first bit produce a single node.
        let chain: N = build_divergence_chain(
            (0u64, ()),
            (u64::MAX, ()),
            Coverage::ROOT,
            Timestamp(1),
            &ids,
        );
        // SAFETY: the chain was never published; this test owns it exclusively.
        let shared =
            crossbeam_epoch::Owned::new(chain).into_shared(unsafe { epoch::unprotected() });
        fn depth_of(node: Shared<'_, N>, guard: &Guard) -> usize {
            // SAFETY: every pointer on the chain is non-null and test-owned.
            match unsafe { node.deref() } {
                Node::Inner(inner) => {
                    1 + depth_of(inner.left.load(Ordering::Acquire, guard), guard)
                        .max(depth_of(inner.right.load(Ordering::Acquire, guard), guard))
                }
                _ => 0,
            }
        }
        assert_eq!(depth_of(shared, &guard), 1);
        free_subtrie_now(shared);
    }
}
