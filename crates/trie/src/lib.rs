//! # Wait-free binary trie with aggregate range queries
//!
//! A second instantiation of the hand-over-hand-helping scheme of
//! *"Wait-free Trees with Asymptotically-Efficient Range Queries"*
//! (Kokorin, Alistarh, Aksenov — IPPS 2024). The paper's conclusion names
//! tries and quad trees as the natural next targets for the technique; this
//! crate carries the scheme over to a **binary trie over fixed-width integer
//! keys** and shows that the concurrent machinery — per-node descriptor
//! queues with monotone timestamps, helping, exactly-once CAS-guarded state
//! updates, first-write-wins result assembly — is genuinely generic: it is
//! reused verbatim from the [`wft_queue`] substrates, and only the routing
//! and the structural updates are trie-specific.
//!
//! Compared to the BST of `wft-core`:
//!
//! | aspect | BST (`wft-core`) | trie (this crate) |
//! |--------|------------------|-------------------|
//! | routing | stored `Right_Subtree_Min` keys | bits of an order-preserving 64-bit key index |
//! | balance | subtree rebuilding (§II-E), amortized bounds | none needed — depth ≤ key width, worst-case bounds |
//! | range queries | three border modes recorded per node | fixed per-node coverage intervals |
//! | key types | any `Ord + Copy + Hash` | fixed-width integers ([`TrieKey`]) |
//!
//! The public interface mirrors [`wft_core::WaitFreeTree`]: `insert`,
//! `remove`, `contains`, `get`, `count`, `range_agg`, `collect_range`, all
//! linearizable, with aggregate range queries in time proportional to the key
//! width rather than to the number of keys in the range.
//!
//! [`wft_core::WaitFreeTree`]: https://docs.rs/wft-core
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use wft_trie::WaitFreeTrie;
//!
//! let trie: Arc<WaitFreeTrie<u64>> = Arc::new(WaitFreeTrie::new());
//! let writers: Vec<_> = (0..4u64)
//!     .map(|t| {
//!         let trie = Arc::clone(&trie);
//!         std::thread::spawn(move || {
//!             for k in 0..100u64 {
//!                 trie.insert(t * 100 + k, ());
//!             }
//!         })
//!     })
//!     .collect();
//! for w in writers {
//!     w.join().unwrap();
//! }
//! assert_eq!(trie.len(), 400);
//! assert_eq!(trie.count(0, 399), 400);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod descriptor;
pub mod exec;
pub mod key;
pub mod node;
pub mod read;
pub mod tree;

pub use descriptor::OpKind;
pub use key::TrieKey;
pub use tree::{TrieStats, WaitFreeTrie};

// The read-path knob is shared with `wft-core` through the queue substrate
// crate: both descriptor trees select their fast paths with it.
pub use wft_queue::ReadPath;

// Re-export the augmentation vocabulary for convenience.
pub use wft_seq::{Augmentation, Pair, Size, Sum, Value};
