//! The lock-free external BST algorithm (Ellen–Fatourou–Ruppert–van Breugel).
//!
//! Updates synchronise through the `update` word of internal nodes: before an
//! insertion changes a child pointer of `p` it *IFLAG*s `p`, and before a
//! deletion unlinks `p` from `gp` it *DFLAG*s `gp` and *MARK*s `p`. The flag
//! stores a pointer to an operation record with everything a helper needs to
//! finish the update, so any thread that runs into a flagged node completes
//! the pending operation before retrying its own — updates are lock-free,
//! searches are wait-free.
//!
//! ## Memory reclamation
//!
//! * Nodes unlinked by a completed deletion (`p` and the removed leaf) are
//!   retired through `crossbeam-epoch` by the thread whose child-CAS unlinked
//!   them.
//! * Operation records are retired when a later successful flag CAS replaces
//!   them in the `update` word of their *primary* node (the parent for
//!   insertions, the grandparent for deletions). A record with the `CLEAN`
//!   tag only ever remains referenced from that primary node, so the retire
//!   happens at most once; records still referenced at drop time are freed by
//!   the tree's `Drop`.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::{pin, Atomic, Guard, Owned, Shared};
use wft_seq::{Key, Value};

use crate::node::{free_subtree_now, state, Info, Node, RoutingKey};

/// A lock-free external binary search tree with linear-time range queries.
///
/// See the [crate-level documentation](crate) for the role this structure
/// plays in the evaluation; the public interface mirrors the other trees in
/// the workspace so the benchmark harness can swap it in.
pub struct LockFreeBst<K: Key, V: Value = ()> {
    /// The root internal node (routing key `Inf2`); never replaced.
    root: Atomic<Node<K, V>>,
    /// Number of finite keys, maintained by initiating threads on success.
    len: AtomicU64,
    /// Update gauge, first half: bumped when an update *enters* the tree,
    /// before it publishes the operation record whose helping makes its
    /// effect visible. Together with `updates_finished` this is the
    /// baseline's snapshot front: `started == finished` means no update in
    /// flight, an unchanged `started` means none became visible.
    updates_started: AtomicU64,
    /// Update gauge, second half: bumped when the update returns.
    updates_finished: AtomicU64,
}

// SAFETY: the tree owns its nodes and all shared mutation goes through
// atomics; `Key`/`Value` already require `Send + Sync + 'static`, so moving
// the structure across threads cannot smuggle non-thread-safe data.
unsafe impl<K: Key, V: Value> Send for LockFreeBst<K, V> {}
// SAFETY: same argument as `Send` above — shared access only ever reads
// through epoch-protected atomics; `Key: Sync` and `Value: Sync` hold by bound.
unsafe impl<K: Key, V: Value> Sync for LockFreeBst<K, V> {}

/// Result of the internal `search` routine: the last two internal nodes on
/// the search path, the leaf it ended at, and the `update` words observed on
/// the way down (pointer + state tag), exactly as the EFRB pseudocode needs
/// them.
struct SearchResult<'g, K: Key, V: Value> {
    grandparent: Shared<'g, Node<K, V>>,
    grandparent_update: Shared<'g, Info<K, V>>,
    parent: Shared<'g, Node<K, V>>,
    parent_update: Shared<'g, Info<K, V>>,
    leaf: Shared<'g, Node<K, V>>,
}

impl<K: Key, V: Value> Default for LockFreeBst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> LockFreeBst<K, V> {
    /// Creates an empty tree (one sentinel internal node, two sentinel
    /// leaves).
    pub fn new() -> Self {
        let root = Node::internal(
            RoutingKey::Inf2,
            Owned::new(Node::sentinel_leaf(RoutingKey::Inf1)),
            Owned::new(Node::sentinel_leaf(RoutingKey::Inf2)),
        );
        LockFreeBst {
            root: Atomic::new(root),
            len: AtomicU64::new(0),
            updates_started: AtomicU64::new(0),
            updates_finished: AtomicU64::new(0),
        }
    }

    /// Runs `update` between the two halves of the update gauge (see the
    /// field docs): `started` is bumped before the closure can publish (and
    /// thereby make visible) any change, `finished` when it returns.
    fn gauged_update<R>(&self, update: impl FnOnce() -> R) -> R {
        // ORDERING: the gauge halves form the baseline's snapshot front — a reader
        // that observes `started == finished` must also observe every effect of the
        // counted updates, and `settle_updates` compares both counters cross-thread.
        // wft-lint: allow(seqcst) -- settle_updates needs the started bump, the update's effects and the finished bump in one total order; cold baseline path.
        self.updates_started
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let result = update();
        // ORDERING: second half of the gauge; see the `updates_started` bump above.
        // wft-lint: allow(seqcst) -- same total-order argument as the started half.
        self.updates_finished
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        result
    }

    /// The gauge's "started" half — the advertised snapshot front.
    pub(crate) fn updates_started(&self) -> u64 {
        // ORDERING: reads the snapshot front in the total order the gauge writes it.
        // wft-lint: allow(seqcst) -- pairs with the SeqCst fetch_adds in gauged_update.
        self.updates_started
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Spins until a moment with no update in flight and returns the gauge
    /// value observed there. **Not non-blocking**: unlike the descriptor
    /// trees there is no operation record at a fixed place to help, so a
    /// stalled writer stalls this loop — an accepted weakness of the
    /// baseline class (its range queries were never linearizable to begin
    /// with; the snapshot front at least makes them exact when it succeeds).
    pub(crate) fn settle_updates(&self) -> u64 {
        loop {
            let started = self.updates_started();
            // ORDERING: the finished/started double-read is only meaningful in the total
            // order the SeqCst gauge bumps establish; see gauged_update.
            // wft-lint: allow(seqcst) -- validating `started` unchanged across the finished read requires the single total order of the gauge.
            if self
                .updates_finished
                .load(std::sync::atomic::Ordering::SeqCst)
                >= started
                && self.updates_started() == started
            {
                return started;
            }
            std::hint::spin_loop();
        }
    }

    /// Builds a tree containing `entries` (duplicates keep the first value).
    ///
    /// The tree has no rebalancing, so entries are inserted in median-first
    /// order: the resulting tree is perfectly balanced regardless of the
    /// order of `entries` (the benchmark harness pre-fills with sorted key
    /// ranges, which would otherwise degenerate this baseline into a list).
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);
        let tree = Self::new();
        // Iterative median-first traversal of the sorted slice.
        let mut stack = vec![(0usize, sorted.len())];
        while let Some((lo, hi)) = stack.pop() {
            if lo >= hi {
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            let (key, value) = sorted[mid].clone();
            tree.insert(key, value);
            stack.push((lo, mid));
            stack.push((mid + 1, hi));
        }
        tree
    }

    /// Number of keys stored (exact when quiescent).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Root-to-leaf search for `key`; wait-free.
    fn search<'g>(&self, key: &RoutingKey<K>, guard: &'g Guard) -> SearchResult<'g, K, V> {
        let mut grandparent = Shared::null();
        let mut grandparent_update = Shared::null();
        // ORDERING: Acquire pairs with the Release half of the AcqRel child CASes
        // (help_insert/help_marked) that publish initialised nodes; the root node
        // itself is never replaced after construction.
        let mut parent = self.root.load(Ordering::Acquire, guard);
        // SAFETY: `parent` was loaded from the root slot under `guard`; nodes are
        // reclaimed only via `defer_destroy`, so the deref is valid while `guard` lives.
        let mut parent_update = unsafe { parent.deref() }
            .update()
            // ORDERING: Acquire pairs with the Release half of the AcqRel flag CASes on
            // this `update` word, so an observed record's fields are fully visible.
            .load(Ordering::Acquire, guard);
        // SAFETY: as above — `parent` stays epoch-protected for the guard's lifetime.
        let mut leaf = unsafe { parent.deref() }
            .child_for(key)
            // ORDERING: Acquire pairs with the AcqRel child CASes publishing this child.
            .load(Ordering::Acquire, guard);
        // SAFETY: `leaf` was loaded from an epoch-protected child slot under `guard`.
        while !unsafe { leaf.deref() }.is_leaf() {
            grandparent = parent;
            grandparent_update = parent_update;
            parent = leaf;
            // SAFETY: `parent` (the previous `leaf`) is epoch-protected under `guard`.
            parent_update = unsafe { parent.deref() }
                .update()
                // ORDERING: pairs with the Release half of the flag CASes; see above.
                .load(Ordering::Acquire, guard);
            // SAFETY: `parent` is epoch-protected under `guard`; see above.
            leaf = unsafe { parent.deref() }
                .child_for(key)
                // ORDERING: pairs with the AcqRel child CASes publishing this child.
                .load(Ordering::Acquire, guard);
        }
        SearchResult {
            grandparent,
            grandparent_update,
            parent,
            parent_update,
            leaf,
        }
    }

    /// Returns `true` if `key` is stored in the tree. Wait-free.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns the value stored under `key`, if any. Wait-free.
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = pin();
        let target = RoutingKey::Finite(*key);
        let res = self.search(&target, &guard);
        // SAFETY: `res.leaf` came from the search under the same `guard`; unlinked
        // leaves are retired via `defer_destroy`, never freed in place.
        match unsafe { res.leaf.deref() } {
            Node::Leaf {
                key: RoutingKey::Finite(found),
                value,
            } if found == key => value.clone(),
            _ => None,
        }
    }

    /// Inserts `key → value`; returns `true` if the key was absent.
    /// Lock-free.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.insert_entry(key, value).is_none()
    }

    /// Inserts `key → value` if the key is absent; on failure returns the
    /// value already stored under the key, read from the very leaf that
    /// blocked the insertion (the failed operation's linearization point —
    /// a separate `get` afterwards could observe a later state). Lock-free.
    pub fn insert_entry(&self, key: K, value: V) -> Option<V> {
        self.gauged_update(|| self.insert_entry_inner(key, value))
    }

    fn insert_entry_inner(&self, key: K, value: V) -> Option<V> {
        let guard = pin();
        let target = RoutingKey::Finite(key);
        loop {
            let res = self.search(&target, &guard);
            // SAFETY: `res.leaf` is epoch-protected by the `guard` used for the search.
            let leaf_node = unsafe { res.leaf.deref() };
            if leaf_node.routing_key() == &target {
                if let Node::Leaf { value: current, .. } = leaf_node {
                    return Some(current.clone().expect("finite leaves always carry a value"));
                }
                unreachable!("search always bottoms out at a leaf");
            }
            if res.parent_update.tag() != state::CLEAN {
                self.help(res.parent_update, &guard);
                continue;
            }
            // Build the replacement subtree: an internal node whose routing
            // key is the larger of the two leaf keys, with the existing leaf
            // and the new leaf as children in key order.
            let existing_key = *leaf_node.routing_key();
            let new_leaf = Owned::new(Node::leaf(key, value.clone()));
            let existing_leaf_atomic: Atomic<Node<K, V>> = Atomic::null();
            existing_leaf_atomic.store(res.leaf, Ordering::Relaxed);
            let (routing, left, right) = if target.lt(&existing_key) {
                (existing_key, Atomic::from(new_leaf), existing_leaf_atomic)
            } else {
                (target, existing_leaf_atomic, Atomic::from(new_leaf))
            };
            let subtree = Owned::new(Node::Internal {
                key: routing,
                update: Atomic::null(),
                left,
                right,
            });
            let subtree_atomic: Atomic<Node<K, V>> = Atomic::from(subtree);
            let parent_atomic: Atomic<Node<K, V>> = Atomic::null();
            parent_atomic.store(res.parent, Ordering::Relaxed);
            let leaf_atomic: Atomic<Node<K, V>> = Atomic::null();
            leaf_atomic.store(res.leaf, Ordering::Relaxed);
            let info = Owned::new(Info::Insert {
                parent: parent_atomic,
                leaf: leaf_atomic,
                subtree: subtree_atomic,
            });
            // SAFETY: `res.parent` is epoch-protected by `guard`. It may have been
            // unlinked since the search — then it is still safe to read (retired, not
            // freed) and the flag CAS below fails because its `update` word changed.
            let parent_node = unsafe { res.parent.deref() };
            // ORDERING: success is AcqRel — Release publishes the record's fields (read
            // by every helper through `help_insert`), Acquire orders the flag after the
            // observed CLEAN state; failure Acquire lets us help the record we ran into.
            match parent_node.update().compare_exchange(
                res.parent_update,
                info.with_tag(state::IFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(new_info) => {
                    // The previous (completed) record is no longer reachable
                    // from its primary node: retire it.
                    self.retire_info(res.parent_update, &guard);
                    self.help_insert(new_info.with_tag(state::CLEAN), &guard);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Err(err) => {
                    // Our record was never published: free it and the
                    // speculative subtree (but not the existing leaf it
                    // points to).
                    let owned_info = err.new;
                    // SAFETY: the flag CAS failed, so `err.new` gives us back exclusive ownership
                    // of the never-published record and its speculative subtree; we free both but
                    // keep the pre-existing leaf, which remains reachable from the tree.
                    unsafe {
                        if let Info::Insert { subtree, .. } = &*owned_info {
                            let sub = subtree.load(Ordering::Relaxed, &guard);
                            let sub_owned = sub.into_owned();
                            if let Node::Internal { left, right, .. } = &*sub_owned {
                                // Exactly one of the children is the new
                                // leaf we allocated; the other is the
                                // pre-existing leaf which must stay alive.
                                for child in [left, right] {
                                    let c = child.load(Ordering::Relaxed, &guard);
                                    if c != res.leaf {
                                        drop(c.into_owned());
                                    }
                                }
                            }
                            drop(sub_owned);
                        }
                        drop(owned_info);
                    }
                    self.help(err.current, &guard);
                }
            }
        }
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// value it replaced, if any.
    ///
    /// **Composed, not atomic**: the Ellen et al. scheme has no native
    /// upsert, so this is `remove_entry` + `insert`, and a concurrent reader
    /// may observe the key briefly absent between the two steps. That is the
    /// documented weakness of the linear-time baseline class — the paper's
    /// descriptor-based trees execute `replace` as a single linearizable
    /// operation (see `WaitFreeTree::insert_or_replace`).
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        let prior = self.remove_entry(&key);
        self.insert(key, value);
        prior
    }

    /// Removes `key`; returns `true` if it was present. Lock-free.
    pub fn remove(&self, key: &K) -> bool {
        self.remove_entry(key).is_some()
    }

    /// Removes `key` and returns the value it mapped to, if any. Lock-free.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        self.gauged_update(|| self.remove_entry_inner(key))
    }

    fn remove_entry_inner(&self, key: &K) -> Option<V> {
        let guard = pin();
        let target = RoutingKey::Finite(*key);
        loop {
            let res = self.search(&target, &guard);
            // SAFETY: `res.leaf` is epoch-protected by the `guard` used for the search.
            let leaf_node = unsafe { res.leaf.deref() };
            let prior = match leaf_node {
                Node::Leaf {
                    key: RoutingKey::Finite(found),
                    value,
                } if found == key => value.clone().expect("finite leaves always carry a value"),
                _ => return None,
            };
            if res.grandparent_update.tag() != state::CLEAN {
                self.help(res.grandparent_update, &guard);
                continue;
            }
            if res.parent_update.tag() != state::CLEAN {
                self.help(res.parent_update, &guard);
                continue;
            }
            let grandparent_atomic: Atomic<Node<K, V>> = Atomic::null();
            grandparent_atomic.store(res.grandparent, Ordering::Relaxed);
            let parent_atomic: Atomic<Node<K, V>> = Atomic::null();
            parent_atomic.store(res.parent, Ordering::Relaxed);
            let leaf_atomic: Atomic<Node<K, V>> = Atomic::null();
            leaf_atomic.store(res.leaf, Ordering::Relaxed);
            let expected_parent_update: Atomic<Info<K, V>> = Atomic::null();
            expected_parent_update.store(res.parent_update, Ordering::Relaxed);
            let info = Owned::new(Info::Delete {
                grandparent: grandparent_atomic,
                parent: parent_atomic,
                leaf: leaf_atomic,
                expected_parent_update,
            });
            // SAFETY: `res.grandparent` is non-null — a finite leaf always sits at depth
            // >= 2 (the root's children are sentinels or internal nodes), and we only get
            // here after matching a finite leaf — and is epoch-protected by `guard`.
            let grandparent_node = unsafe { res.grandparent.deref() };
            // ORDERING: success is AcqRel — Release publishes the Delete record to
            // helpers, Acquire orders the DFLAG after the observed CLEAN grandparent
            // state; failure Acquire reads the conflicting record so we can help it.
            match grandparent_node.update().compare_exchange(
                res.grandparent_update,
                info.with_tag(state::DFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(new_info) => {
                    self.retire_info(res.grandparent_update, &guard);
                    if self.help_delete(new_info.with_tag(state::CLEAN), &guard) {
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        return Some(prior);
                    }
                    // The mark failed (someone changed the parent first):
                    // retry from scratch. The record stays installed in the
                    // grandparent with the CLEAN tag and is reclaimed by a
                    // later flag CAS or by `Drop`.
                }
                Err(err) => {
                    drop(err.new);
                    self.help(err.current, &guard);
                }
            }
        }
    }

    /// Helps whatever operation the tagged `update` word points to.
    fn help(&self, update: Shared<'_, Info<K, V>>, guard: &Guard) {
        match update.tag() {
            state::IFLAG => self.help_insert(update.with_tag(state::CLEAN), guard),
            state::DFLAG => {
                self.help_delete(update.with_tag(state::CLEAN), guard);
            }
            state::MARK => self.help_marked(update.with_tag(state::CLEAN), guard),
            _ => {}
        }
    }

    /// Finishes a pending insertion: splices the new subtree in place of the
    /// old leaf and unflags the parent.
    fn help_insert(&self, info: Shared<'_, Info<K, V>>, guard: &Guard) {
        let Info::Insert {
            parent,
            leaf,
            subtree,
            // SAFETY: `info` was read from a flagged `update` word under `guard`; records
            // are retired via `defer_destroy` only after being replaced in their primary
            // node, so the deref is valid for the guard's lifetime.
        } = (unsafe { info.deref() })
        else {
            return;
        };
        // ORDERING: the record's fields were written before the Release flag CAS
        // published `info`; these Acquire loads are conservative pairing with it.
        let parent_ptr = parent.load(Ordering::Acquire, guard);
        let leaf_ptr = leaf.load(Ordering::Acquire, guard); // ORDERING: as above.
        let subtree_ptr = subtree.load(Ordering::Acquire, guard); // ORDERING: as above.
                                                                  // SAFETY: `parent_ptr` was stored in the record before publication and is
                                                                  // epoch-protected; a parent is never retired while its insert record is live.
        let parent_node = unsafe { parent_ptr.deref() };
        // Replace the leaf with the new subtree (only one helper succeeds);
        // the slot is the one the leaf currently occupies.
        // SAFETY: `leaf_ptr` is epoch-protected; even if another helper already
        // swung the child pointer, the leaf is retired via `defer_destroy`, not freed.
        let slot = parent_node.child_for(unsafe { leaf_ptr.deref() }.routing_key());
        // ORDERING: AcqRel — Release publishes the initialised subtree to Acquire
        // traversals (search/collect), Acquire orders the splice after the record
        // reads; failure means another helper already did it, which is fine.
        let _ = slot.compare_exchange(
            leaf_ptr,
            subtree_ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
        // Unflag: IFLAG(info) -> CLEAN(info).
        // ORDERING: AcqRel orders the unflag after the child splice above, so a
        // helper that Acquire-loads the CLEAN tag also sees the completed splice.
        let _ = parent_node.update().compare_exchange(
            info.with_tag(state::IFLAG),
            info.with_tag(state::CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
    }

    /// Tries to finish a pending deletion: marks the parent, then unlinks it.
    /// Returns `false` if the mark could not be applied (the deletion must be
    /// retried by its initiator).
    fn help_delete(&self, info: Shared<'_, Info<K, V>>, guard: &Guard) -> bool {
        let Info::Delete {
            grandparent,
            parent,
            expected_parent_update,
            ..
        // SAFETY: `info` came from a flagged `update` word under `guard`; see
        // `help_insert` — records are only retired after being unlinked.
        } = (unsafe { info.deref() })
        else {
            return false;
        };
        // ORDERING: record fields were Release-published by the DFLAG CAS; Acquire
        // pairs with it.
        let parent_ptr = parent.load(Ordering::Acquire, guard);
        // SAFETY: `parent_ptr` was captured in the record before publication and is
        // epoch-protected for the guard's lifetime.
        let parent_node = unsafe { parent_ptr.deref() };
        // ORDERING: pairs with the Release publication of the record; see above.
        let expected = expected_parent_update.load(Ordering::Acquire, guard);
        // ORDERING: AcqRel — Release publishes the MARK (freezing the parent's
        // children for help_marked), Acquire orders it after the expected CLEAN
        // state; failure Acquire reads whichever record beat us to the parent.
        let result = parent_node.update().compare_exchange(
            expected,
            info.with_tag(state::MARK),
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
        let marked = match result {
            Ok(_) => true,
            // Someone (possibly ourselves on a previous attempt) already
            // installed this very mark: proceed as if we had.
            Err(err) => err.current == info.with_tag(state::MARK),
        };
        if marked {
            self.help_marked(info, guard);
            true
        } else {
            // Help whoever beat us to the parent, then roll the DFLAG back so
            // the grandparent becomes available again.
            // ORDERING: Acquire pairs with the flag CASes so the conflicting record's
            // fields are visible before we help it.
            let current = parent_node.update().load(Ordering::Acquire, guard);
            self.help(current, guard);
            // ORDERING: pairs with the Release publication of the Delete record.
            let grandparent_ptr = grandparent.load(Ordering::Acquire, guard);
            // SAFETY: the Delete record always carries a non-null grandparent (checked
            // at construction in remove_entry_inner) and it is epoch-protected.
            let grandparent_node = unsafe { grandparent_ptr.deref() };
            // ORDERING: AcqRel rolls DFLAG back to CLEAN — Release so threads that
            // acquire the grandparent afterwards see a consistent record, Acquire to
            // order the rollback after the failed mark.
            let _ = grandparent_node.update().compare_exchange(
                info.with_tag(state::DFLAG),
                info.with_tag(state::CLEAN),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            );
            false
        }
    }

    /// Finishes a marked deletion: swings the grandparent's child pointer to
    /// the sibling of the deleted leaf, retires the unlinked nodes and
    /// unflags the grandparent.
    fn help_marked(&self, info: Shared<'_, Info<K, V>>, guard: &Guard) {
        let Info::Delete {
            grandparent,
            parent,
            leaf,
            ..
        // SAFETY: `info` came from a flagged `update` word under `guard`; records
        // are only retired after being unlinked from their primary node.
        } = (unsafe { info.deref() })
        else {
            return;
        };
        // ORDERING: record fields were Release-published by the DFLAG CAS; these
        // Acquire loads conservatively pair with it.
        let grandparent_ptr = grandparent.load(Ordering::Acquire, guard);
        let parent_ptr = parent.load(Ordering::Acquire, guard); // ORDERING: as above.
        let leaf_ptr = leaf.load(Ordering::Acquire, guard); // ORDERING: as above.
                                                            // SAFETY: `parent_ptr` was captured in the record and is epoch-protected;
                                                            // the parent is MARKed, so it cannot be concurrently retired before the
                                                            // unlink CAS below decides a single winner.
        let parent_node = unsafe { parent_ptr.deref() };
        // The sibling of the deleted leaf: the parent is marked, so its
        // children can no longer change and this read is stable.
        let (left, right) = parent_node.children();
        // ORDERING: the parent is MARKed, so its child slots are frozen; Acquire
        // pairs with the child CASes that originally published these nodes.
        let left_ptr = left.load(Ordering::Acquire, guard);
        let right_ptr = right.load(Ordering::Acquire, guard); // ORDERING: as above.
        let sibling = if left_ptr == leaf_ptr {
            right_ptr
        } else {
            left_ptr
        };
        // SAFETY: `grandparent_ptr` is non-null (invariant of the Delete record)
        // and epoch-protected under `guard`.
        let grandparent_node = unsafe { grandparent_ptr.deref() };
        // SAFETY: both pointers are epoch-protected; `parent_ptr` is the MARKed
        // node whose routing key picks the child slot to swing.
        let slot = grandparent_node.child_for(unsafe { parent_ptr.deref() }.routing_key());
        // ORDERING: AcqRel — Release keeps the (already published) sibling's
        // initialisation visible through the new edge, Acquire orders the unlink
        // after the frozen-children reads above; only one helper's CAS succeeds.
        if slot
            .compare_exchange(
                parent_ptr,
                sibling,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            )
            .is_ok()
        {
            // We unlinked the parent and the deleted leaf: retire both. The
            // node destructor does not touch children, so the surviving
            // sibling is unaffected.
            // SAFETY: our CAS just unlinked `parent_ptr` (MARKed, children frozen) and
            // `leaf_ptr` from the only path that reached them; exactly one helper wins
            // the CAS, so each node is retired once, and `defer_destroy` waits out every
            // current guard before freeing.
            unsafe {
                guard.defer_destroy(parent_ptr);
                guard.defer_destroy(leaf_ptr);
            }
        }
        // Unflag: DFLAG(info) -> CLEAN(info).
        // ORDERING: AcqRel orders the unflag after the unlink, so an Acquire load
        // of the CLEAN tag implies the physical deletion is complete.
        let _ = grandparent_node.update().compare_exchange(
            info.with_tag(state::DFLAG),
            info.with_tag(state::CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
    }

    /// Retires a completed operation record that has just been replaced in
    /// the `update` word of its primary node.
    fn retire_info(&self, info: Shared<'_, Info<K, V>>, guard: &Guard) {
        if !info.is_null() {
            // SAFETY: `info` was just replaced in the `update` word of its primary node —
            // the only place a completed record stays reachable — and the replacing CAS
            // has a single winner, so the record is retired exactly once; readers that
            // still hold it are protected by their guards until the epoch advances.
            unsafe {
                guard.defer_destroy(info);
            }
        }
    }

    /// Every `(key, value)` with key in `[min, max]`, in key order — the
    /// `collect` range query of the linear-time baseline class.
    ///
    /// The traversal is epoch-protected and prunes subtrees by routing key;
    /// concurrent updates may or may not be observed (see the crate
    /// documentation for the exact guarantee).
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if min > max {
            return out;
        }
        let guard = pin();
        // ORDERING: Acquire pairs with the AcqRel child CASes, so every node the
        // traversal reaches is fully initialised.
        let root = self.root.load(Ordering::Acquire, &guard);
        collect_in_range(root, &min, &max, &mut out, &guard);
        out.sort_by_key(|a| a.0);
        out
    }

    /// Number of keys in `[min, max]`, computed the way the linear-time
    /// baseline class computes it: `collect_range(min, max).len()`.
    ///
    /// This is **intentionally linear** in the width of the range — it is the
    /// behaviour the paper's aggregate range queries improve upon.
    pub fn count(&self, min: K, max: K) -> u64 {
        self.collect_range(min, max).len() as u64
    }

    /// All finite entries in key order (quiescent use only).
    pub fn entries_quiescent(&self) -> Vec<(K, V)> {
        let guard = pin();
        let mut out = Vec::new();
        // ORDERING: Acquire pairs with the AcqRel child CASes; quiescent use only.
        let root = self.root.load(Ordering::Acquire, &guard);
        collect_all(root, &mut out, &guard);
        out.sort_by_key(|a| a.0);
        out
    }

    /// Validates the external-BST routing invariant and the absence of
    /// pending flags. **Quiescent only**; panics on violation.
    pub fn check_invariants(&self) {
        let guard = pin();
        // ORDERING: Acquire pairs with the AcqRel child CASes; quiescent use only.
        let root = self.root.load(Ordering::Acquire, &guard);
        let keys = check_node(root, None, None, &guard);
        assert_eq!(
            keys,
            self.len(),
            "cached length diverged from the number of finite leaves"
        );
    }
}

impl<K: Key, V: Value> Drop for LockFreeBst<K, V> {
    fn drop(&mut self) {
        // SAFETY: `drop` takes `&mut self`, so no other thread can hold a reference
        // into the tree; skipping epoch protection and freeing the whole subtree
        // immediately is therefore sound (records are freed by the node destructor).
        let root = self
            .root
            .load(Ordering::Relaxed, unsafe { crossbeam_epoch::unprotected() });
        free_subtree_now(root);
    }
}

/// Collects all finite leaves with keys in `[min, max]`, pruning by routing
/// keys.
fn collect_in_range<K: Key, V: Value>(
    node: Shared<'_, Node<K, V>>,
    min: &K,
    max: &K,
    out: &mut Vec<(K, V)>,
    guard: &Guard,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: `node` was reached from the epoch-protected root under `guard`.
    match unsafe { node.deref() } {
        Node::Leaf {
            key: RoutingKey::Finite(k),
            value,
        } => {
            if min <= k && k <= max {
                out.push((
                    *k,
                    value.clone().expect("finite leaves always carry a value"),
                ));
            }
        }
        Node::Leaf { .. } => {}
        Node::Internal {
            key, left, right, ..
        } => {
            // Left subtree holds keys < routing key, right subtree keys >=.
            let descend_left = match key {
                RoutingKey::Finite(routing) => min < routing,
                _ => true,
            };
            let descend_right = match key {
                RoutingKey::Finite(routing) => max >= routing,
                _ => true,
            };
            if descend_left {
                // ORDERING: Acquire pairs with the AcqRel child CASes publishing this child.
                collect_in_range(left.load(Ordering::Acquire, guard), min, max, out, guard);
            }
            if descend_right {
                // ORDERING: Acquire pairs with the AcqRel child CASes publishing this child.
                collect_in_range(right.load(Ordering::Acquire, guard), min, max, out, guard);
            }
        }
    }
}

/// Collects every finite leaf in the subtree.
fn collect_all<K: Key, V: Value>(
    node: Shared<'_, Node<K, V>>,
    out: &mut Vec<(K, V)>,
    guard: &Guard,
) {
    if node.is_null() {
        return;
    }
    // SAFETY: `node` was reached from the epoch-protected root under `guard`.
    match unsafe { node.deref() } {
        Node::Leaf {
            key: RoutingKey::Finite(k),
            value,
        } => out.push((
            *k,
            value.clone().expect("finite leaves always carry a value"),
        )),
        Node::Leaf { .. } => {}
        Node::Internal { left, right, .. } => {
            // ORDERING: Acquire pairs with the AcqRel child CASes publishing this child.
            collect_all(left.load(Ordering::Acquire, guard), out, guard);
            // ORDERING: Acquire pairs with the AcqRel child CASes publishing this child.
            collect_all(right.load(Ordering::Acquire, guard), out, guard);
        }
    }
}

/// Quiescent invariant check; returns the number of finite leaves.
fn check_node<K: Key, V: Value>(
    node: Shared<'_, Node<K, V>>,
    lo: Option<&RoutingKey<K>>,
    hi: Option<&RoutingKey<K>>,
    guard: &Guard,
) -> u64 {
    if node.is_null() {
        return 0;
    }
    // SAFETY: `node` was reached from the epoch-protected root under `guard`.
    match unsafe { node.deref() } {
        Node::Leaf { key, .. } => {
            if let Some(lo) = lo {
                assert!(key >= lo, "leaf key below its routing interval");
            }
            if let Some(hi) = hi {
                assert!(key < hi, "leaf key above its routing interval");
            }
            u64::from(key.finite().is_some())
        }
        Node::Internal {
            key,
            update,
            left,
            right,
        } => {
            // ORDERING: Acquire pairs with the flag CASes; quiescent check only.
            let pending = update.load(Ordering::Acquire, guard);
            assert_eq!(
                pending.tag(),
                state::CLEAN,
                "pending flag left behind in a quiescent tree"
            );
            // ORDERING: Acquire pairs with the AcqRel child CASes publishing the children.
            let nl = check_node(left.load(Ordering::Acquire, guard), lo, Some(key), guard);
            // ORDERING: Acquire pairs with the AcqRel child CASes publishing the children.
            let nr = check_node(right.load(Ordering::Acquire, guard), Some(key), hi, guard);
            nl + nr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_tree() {
        let tree: LockFreeBst<i64> = LockFreeBst::new();
        assert!(tree.is_empty());
        assert!(!tree.contains(&1));
        assert!(!tree.remove(&1));
        assert_eq!(tree.count(i64::MIN, i64::MAX), 0);
        tree.check_invariants();
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let tree: LockFreeBst<i64, i64> = LockFreeBst::new();
        assert!(tree.insert(5, 50));
        assert!(!tree.insert(5, 51));
        assert!(tree.insert(1, 10));
        assert!(tree.insert(9, 90));
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.get(&5), Some(50));
        assert!(tree.contains(&1));
        assert!(!tree.contains(&2));
        assert_eq!(tree.remove_entry(&5), Some(50));
        assert_eq!(tree.remove_entry(&5), None);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.entries_quiescent(), vec![(1, 10), (9, 90)]);
        tree.check_invariants();
    }

    #[test]
    fn collect_and_count_are_range_correct() {
        let tree: LockFreeBst<i64> = LockFreeBst::new();
        for k in (0..100).step_by(2) {
            assert!(tree.insert(k, ()));
        }
        assert_eq!(tree.count(0, 99), 50);
        assert_eq!(tree.count(10, 20), 6);
        assert_eq!(tree.count(11, 11), 0);
        assert_eq!(tree.count(-50, -1), 0);
        assert_eq!(tree.count(90, 200), 5);
        assert_eq!(tree.count(20, 10), 0);
        let entries = tree.collect_range(10, 20);
        assert_eq!(
            entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14, 16, 18, 20]
        );
        tree.check_invariants();
    }

    #[test]
    fn removing_reuses_structure_correctly() {
        let tree: LockFreeBst<i64> = LockFreeBst::new();
        for k in 0..200 {
            assert!(tree.insert(k, ()));
        }
        for k in (0..200).step_by(2) {
            assert!(tree.remove(&k));
        }
        assert_eq!(tree.len(), 100);
        for k in 0..200 {
            assert_eq!(tree.contains(&k), k % 2 == 1, "key {k}");
        }
        tree.check_invariants();
    }

    #[test]
    fn from_entries_dedups() {
        let tree: LockFreeBst<i64, i64> =
            LockFreeBst::from_entries(vec![(1, 10), (2, 20), (1, 99)]);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.get(&1), Some(10));
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        const THREADS: i64 = 4;
        const PER_THREAD: i64 = 2_000;
        let tree: Arc<LockFreeBst<i64>> = Arc::new(LockFreeBst::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert!(tree.insert(t * PER_THREAD + i, ()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len(), (THREADS * PER_THREAD) as u64);
        assert_eq!(
            tree.count(i64::MIN, i64::MAX),
            (THREADS * PER_THREAD) as u64
        );
        tree.check_invariants();
    }

    #[test]
    fn concurrent_contended_mix() {
        const THREADS: usize = 4;
        const OPS: usize = 4_000;
        const RANGE: i64 = 256;
        let tree: Arc<LockFreeBst<i64>> = Arc::new(LockFreeBst::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    let mut state = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut next = || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..OPS {
                        let key = (next() % RANGE as u64) as i64;
                        match next() % 3 {
                            0 => {
                                tree.insert(key, ());
                            }
                            1 => {
                                tree.remove(&key);
                            }
                            _ => {
                                tree.contains(&key);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Quiescent: length must equal the number of keys physically present.
        tree.check_invariants();
        let entries = tree.entries_quiescent();
        assert_eq!(entries.len() as u64, tree.len());
        assert_eq!(tree.count(i64::MIN, i64::MAX), tree.len());
    }
}
