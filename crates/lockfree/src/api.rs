//! [`wft_api`] trait implementations for [`LockFreeBst`].
//!
//! This baseline has **no augmentation**: [`RangeRead::range_agg`] and
//! [`RangeRead::count`] are answered by collecting the range — time linear
//! in the range width, which is exactly the asymptotic gap the paper closes.
//! Its `Agg` is therefore simply the key count. [`PointMap::replace`] is the
//! composed (non-atomic) upsert; see
//! [`LockFreeBst::insert_or_replace`].

use wft_api::{
    apply_batch_point, BatchApply, BatchError, ChunkRead, FrontScanCursor, OpOutcome, PointMap,
    RangeKey, RangeRead, RangeScan, RangeSpec, StoreOp, TimestampFront, UpdateOutcome,
};
use wft_seq::{Key, Value};

use crate::tree::LockFreeBst;

impl<K: Key, V: Value> PointMap<K, V> for LockFreeBst<K, V> {
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V> {
        // `insert_entry` reports the blocking value from the leaf the failed
        // insert linearized against, so the typed outcome is atomic.
        match self.insert_entry(key, value) {
            None => UpdateOutcome::Applied { prior: None },
            Some(current) => UpdateOutcome::Unchanged {
                current: Some(current),
            },
        }
    }

    fn replace(&self, key: K, value: V) -> UpdateOutcome<V> {
        UpdateOutcome::Applied {
            prior: self.insert_or_replace(key, value),
        }
    }

    fn remove(&self, key: &K) -> UpdateOutcome<V> {
        match self.remove_entry(key) {
            Some(prior) => UpdateOutcome::Applied { prior: Some(prior) },
            None => UpdateOutcome::Unchanged { current: None },
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        LockFreeBst::get(self, key)
    }

    fn len(&self) -> u64 {
        LockFreeBst::len(self)
    }
}

impl<K: RangeKey, V: Value> RangeRead<K, V> for LockFreeBst<K, V> {
    /// No augmentation: the only aggregate this class supports is the count
    /// obtained by collecting the range.
    type Agg = u64;

    fn range_agg(&self, range: RangeSpec<K>) -> u64 {
        RangeRead::count(self, range)
    }

    fn count(&self, range: RangeSpec<K>) -> u64 {
        RangeRead::collect_range(self, range).len() as u64
    }

    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)> {
        wft_api::collect_over(range, |min, max| LockFreeBst::collect_range(self, min, max))
    }
}

/// Chunks through the default collect-and-truncate. Notably, the
/// front-sandwiched scan cursor is the only way this baseline's *chunked*
/// range reads are exact at all: its plain `collect_range` is a documented
/// best-effort traversal, and the update-gauge validation is what upgrades
/// a chunk to a linearizable read (same situation as its `SnapshotRead`).
impl<K: RangeKey, V: Value> ChunkRead<K, V> for LockFreeBst<K, V> {}

/// Streaming scans through the shared front-sandwich cursor over the
/// update gauge.
impl<K: RangeKey, V: Value> RangeScan<K, V> for LockFreeBst<K, V> {
    type Cursor<'a>
        = FrontScanCursor<'a, Self, K, V>
    where
        Self: 'a;

    fn scan(&self, range: RangeSpec<K>) -> FrontScanCursor<'_, Self, K, V> {
        FrontScanCursor::new(self, range)
    }
}

impl<K: Key, V: Value> BatchApply<K, V> for LockFreeBst<K, V> {
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        apply_batch_point(self, batch)
    }
}

/// Opts into the blanket `SnapshotRead`: plain reads here are
/// validation-free linearizable queries, so the blanket's sandwich is the
/// single validation layer.
impl<K: Key, V: Value> wft_api::FrontSnapshot for LockFreeBst<K, V> {}

/// The baseline's snapshot front is a plain update gauge (updates in flight
/// vs updates finished). Settling *spins* rather than helping — the class
/// has no descriptor to help — so acquisition is not non-blocking here; but
/// a validated snapshot read is exact, which makes this the only
/// configuration in which the linear baseline's range queries are
/// linearizable at all (its plain `collect_range` is a documented
/// best-effort traversal).
impl<K: Key, V: Value> TimestampFront for LockFreeBst<K, V> {
    fn settle_front(&self) -> u64 {
        self.settle_updates()
    }

    fn front_advertised(&self) -> u64 {
        self.updates_started()
    }
}

/// Minimal `wft-obs` surface for the baseline: the update gauge behind its
/// snapshot front (started vs settled) and the current size. The baseline
/// keeps no further operational counters.
impl<K: Key, V: Value> wft_obs::MetricsSource for LockFreeBst<K, V> {
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        out.push_counter("lockfree_updates_started", self.updates_started());
        out.push_gauge("lockfree_len", PointMap::len(self) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_replace_and_linear_count() {
        let tree: LockFreeBst<i64, i64> = LockFreeBst::new();
        assert_eq!(tree.insert_or_replace(1, 10), None);
        assert_eq!(tree.insert_or_replace(1, 11), Some(10));
        assert_eq!(PointMap::get(&tree, &1), Some(11));
        assert_eq!(RangeRead::count(&tree, RangeSpec::all()), 1);
        assert_eq!(RangeRead::range_agg(&tree, RangeSpec::inclusive(5, 2)), 0);
    }
}
