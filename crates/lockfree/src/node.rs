//! Node and operation-record layout of the lock-free external BST.
//!
//! The tree is *external*: data keys live only in leaves, internal nodes
//! carry a routing key and two child pointers. Following Ellen et al., the
//! initial tree consists of one internal node whose routing key is the
//! largest sentinel and two sentinel leaves, so `search` never has to handle
//! an empty tree or a missing grandparent specially.

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Atomic, Owned, Shared};
use wft_seq::{Key, Value};

/// A routing key: either a real key or one of the two sentinels that are
/// larger than every real key (`Inf1 < Inf2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoutingKey<K> {
    /// An ordinary key.
    Finite(K),
    /// First sentinel: larger than every finite key.
    Inf1,
    /// Second sentinel: larger than `Inf1`.
    Inf2,
}

impl<K: Key> RoutingKey<K> {
    /// `true` if this routing key is strictly smaller than `other`.
    pub fn lt(&self, other: &Self) -> bool {
        self < other
    }

    /// The finite key, if this is not a sentinel.
    pub fn finite(&self) -> Option<&K> {
        match self {
            RoutingKey::Finite(k) => Some(k),
            _ => None,
        }
    }
}

/// State of an internal node's `update` word, stored in the low tag bits of
/// the epoch pointer.
pub mod state {
    /// No operation pending at this node.
    pub const CLEAN: usize = 0;
    /// An insertion has flagged this node (tag points to an [`super::Info::Insert`]).
    pub const IFLAG: usize = 1;
    /// A deletion has flagged this node as the grandparent.
    pub const DFLAG: usize = 2;
    /// A deletion has marked this node (the parent about to be unlinked).
    pub const MARK: usize = 3;
}

/// An operation record installed in the `update` word of flagged/marked
/// internal nodes. Helpers use it to finish the pending update.
pub enum Info<K: Key, V: Value> {
    /// Pending insertion: replace leaf `leaf` under `parent` with `subtree`.
    Insert {
        /// The internal node that was IFLAG-ed.
        parent: Atomic<Node<K, V>>,
        /// The leaf to be replaced.
        leaf: Atomic<Node<K, V>>,
        /// The new internal node (with two leaf children) to splice in.
        subtree: Atomic<Node<K, V>>,
    },
    /// Pending deletion: unlink `parent` (and the leaf under it) from
    /// `grandparent`.
    Delete {
        /// The internal node that was DFLAG-ed.
        grandparent: Atomic<Node<K, V>>,
        /// The internal node to be marked and unlinked.
        parent: Atomic<Node<K, V>>,
        /// The leaf being deleted.
        leaf: Atomic<Node<K, V>>,
        /// The value (pointer + state tag) of `parent.update` observed by the
        /// deleter during its search; the mark CAS uses it as expected value.
        expected_parent_update: Atomic<Info<K, V>>,
    },
}

/// An atomic link from an internal node to one of its children.
pub type ChildLink<K, V> = Atomic<Node<K, V>>;

/// A tree node: routing internal node or data leaf.
pub enum Node<K: Key, V: Value> {
    /// Routing node. Keys `< key` are in the left subtree, keys `>= key` in
    /// the right subtree.
    Internal {
        /// Routing key (possibly a sentinel).
        key: RoutingKey<K>,
        /// Pending-operation word: pointer to an [`Info`] record, tagged with
        /// one of the [`state`] constants.
        update: Atomic<Info<K, V>>,
        /// Left child (keys `< key`).
        left: Atomic<Node<K, V>>,
        /// Right child (keys `>= key`).
        right: Atomic<Node<K, V>>,
    },
    /// Data leaf (or sentinel leaf when `key` is not finite).
    Leaf {
        /// The stored key (or a sentinel).
        key: RoutingKey<K>,
        /// The stored value; `None` only for sentinel leaves.
        value: Option<V>,
    },
}

impl<K: Key, V: Value> Node<K, V> {
    /// Creates a data leaf.
    pub fn leaf(key: K, value: V) -> Self {
        Node::Leaf {
            key: RoutingKey::Finite(key),
            value: Some(value),
        }
    }

    /// Creates a sentinel leaf.
    pub fn sentinel_leaf(key: RoutingKey<K>) -> Self {
        Node::Leaf { key, value: None }
    }

    /// Creates an internal node with the given routing key and children.
    pub fn internal(key: RoutingKey<K>, left: Owned<Node<K, V>>, right: Owned<Node<K, V>>) -> Self {
        Node::Internal {
            key,
            update: Atomic::null(),
            left: Atomic::from(left),
            right: Atomic::from(right),
        }
    }

    /// The routing key of this node.
    pub fn routing_key(&self) -> &RoutingKey<K> {
        match self {
            Node::Internal { key, .. } | Node::Leaf { key, .. } => key,
        }
    }

    /// `true` if this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// The `update` word of an internal node.
    ///
    /// # Panics
    ///
    /// Panics if called on a leaf.
    pub fn update(&self) -> &Atomic<Info<K, V>> {
        match self {
            Node::Internal { update, .. } => update,
            Node::Leaf { .. } => panic!("leaf nodes have no update word"),
        }
    }

    /// The child pointer a search for `key` follows from this internal node.
    ///
    /// # Panics
    ///
    /// Panics if called on a leaf.
    pub fn child_for(&self, key: &RoutingKey<K>) -> &Atomic<Node<K, V>> {
        match self {
            Node::Internal {
                key: routing,
                left,
                right,
                ..
            } => {
                if key.lt(routing) {
                    left
                } else {
                    right
                }
            }
            Node::Leaf { .. } => panic!("leaf nodes have no children"),
        }
    }

    /// Both child pointers of an internal node (`left`, `right`).
    ///
    /// # Panics
    ///
    /// Panics if called on a leaf.
    pub fn children(&self) -> (&ChildLink<K, V>, &ChildLink<K, V>) {
        match self {
            Node::Internal { left, right, .. } => (left, right),
            Node::Leaf { .. } => panic!("leaf nodes have no children"),
        }
    }
}

/// Frees an entire subtree immediately. Only safe with exclusive access
/// (`Drop` of the tree).
pub(crate) fn free_subtree_now<K: Key, V: Value>(node: Shared<'_, Node<K, V>>) {
    if node.is_null() {
        return;
    }
    // SAFETY: the caller guarantees exclusive access (tree `Drop`), so no
    // other thread holds or can form a reference into this subtree; every
    // node and record is freed exactly once by the post-order walk.
    unsafe {
        let owned = node.into_owned();
        if let Node::Internal {
            left,
            right,
            update,
            ..
        } = &*owned
        {
            let u = crossbeam_epoch::unprotected();
            free_subtree_now(left.load(Ordering::Relaxed, u));
            free_subtree_now(right.load(Ordering::Relaxed, u));
            // Among nodes still reachable from the root, each completed
            // operation record is referenced by exactly one `update` word
            // (its primary node, see `tree.rs`), so freeing it here is safe.
            let info = update.load(Ordering::Relaxed, u);
            if !info.is_null() {
                drop(info.into_owned());
            }
        }
        drop(owned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_key_ordering() {
        let a: RoutingKey<i64> = RoutingKey::Finite(-5);
        let b: RoutingKey<i64> = RoutingKey::Finite(1_000_000);
        let inf1: RoutingKey<i64> = RoutingKey::Inf1;
        let inf2: RoutingKey<i64> = RoutingKey::Inf2;
        assert!(a.lt(&b));
        assert!(b.lt(&inf1));
        assert!(inf1.lt(&inf2));
        assert!(!inf2.lt(&inf1));
        assert!(!b.lt(&a));
        assert_eq!(a.finite(), Some(&-5));
        assert_eq!(inf1.finite(), None);
    }

    #[test]
    fn node_accessors() {
        let leaf: Node<i64, ()> = Node::leaf(7, ());
        assert!(leaf.is_leaf());
        assert_eq!(leaf.routing_key(), &RoutingKey::Finite(7));

        let internal: Node<i64, ()> = Node::internal(
            RoutingKey::Finite(10),
            Owned::new(Node::leaf(5, ())),
            Owned::new(Node::leaf(10, ())),
        );
        assert!(!internal.is_leaf());
        let guard = crossbeam_epoch::pin();
        let left_child = internal
            .child_for(&RoutingKey::Finite(3))
            .load(Ordering::Acquire, &guard);
        // SAFETY: the children were installed above and never retired in this test.
        let left_child = unsafe { left_child.deref() };
        assert_eq!(left_child.routing_key(), &RoutingKey::Finite(5));
        let right_child = internal
            .child_for(&RoutingKey::Finite(10))
            .load(Ordering::Acquire, &guard);
        // SAFETY: as above.
        let right_child = unsafe { right_child.deref() };
        assert_eq!(right_child.routing_key(), &RoutingKey::Finite(10));
        // Dropping `internal` directly would leak its children; free it the
        // way the tree does.
        let owned = Owned::new(internal);
        // SAFETY: the node was never published; this test owns it exclusively.
        free_subtree_now(owned.into_shared(unsafe { crossbeam_epoch::unprotected() }));
    }

    #[test]
    #[should_panic(expected = "no children")]
    fn leaf_children_panics() {
        let leaf: Node<i64, ()> = Node::leaf(7, ());
        let _ = leaf.children();
    }

    #[test]
    #[should_panic(expected = "no update word")]
    fn leaf_update_panics() {
        let leaf: Node<i64, ()> = Node::leaf(7, ());
        let _ = leaf.update();
    }
}
