//! Lock-free external binary search tree — the "linear-time range queries"
//! baseline.
//!
//! The paper's related work (§I-A, "Linear-time solutions") describes a whole
//! family of non-blocking search trees that *can* answer range queries, but
//! only through `collect(min, max)`: the query walks the range and returns
//! every key in it, so an aggregate such as `count` degenerates to
//! `collect(min, max).len()` and costs time proportional to the number of
//! keys in the range. This crate implements a representative member of that
//! family so the benchmark harness can put the paper's asymptotic claim —
//! aggregate queries in `O(log N)` versus `O(range)` — against a real
//! lock-free competitor rather than only against this repository's own trees.
//!
//! The scalar algorithm is the classic external (leaf-oriented) non-blocking
//! BST of Ellen, Fatourou, Ruppert and van Breugel (PODC 2010): every update
//! *flags* or *marks* the internal nodes it is about to change by installing
//! an operation record in their `update` word, and any thread that encounters
//! a flagged node helps the pending operation to completion before retrying
//! its own. `contains` is wait-free (a single root-to-leaf traversal);
//! `insert` and `remove` are lock-free. Unlinked nodes and superseded
//! operation records are reclaimed through `crossbeam-epoch`.
//!
//! Range queries are provided exactly the way the prior-work family provides
//! them:
//!
//! * [`LockFreeBst::collect_range`] — an epoch-protected in-order traversal
//!   of the range (the `collect` query);
//! * [`LockFreeBst::count`] — implemented as `collect_range(..).len()`,
//!   i.e. **deliberately linear** in the range width. This is the behaviour
//!   the paper improves upon.
//!
//! The traversal is a best-effort snapshot: it observes every key that was
//! present for the whole duration of the query and may or may not observe
//! keys inserted or removed concurrently (the same guarantee as a simple
//! traversal over the structures in [8, 12] before the extra
//! linearization machinery of those papers is added). The benchmark harness
//! only uses it on quiescent trees or for throughput measurements, where this
//! is exactly what the baseline class would do.
//!
//! # Example
//!
//! ```
//! use wft_lockfree::LockFreeBst;
//!
//! let tree: LockFreeBst<i64> = LockFreeBst::new();
//! assert!(tree.insert(10, ()));
//! assert!(tree.insert(20, ()));
//! assert!(!tree.insert(10, ()));
//! assert!(tree.contains(&10));
//! assert_eq!(tree.count(0, 15), 1);
//! assert!(tree.remove(&10));
//! assert_eq!(tree.count(0, 15), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
mod node;
mod tree;

pub use node::RoutingKey;
pub use tree::LockFreeBst;
