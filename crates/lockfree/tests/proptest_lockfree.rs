//! Property tests for the lock-free external BST baseline: arbitrary
//! operation sequences are replayed against `std::collections::BTreeMap`, and
//! the tree must agree on every observable result.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wft_lockfree::LockFreeBst;

/// A single operation of the randomized workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64),
    Contains(i64),
    Get(i64),
    Count(i64, i64),
    Collect(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = -64i64..64;
    prop_oneof![
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        key.clone().prop_map(Op::Contains),
        key.clone().prop_map(Op::Get),
        (key.clone(), key.clone()).prop_map(|(a, b)| Op::Count(a.min(b), a.max(b))),
        (key.clone(), key).prop_map(|(a, b)| Op::Collect(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sequential_equivalence_with_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let tree: LockFreeBst<i64, i64> = LockFreeBst::new();
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let expected = !oracle.contains_key(&k);
                    if expected {
                        oracle.insert(k, v);
                    }
                    prop_assert_eq!(tree.insert(k, v), expected, "insert({})", k);
                }
                Op::Remove(k) => {
                    let expected = oracle.remove(&k);
                    prop_assert_eq!(tree.remove_entry(&k), expected, "remove({})", k);
                }
                Op::Contains(k) => {
                    prop_assert_eq!(tree.contains(&k), oracle.contains_key(&k), "contains({})", k);
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), oracle.get(&k).copied(), "get({})", k);
                }
                Op::Count(min, max) => {
                    let expected = oracle.range(min..=max).count() as u64;
                    prop_assert_eq!(tree.count(min, max), expected, "count({}, {})", min, max);
                }
                Op::Collect(min, max) => {
                    let expected: Vec<(i64, i64)> =
                        oracle.range(min..=max).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(tree.collect_range(min, max), expected, "collect({}, {})", min, max);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len() as u64);
        }
        tree.check_invariants();
        let entries: Vec<(i64, i64)> = oracle.into_iter().collect();
        prop_assert_eq!(tree.entries_quiescent(), entries);
    }

    #[test]
    fn from_entries_matches_individual_inserts(keys in prop::collection::vec(-100i64..100, 0..150)) {
        let bulk: LockFreeBst<i64> = LockFreeBst::from_entries(keys.iter().map(|&k| (k, ())));
        let incremental: LockFreeBst<i64> = LockFreeBst::new();
        for &k in &keys {
            incremental.insert(k, ());
        }
        prop_assert_eq!(bulk.entries_quiescent(), incremental.entries_quiescent());
        prop_assert_eq!(bulk.len(), incremental.len());
        bulk.check_invariants();
        incremental.check_invariants();
    }

    #[test]
    fn count_equals_collect_len(keys in prop::collection::vec(-200i64..200, 0..200),
                                ranges in prop::collection::vec((-250i64..250, -250i64..250), 1..20)) {
        let tree: LockFreeBst<i64> = LockFreeBst::from_entries(keys.iter().map(|&k| (k, ())));
        for &(a, b) in &ranges {
            let (min, max) = (a.min(b), a.max(b));
            prop_assert_eq!(tree.count(min, max), tree.collect_range(min, max).len() as u64);
        }
    }
}

/// A deterministic concurrent smoke test kept out of the proptest macro so it
/// runs exactly once: threads hammer a small key range, then the quiescent
/// tree must be internally consistent.
#[test]
fn concurrent_mixed_workload_leaves_consistent_tree() {
    use std::sync::Arc;

    const THREADS: usize = 3;
    const OPS: usize = 3_000;
    const RANGE: u64 = 128;

    let tree: Arc<LockFreeBst<i64>> = Arc::new(LockFreeBst::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut state = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..OPS {
                    let key = (next() % RANGE) as i64;
                    match next() % 4 {
                        0 | 1 => {
                            tree.insert(key, ());
                        }
                        2 => {
                            tree.remove(&key);
                        }
                        _ => {
                            // Range queries run concurrently with updates and
                            // must never panic or return out-of-range keys.
                            let width = (next() % 32) as i64;
                            for (k, _) in tree.collect_range(key, key + width) {
                                assert!(k >= key && k <= key + width);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    tree.check_invariants();
    assert_eq!(tree.entries_quiescent().len() as u64, tree.len());
}
