//! Workload generation and measurement harness for the paper's evaluation.
//!
//! The paper's experiments (§III) are throughput measurements: `T` threads
//! hammer a pre-filled tree with a fixed operation mix for a fixed wall-clock
//! interval, and each plotted point is the average of several runs. This
//! crate reproduces that methodology:
//!
//! * [`adapter`] — a single [`adapter::ConcurrentSet`] interface provided
//!   by one blanket impl over the `wft-api` trait family, so every backend
//!   in the workspace (and any future one implementing `PointMap` +
//!   `RangeRead`) slots into the experiments without adapter code;
//! * [`spec`] — declarative workload descriptions matching the paper's three
//!   benchmarks (read-heavy `contains`, insert-delete, successful-insert)
//!   plus the range-query mixes used by the additional experiments;
//! * [`harness`] — the timed multi-threaded throughput runner with prefill,
//!   warm-up, repetition and aggregation;
//! * [`report`] — plain-text and CSV table emitters used by the `figures`
//!   binary to print one table per figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapter;
pub mod harness;
pub mod report;
pub mod spec;

pub use adapter::{ConcurrentSet, TreeImpl};
pub use harness::{
    merged_latency, run_experiment, run_once, timed_run, ExperimentConfig, RunResult, Summary,
    LATENCY_SAMPLE, WATCHDOG_GRACE,
};
pub use report::{render_csv, render_table, FigureRow};
pub use spec::{KeyDistribution, OperationMix, Prefill, WorkloadSpec};
