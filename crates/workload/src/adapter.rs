//! A uniform interface over every tree implementation in the workspace.
//!
//! The benchmark harness measures seven structures under identical
//! workloads:
//!
//! * the paper's wait-free tree (lock-free root queue),
//! * the same tree with the wait-free root queue of Lemma 1,
//! * the persistent path-copying baseline (the paper's competitor),
//! * the coarse-grained lock baseline,
//! * the lock-free external BST whose range queries are linear in the range
//!   width (the "linear-time solutions" class of prior work),
//! * the wait-free binary trie (the same helping scheme with bit-routing),
//! * the range-partitioned sharded store.
//!
//! All of them are driven through [`ConcurrentSet`], instantiated for the
//! paper's benchmark domain: 64-bit integer keys, unit values, subtree-size
//! augmentation. [`ConcurrentSet`] itself is implemented **once**, as a
//! blanket impl over the `wft-api` trait family — the harness has no
//! per-implementation code at all, so a new backend only has to implement
//! [`PointMap`] + [`RangeRead`] to appear in every experiment, table and
//! lincheck suite.

use std::sync::Arc;

use wft_api::{PointMap, RangeRead, RangeScan, RangeSpec, ScanConsistency, SnapshotRead};
use wft_core::{ReadPath, RootQueueKind, TreeConfig, WaitFreeTree};
use wft_durable::{DurableStore, FaultyStorage, ScratchDir};
use wft_lockbased::LockedRangeTree;
use wft_lockfree::LockFreeBst;
use wft_persistent::PersistentRangeTree;
use wft_store::{ShardedStore, StoreConfig};
use wft_trie::WaitFreeTrie;

/// The common operation surface used by every experiment: the `wft-api`
/// trait family monomorphised to the paper's benchmark domain (`i64` keys,
/// unit values) and object-safe, so heterogeneous implementations share one
/// harness through `Arc<dyn ConcurrentSet>`.
pub trait ConcurrentSet: Send + Sync + 'static {
    /// Inserts `key`; returns `true` if it was absent.
    fn insert(&self, key: i64) -> bool;
    /// Upserts `key` (the atomic replace); returns `true` if it was already
    /// present.
    fn replace(&self, key: i64) -> bool;
    /// Removes `key`; returns `true` if it was present.
    fn remove(&self, key: i64) -> bool;
    /// Returns `true` if `key` is present.
    fn contains(&self, key: i64) -> bool;
    /// Number of keys in `[min, max]` via the aggregate range query.
    fn count(&self, min: i64, max: i64) -> u64;
    /// Number of keys in `[min, max]` computed the pre-existing way:
    /// `collect(min, max).len()` — linear in the range size.
    fn count_via_collect(&self, min: i64, max: i64) -> u64;
    /// Counts of `[a_min, a_max]` and `[b_min, b_max]` answered from **one
    /// snapshot** (`wft_api::SnapshotRead`): the pair is mutually
    /// consistent — both counts describe the same instant.
    fn snapshot_count_pair(&self, a_min: i64, a_max: i64, b_min: i64, b_max: i64) -> (u64, u64);
    /// Drains one streaming cursor over `[min, max]` in `chunk`-sized
    /// chunks (`wft_api::RangeScan`), returning the number of entries
    /// yielded and whether the drain stayed a single snapshot
    /// (`ScanConsistency::Snapshot`).
    fn chunked_scan_count(&self, min: i64, max: i64, chunk: usize) -> (u64, bool);
    /// Drains streaming cursors over `[min, max]` in `chunk`-sized chunks
    /// until one completes as a single snapshot
    /// (`wft_api::RangeScan::scan_snapshot`), returning its keys — the
    /// paginated equivalent of one `collect_range`, which is exactly what
    /// the linearizability checker verifies it against.
    fn chunked_scan_snapshot(&self, min: i64, max: i64, chunk: usize) -> Vec<i64>;
    /// Toggles `key`'s membership through one `StoreOp::Patch`
    /// read-modify-write (present → removed, absent → inserted); returns
    /// whether the key is present afterwards. Atomic only where
    /// [`TreeImpl::patch_is_atomic`] says so.
    fn patch_toggle(&self, key: i64) -> bool;
    /// Insert-if-absent through `StoreOp::CompareAndSet { expect: None }`;
    /// returns whether the conditional write applied. Atomic only where
    /// [`TreeImpl::patch_is_atomic`] says so.
    fn cas_insert(&self, key: i64) -> bool;
    /// One two-op batch — `remove(a)` + `insert(b)` — through
    /// [`wft_api::BatchApply`]; returns (`a` removed, `b` inserted).
    /// Requires `a != b` (the validator rejects duplicate mutation keys).
    /// All-or-nothing against concurrent readers only where
    /// [`TreeImpl::batch_is_atomic`] says so.
    fn batch_move(&self, a: i64, b: i64) -> (bool, bool);
    /// Number of keys currently stored.
    fn len(&self) -> u64;
    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// One [`wft_obs::MetricsSnapshot`] of the implementation's counters
    /// and gauges (every backend implements [`wft_obs::MetricsSource`]).
    /// The harness samples this around measurement windows and the watchdog
    /// dumps it when workers fail to stop.
    fn metrics_snapshot(&self) -> wft_obs::MetricsSnapshot;
}

impl<T> ConcurrentSet for T
where
    T: PointMap<i64, ()>
        + RangeRead<i64, ()>
        + SnapshotRead<i64, ()>
        + RangeScan<i64, ()>
        + wft_api::BatchApply<i64, ()>
        + wft_obs::MetricsSource
        + 'static,
{
    fn insert(&self, key: i64) -> bool {
        PointMap::insert(self, key, ()).is_applied()
    }
    fn replace(&self, key: i64) -> bool {
        PointMap::replace(self, key, ()).displaced_existing()
    }
    fn remove(&self, key: i64) -> bool {
        PointMap::remove(self, &key).is_applied()
    }
    fn contains(&self, key: i64) -> bool {
        PointMap::contains(self, &key)
    }
    fn count(&self, min: i64, max: i64) -> u64 {
        RangeRead::count(self, RangeSpec::inclusive(min, max))
    }
    fn count_via_collect(&self, min: i64, max: i64) -> u64 {
        RangeRead::collect_range(self, RangeSpec::inclusive(min, max)).len() as u64
    }
    fn snapshot_count_pair(&self, a_min: i64, a_max: i64, b_min: i64, b_max: i64) -> (u64, u64) {
        let counts = SnapshotRead::snapshot_counts(
            self,
            &[
                RangeSpec::inclusive(a_min, a_max),
                RangeSpec::inclusive(b_min, b_max),
            ],
        );
        (counts[0], counts[1])
    }
    fn chunked_scan_count(&self, min: i64, max: i64, chunk: usize) -> (u64, bool) {
        let (entries, consistency) =
            RangeScan::scan_collect(self, RangeSpec::inclusive(min, max), chunk);
        (
            entries.len() as u64,
            consistency == ScanConsistency::Snapshot,
        )
    }
    fn chunked_scan_snapshot(&self, min: i64, max: i64, chunk: usize) -> Vec<i64> {
        RangeScan::scan_snapshot(self, RangeSpec::inclusive(min, max), chunk)
            .into_iter()
            .map(|(k, ())| k)
            .collect()
    }
    fn patch_toggle(&self, key: i64) -> bool {
        fn toggle(current: Option<()>) -> Option<()> {
            match current {
                Some(()) => None,
                None => Some(()),
            }
        }
        PointMap::patch(self, key, toggle).is_some()
    }
    fn cas_insert(&self, key: i64) -> bool {
        PointMap::compare_and_set(self, key, None, ())
    }
    fn batch_move(&self, a: i64, b: i64) -> (bool, bool) {
        let outcomes = wft_api::BatchApply::apply_batch(
            self,
            vec![
                wft_api::StoreOp::Remove { key: a },
                wft_api::StoreOp::Insert { key: b, value: () },
            ],
        )
        .expect("a two-distinct-key batch validates");
        match (&outcomes[0], &outcomes[1]) {
            (wft_api::OpOutcome::Removed(removed), wft_api::OpOutcome::Inserted(inserted)) => {
                (*removed, *inserted)
            }
            other => unreachable!("Remove/Insert yield Removed/Inserted, got {other:?}"),
        }
    }
    fn len(&self) -> u64 {
        PointMap::len(self)
    }
    fn metrics_snapshot(&self) -> wft_obs::MetricsSnapshot {
        let mut out = wft_obs::MetricsSnapshot::new();
        wft_obs::MetricsSource::collect_metrics(self, &mut out);
        out
    }
}

/// Selects one of the tree implementations under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TreeImpl {
    /// The paper's wait-free tree with the lock-free root queue.
    WaitFree,
    /// The wait-free tree with the wait-free root queue (Lemma 1).
    WaitFreeWfRoot,
    /// The persistent path-copying baseline (the paper's competitor).
    Persistent,
    /// The global-lock baseline.
    Locked,
    /// The lock-free external BST whose only range query is `collect`
    /// (linear-time counts — the prior-work class of §I-A).
    LockFreeLinear,
    /// The wait-free binary trie: the same helping scheme with bit-routing
    /// (the paper's §IV future-work item).
    Trie,
    /// The range-partitioned sharded store (`wft-store`): one wait-free
    /// tree per keyspace slice, one shard per harness thread.
    Sharded,
    /// The wait-free tree with reads forced through the descriptor path
    /// (`ReadPath::Descriptor`). Not part of [`TreeImpl::ALL`]: used by the
    /// linearizability suites (reads are checked under both forced read
    /// paths) and by the read-fast-path benchmark as the "before" side.
    WaitFreeDescReads,
    /// The wait-free trie with reads forced through the descriptor path;
    /// same role as [`TreeImpl::WaitFreeDescReads`].
    TrieDescReads,
    /// The sharded store with every shard's reads forced through the
    /// descriptor path. Not part of [`TreeImpl::ALL`]: used by the
    /// linearizability suites so cross-shard snapshot reads are checked
    /// under both per-shard read paths.
    ShardedDescReads,
    /// The crash-safe store (`wft-durable`): the sharded store behind a
    /// group-commit write-ahead log in a self-cleaning scratch directory.
    /// Not part of [`TreeImpl::ALL`] — every write pays an `fsync`, so it
    /// is benchmarked by the dedicated durability bench rather than
    /// alongside the in-memory structures.
    Durable,
    /// The crash-safe store over fault-injected storage: a
    /// [`wft_durable::FaultyStorage`] drizzles transient I/O errors over
    /// the WAL so harness runs exercise the retry/backoff path. Not part
    /// of [`TreeImpl::ALL`] — used by the chaos bench and soak suites.
    DurableFaulty,
}

impl TreeImpl {
    /// All implementations, in the order tables are printed.
    pub const ALL: [TreeImpl; 7] = [
        TreeImpl::WaitFree,
        TreeImpl::WaitFreeWfRoot,
        TreeImpl::Persistent,
        TreeImpl::Locked,
        TreeImpl::LockFreeLinear,
        TreeImpl::Trie,
        TreeImpl::Sharded,
    ];

    /// The implementations the paper itself evaluates (Figures 7–9).
    pub const PAPER: [TreeImpl; 2] = [TreeImpl::WaitFree, TreeImpl::Persistent];

    /// Short, stable display name used in tables and CSV.
    pub fn name(&self) -> &'static str {
        match self {
            TreeImpl::WaitFree => "wait-free-tree",
            TreeImpl::WaitFreeWfRoot => "wait-free-tree(wf-root)",
            TreeImpl::Persistent => "persistent-tree",
            TreeImpl::Locked => "locked-tree",
            TreeImpl::LockFreeLinear => "lock-free-bst(linear)",
            TreeImpl::Trie => "wait-free-trie",
            TreeImpl::Sharded => "sharded-store",
            TreeImpl::WaitFreeDescReads => "wait-free-tree(desc-reads)",
            TreeImpl::TrieDescReads => "wait-free-trie(desc-reads)",
            TreeImpl::ShardedDescReads => "sharded-store(desc-reads)",
            TreeImpl::Durable => "durable-store",
            TreeImpl::DurableFaulty => "durable-store(faulty)",
        }
    }

    /// `true` when the implementation's `replace` is a single linearizable
    /// operation. The lock-free linear baseline composes
    /// `remove` + `insert` (its class has no native upsert), so histories
    /// mixing `replace` with concurrent reads are not checked against it.
    pub fn replace_is_atomic(&self) -> bool {
        !matches!(self, TreeImpl::LockFreeLinear)
    }

    /// `true` when `apply_batch` commits all-or-nothing with respect to
    /// concurrent readers. The sharded store family publishes batches at
    /// the front behind a commit gate; the durable stores sequence every
    /// batch through the journal onto that same store. Single trees apply
    /// batch ops serially — a concurrent range read can land between two
    /// of them — so multi-key batch histories are only checked against the
    /// store family.
    pub fn batch_is_atomic(&self) -> bool {
        matches!(
            self,
            TreeImpl::Sharded
                | TreeImpl::ShardedDescReads
                | TreeImpl::Durable
                | TreeImpl::DurableFaulty
        )
    }

    /// `true` when `patch` / `compare_and_set` are single linearizable
    /// read-modify-writes. The store family routes both through its
    /// transactional single-op batch path (resolved under the commit gate
    /// or on the journal's sequencer thread); everything else inherits the
    /// `wft-api` get-then-write defaults, which lose updates under
    /// contention by design.
    pub fn patch_is_atomic(&self) -> bool {
        self.batch_is_atomic()
    }

    /// Instantiates the implementation pre-filled with `entries`.
    ///
    /// Every arm returns the structure as a `dyn ConcurrentSet` through the
    /// blanket impl over `PointMap` + `RangeRead` — there is no
    /// per-implementation adapter code to keep in sync.
    pub fn build(&self, entries: &[i64], max_threads: usize) -> Arc<dyn ConcurrentSet> {
        let pairs = entries.iter().map(|&k| (k, ()));
        match self {
            TreeImpl::WaitFree => Arc::new(WaitFreeTree::<i64>::from_entries_with_config(
                pairs,
                TreeConfig::default(),
            )),
            TreeImpl::WaitFreeWfRoot => {
                let config = TreeConfig {
                    root_queue: RootQueueKind::WaitFree {
                        slots: max_threads.max(1) * 2,
                    },
                    ..TreeConfig::default()
                };
                Arc::new(WaitFreeTree::<i64>::from_entries_with_config(pairs, config))
            }
            TreeImpl::Persistent => Arc::new(PersistentRangeTree::<i64>::from_entries(pairs)),
            TreeImpl::Locked => Arc::new(LockedRangeTree::<i64>::from_entries(pairs)),
            TreeImpl::LockFreeLinear => Arc::new(LockFreeBst::<i64>::from_entries(pairs)),
            TreeImpl::Trie => Arc::new(WaitFreeTrie::<i64>::from_entries(pairs)),
            TreeImpl::Sharded => {
                Arc::new(ShardedStore::<i64>::from_entries(pairs, max_threads.max(1)))
            }
            TreeImpl::WaitFreeDescReads => {
                let config = TreeConfig {
                    read_path: ReadPath::Descriptor,
                    ..TreeConfig::default()
                };
                Arc::new(WaitFreeTree::<i64>::from_entries_with_config(pairs, config))
            }
            TreeImpl::TrieDescReads => Arc::new(WaitFreeTrie::<i64>::from_entries_with_read_path(
                pairs,
                ReadPath::Descriptor,
            )),
            TreeImpl::ShardedDescReads => {
                let config = StoreConfig {
                    tree: TreeConfig {
                        read_path: ReadPath::Descriptor,
                        ..TreeConfig::default()
                    },
                    ..StoreConfig::default()
                };
                Arc::new(ShardedStore::<i64>::from_entries_with_config(
                    pairs,
                    max_threads.max(1),
                    config,
                ))
            }
            TreeImpl::Durable => {
                let scratch = ScratchDir::new("workload");
                let config = wft_durable::DurableConfig {
                    shards: max_threads.max(1),
                    ..wft_durable::DurableConfig::default()
                };
                let store = DurableStore::<i64>::open_with_config(scratch.path(), config)
                    .expect("opening durable store in scratch dir");
                store
                    .apply_durable(
                        entries
                            .iter()
                            .map(|&k| wft_api::StoreOp::Insert { key: k, value: () })
                            .collect(),
                    )
                    .expect("prefilling durable store");
                Arc::new(DurableSet {
                    store,
                    _scratch: scratch,
                })
            }
            TreeImpl::DurableFaulty => {
                let scratch = ScratchDir::new("workload-faulty");
                let config = wft_durable::DurableConfig {
                    shards: max_threads.max(1),
                    ..wft_durable::DurableConfig::default()
                };
                let faulty = FaultyStorage::over_fs();
                let store = DurableStore::<i64>::open_with_storage(
                    scratch.path(),
                    config,
                    Arc::new(faulty.clone()),
                )
                .expect("opening fault-injected durable store in scratch dir");
                store
                    .apply_durable(
                        entries
                            .iter()
                            .map(|&k| wft_api::StoreOp::Insert { key: k, value: () })
                            .collect(),
                    )
                    .expect("prefilling durable store");
                // Drizzle starts only after the prefill, so setup never
                // trips; from here every 64th storage op fails once
                // transiently and the journal's retry path absorbs it.
                faulty.every(64, std::io::ErrorKind::Interrupted);
                Arc::new(DurableSet {
                    store,
                    _scratch: scratch,
                })
            }
        }
    }
}

/// Keeps the scratch directory alive exactly as long as the durable store
/// built over it, so the WAL cleans itself up when the harness drops the
/// set. Delegates [`ConcurrentSet`] to the store's own blanket impl.
struct DurableSet {
    store: DurableStore<i64>,
    _scratch: ScratchDir,
}

impl ConcurrentSet for DurableSet {
    fn insert(&self, key: i64) -> bool {
        ConcurrentSet::insert(&self.store, key)
    }
    fn replace(&self, key: i64) -> bool {
        ConcurrentSet::replace(&self.store, key)
    }
    fn remove(&self, key: i64) -> bool {
        ConcurrentSet::remove(&self.store, key)
    }
    fn contains(&self, key: i64) -> bool {
        ConcurrentSet::contains(&self.store, key)
    }
    fn count(&self, min: i64, max: i64) -> u64 {
        ConcurrentSet::count(&self.store, min, max)
    }
    fn count_via_collect(&self, min: i64, max: i64) -> u64 {
        ConcurrentSet::count_via_collect(&self.store, min, max)
    }
    fn snapshot_count_pair(&self, a_min: i64, a_max: i64, b_min: i64, b_max: i64) -> (u64, u64) {
        ConcurrentSet::snapshot_count_pair(&self.store, a_min, a_max, b_min, b_max)
    }
    fn chunked_scan_count(&self, min: i64, max: i64, chunk: usize) -> (u64, bool) {
        ConcurrentSet::chunked_scan_count(&self.store, min, max, chunk)
    }
    fn chunked_scan_snapshot(&self, min: i64, max: i64, chunk: usize) -> Vec<i64> {
        ConcurrentSet::chunked_scan_snapshot(&self.store, min, max, chunk)
    }
    fn patch_toggle(&self, key: i64) -> bool {
        ConcurrentSet::patch_toggle(&self.store, key)
    }
    fn cas_insert(&self, key: i64) -> bool {
        ConcurrentSet::cas_insert(&self.store, key)
    }
    fn batch_move(&self, a: i64, b: i64) -> (bool, bool) {
        ConcurrentSet::batch_move(&self.store, a, b)
    }
    fn len(&self) -> u64 {
        ConcurrentSet::len(&self.store)
    }
    fn metrics_snapshot(&self) -> wft_obs::MetricsSnapshot {
        ConcurrentSet::metrics_snapshot(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(set: &dyn ConcurrentSet) {
        assert!(set.insert(1_000_001));
        assert!(!set.insert(1_000_001));
        assert!(set.contains(1_000_001));
        assert!(set.replace(1_000_001), "replace of a present key overwrote");
        assert!(set.remove(1_000_001));
        assert!(!set.remove(1_000_001));
        assert!(!set.replace(1_000_002), "replace of an absent key inserted");
        assert!(set.remove(1_000_002));
        assert_eq!(set.count(0, 9), 10);
        assert_eq!(set.count_via_collect(0, 9), 10);
        assert_eq!(set.count(9, 0), 0, "inverted range counts zero");
        assert_eq!(set.count_via_collect(9, 0), 0);
        // Streaming scans: a chunked drain covers the same range, and the
        // retrying driver produces the full sorted listing.
        let (scanned, _snapshot) = set.chunked_scan_count(0, 99, 7);
        assert_eq!(scanned, 100);
        assert_eq!(
            set.chunked_scan_snapshot(10, 19, 3),
            (10..=19).collect::<Vec<_>>()
        );
        assert!(set.chunked_scan_snapshot(9, 0, 4).is_empty());
        // The transactional surface: cas-insert, toggle, atomic move.
        assert!(set.cas_insert(1_000_003), "absent key cas-inserts");
        assert!(!set.cas_insert(1_000_003), "present key misses expect=None");
        assert!(!set.patch_toggle(1_000_003), "toggle removes a present key");
        assert!(
            set.patch_toggle(1_000_003),
            "toggle re-inserts an absent key"
        );
        assert_eq!(set.batch_move(1_000_003, 1_000_004), (true, true));
        assert_eq!(set.batch_move(1_000_003, 1_000_004), (false, false));
        assert!(set.remove(1_000_004));
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn all_implementations_expose_identical_behaviour() {
        let prefill: Vec<i64> = (0..100).collect();
        for imp in TreeImpl::ALL {
            let set = imp.build(&prefill, 4);
            exercise(set.as_ref());
        }
    }

    #[test]
    fn durable_store_speaks_the_harness_interface() {
        let prefill: Vec<i64> = (0..100).collect();
        let set = TreeImpl::Durable.build(&prefill, 2);
        exercise(set.as_ref());
        let metrics = set.metrics_snapshot();
        assert!(
            metrics.counter("durable_wal_appends").unwrap_or(0) > 0,
            "durable writes go through the log"
        );
    }

    #[test]
    fn faulty_durable_store_absorbs_the_drizzle() {
        let prefill: Vec<i64> = (0..100).collect();
        let set = TreeImpl::DurableFaulty.build(&prefill, 2);
        exercise(set.as_ref());
        // Enough writes to guarantee several periodic faults fire.
        for k in 2_000..2_400 {
            assert!(set.insert(k));
        }
        let metrics = set.metrics_snapshot();
        assert!(
            metrics.counter("durable_io_retries").unwrap_or(0) > 0,
            "the drizzle was really injected and retried"
        );
        assert_eq!(
            metrics.gauge("durable_degraded"),
            Some(0),
            "transient faults never degrade the store"
        );
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = TreeImpl::ALL.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TreeImpl::ALL.len());
    }
}
