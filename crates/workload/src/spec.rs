//! Declarative workload specifications.
//!
//! A [`WorkloadSpec`] describes one of the paper's experiments: how the tree
//! is pre-filled, from which key distribution operations draw their
//! arguments, and with which probabilities the operation types are mixed.
//! The three specs used in §III are provided as constructors
//! ([`WorkloadSpec::contains_benchmark`], [`WorkloadSpec::insert_delete`],
//! [`WorkloadSpec::successful_insert`]), together with the range-query mixes
//! used by the additional experiments in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the tree is populated before measurement starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prefill {
    /// Insert every key of the workload's key range independently with the
    /// given probability (the paper pre-fills with probability 1/2).
    Bernoulli {
        /// Inclusion probability.
        probability: f64,
    },
    /// Insert exactly `count` keys drawn uniformly at random from the whole
    /// `i64` range (the successful-insert benchmark pre-fills 10^6 random
    /// integers).
    RandomCount {
        /// Number of random keys.
        count: usize,
    },
    /// Start from an empty tree.
    Empty,
}

/// The distribution from which per-operation keys are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over the workload's `[1, key_range]` interval (contains and
    /// insert-delete benchmarks).
    UniformInRange,
    /// Uniform over the full 64-bit range (successful-insert benchmark: with
    /// a pre-fill of only 10^6 keys, collisions are vanishingly rare so
    /// essentially every insert succeeds).
    UniformFullRange,
}

/// Relative frequencies of the operation types (they need not sum to 1; they
/// are normalised).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationMix {
    /// Fraction of `contains` operations.
    pub contains: f64,
    /// Fraction of `insert` operations.
    pub insert: f64,
    /// Fraction of `remove` operations.
    pub remove: f64,
    /// Fraction of aggregate `count` range queries.
    pub count: f64,
    /// Fraction of `collect`-based counts (the linear-time baseline query).
    pub collect: f64,
    /// Fraction of snapshot reads: two subrange counts answered from one
    /// acquired snapshot front (`wft_api::SnapshotRead`).
    pub snapshot: f64,
    /// Fraction of streaming scans: one cursor drained over the range in
    /// bounded chunks (`wft_api::RangeScan`).
    pub scan: f64,
    /// Fraction of read-modify-write toggles: one `PointMap::patch` that
    /// flips the key's membership in a single atomic step
    /// (`ConcurrentSet::patch_toggle`).
    pub patch: f64,
    /// Fraction of two-key atomic batches: remove one key and insert
    /// another in one all-or-nothing commit
    /// (`ConcurrentSet::batch_move`).
    pub batch: f64,
}

impl OperationMix {
    fn total(&self) -> f64 {
        self.contains
            + self.insert
            + self.remove
            + self.count
            + self.collect
            + self.snapshot
            + self.scan
            + self.patch
            + self.batch
    }
}

/// A single benchmark workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name used in tables.
    pub name: &'static str,
    /// Keys used by `UniformInRange` draws: `[1, key_range]`.
    pub key_range: i64,
    /// Pre-fill policy.
    pub prefill: Prefill,
    /// Key distribution of the measured operations.
    pub distribution: KeyDistribution,
    /// Operation mix of the measured phase.
    pub mix: OperationMix,
    /// Width of range queries, as a fraction of `key_range` (only used when
    /// the mix contains `count`/`collect` operations).
    pub range_fraction: f64,
}

/// One concrete operation drawn from a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Membership test.
    Contains(i64),
    /// Insertion.
    Insert(i64),
    /// Removal.
    Remove(i64),
    /// Aggregate count over a range.
    Count(i64, i64),
    /// Collect-based count over a range.
    Collect(i64, i64),
    /// Two subrange counts `[a_min, a_max]` / `[b_min, b_max]` answered
    /// from one snapshot front.
    SnapshotCounts(i64, i64, i64, i64),
    /// One streaming cursor drained over `[min, max]` in chunks of the
    /// given size (`wft_api::RangeScan`).
    ChunkedScan(i64, i64, usize),
    /// One read-modify-write membership toggle, executed as a single
    /// atomic `PointMap::patch` step.
    Patch(i64),
    /// One two-key atomic batch: remove the first key and insert the
    /// second in one all-or-nothing commit. The keys are always distinct
    /// (a batch refuses duplicate mutation keys).
    AtomicBatch(i64, i64),
}

impl WorkloadSpec {
    /// Figure 7: read-heavy workload, 100% `contains`, keys uniform in
    /// `[1, 2·10^6]`, pre-filled with probability 1/2.
    pub fn contains_benchmark() -> Self {
        WorkloadSpec {
            name: "contains",
            key_range: 2_000_000,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: 1.0,
                insert: 0.0,
                remove: 0.0,
                count: 0.0,
                collect: 0.0,
                snapshot: 0.0,
                scan: 0.0,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction: 0.0,
        }
    }

    /// Figure 8: insert-delete workload, 50% insert / 50% remove on keys
    /// uniform in `[1, 2·10^6]`, pre-filled with probability 1/2 so roughly
    /// half the updates succeed.
    pub fn insert_delete() -> Self {
        WorkloadSpec {
            name: "insert-delete",
            key_range: 2_000_000,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: 0.0,
                insert: 0.5,
                remove: 0.5,
                count: 0.0,
                collect: 0.0,
                snapshot: 0.0,
                scan: 0.0,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction: 0.0,
        }
    }

    /// Figure 9: successful-insert workload, 100% inserts of keys drawn from
    /// the full 64-bit range over a tree pre-filled with 10^6 random keys,
    /// so essentially every insert succeeds.
    pub fn successful_insert() -> Self {
        WorkloadSpec {
            name: "successful-insert",
            key_range: 2_000_000,
            prefill: Prefill::RandomCount { count: 1_000_000 },
            distribution: KeyDistribution::UniformFullRange,
            mix: OperationMix {
                contains: 0.0,
                insert: 1.0,
                remove: 0.0,
                count: 0.0,
                collect: 0.0,
                snapshot: 0.0,
                scan: 0.0,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction: 0.0,
        }
    }

    /// Extra experiment E7: a mixed workload with updates, point reads and a
    /// given percentage of aggregate range queries of a given relative width.
    pub fn range_mix(count_percent: f64, range_fraction: f64) -> Self {
        let count = count_percent / 100.0;
        let rest = 1.0 - count;
        WorkloadSpec {
            name: "range-mix",
            key_range: 2_000_000,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: rest * 0.5,
                insert: rest * 0.25,
                remove: rest * 0.25,
                count,
                collect: 0.0,
                snapshot: 0.0,
                scan: 0.0,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction,
        }
    }

    /// Snapshot-consistency workload: a given percentage of snapshot reads
    /// (two subrange counts from one acquired front) over an
    /// insert/remove/contains background, used by the sharded-snapshot
    /// bench and smoke tests.
    pub fn snapshot_mix(snapshot_percent: f64, range_fraction: f64) -> Self {
        let snapshot = snapshot_percent / 100.0;
        let rest = 1.0 - snapshot;
        WorkloadSpec {
            name: "snapshot-mix",
            key_range: 2_000_000,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: rest * 0.5,
                insert: rest * 0.25,
                remove: rest * 0.25,
                count: 0.0,
                collect: 0.0,
                snapshot,
                scan: 0.0,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction,
        }
    }

    /// Streaming-scan workload: a given percentage of chunked cursor drains
    /// (`wft_api::RangeScan`, chunk size per the scan bench) over an
    /// insert/remove/contains background; used by the scan bench and smoke
    /// tests.
    pub fn scan_mix(scan_percent: f64, range_fraction: f64) -> Self {
        let scan = scan_percent / 100.0;
        let rest = 1.0 - scan;
        WorkloadSpec {
            name: "scan-mix",
            key_range: 2_000_000,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: rest * 0.5,
                insert: rest * 0.25,
                remove: rest * 0.25,
                count: 0.0,
                collect: 0.0,
                snapshot: 0.0,
                scan,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction,
        }
    }

    /// Transactional workload: a given percentage of logical ops — split
    /// evenly between `patch` read-modify-write toggles and two-key atomic
    /// batch moves — over an insert/remove/contains background; used by
    /// the batch bench and smoke tests.
    pub fn transactional_mix(transact_percent: f64) -> Self {
        let transact = transact_percent / 100.0;
        let rest = 1.0 - transact;
        WorkloadSpec {
            name: "transactional-mix",
            key_range: 2_000_000,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: rest * 0.5,
                insert: rest * 0.25,
                remove: rest * 0.25,
                count: 0.0,
                collect: 0.0,
                snapshot: 0.0,
                scan: 0.0,
                patch: transact * 0.5,
                batch: transact * 0.5,
            },
            range_fraction: 0.0,
        }
    }

    /// Extra experiment E4: pure aggregate range queries of a given relative
    /// width, used to compare `count` against `collect().len()`.
    pub fn count_only(key_range: i64, range_fraction: f64, via_collect: bool) -> Self {
        WorkloadSpec {
            name: if via_collect {
                "collect-count"
            } else {
                "agg-count"
            },
            key_range,
            prefill: Prefill::Bernoulli { probability: 0.5 },
            distribution: KeyDistribution::UniformInRange,
            mix: OperationMix {
                contains: 0.0,
                insert: 0.0,
                remove: 0.0,
                count: if via_collect { 0.0 } else { 1.0 },
                collect: if via_collect { 1.0 } else { 0.0 },
                snapshot: 0.0,
                scan: 0.0,
                patch: 0.0,
                batch: 0.0,
            },
            range_fraction,
        }
    }

    /// A smaller copy of the workload (narrower key range / pre-fill) used by
    /// quick CI runs and unit tests.
    pub fn scaled_down(mut self, key_range: i64) -> Self {
        self.key_range = key_range;
        if let Prefill::RandomCount { count } = &mut self.prefill {
            *count = (key_range / 2) as usize;
        }
        self
    }

    /// Generates the pre-fill key set for this workload.
    pub fn prefill_keys(&self, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.prefill {
            Prefill::Empty => Vec::new(),
            Prefill::Bernoulli { probability } => (1..=self.key_range)
                .filter(|_| rng.gen_bool(probability))
                .collect(),
            Prefill::RandomCount { count } => {
                let mut keys: Vec<i64> = (0..count).map(|_| rng.gen::<i64>()).collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            }
        }
    }

    /// Draws the next operation for a worker thread.
    pub fn next_op(&self, rng: &mut StdRng) -> Op {
        let total = self.mix.total();
        let mut roll = rng.gen_range(0.0..total);
        let key = match self.distribution {
            KeyDistribution::UniformInRange => rng.gen_range(1..=self.key_range),
            KeyDistribution::UniformFullRange => rng.gen::<i64>(),
        };
        if roll < self.mix.contains {
            return Op::Contains(key);
        }
        roll -= self.mix.contains;
        if roll < self.mix.insert {
            return Op::Insert(key);
        }
        roll -= self.mix.insert;
        if roll < self.mix.remove {
            return Op::Remove(key);
        }
        roll -= self.mix.remove;
        if roll < self.mix.patch {
            return Op::Patch(key);
        }
        roll -= self.mix.patch;
        if roll < self.mix.batch {
            // Atomic move: the drawn key out, an independently drawn one
            // in; nudge collisions apart so the batch always validates.
            let mut dst = match self.distribution {
                KeyDistribution::UniformInRange => rng.gen_range(1..=self.key_range),
                KeyDistribution::UniformFullRange => rng.gen::<i64>(),
            };
            if dst == key {
                dst = dst.wrapping_add(1);
            }
            return Op::AtomicBatch(key, dst);
        }
        roll -= self.mix.batch;
        let width = ((self.key_range as f64) * self.range_fraction).max(1.0) as i64;
        let lo = rng.gen_range(1..=self.key_range.saturating_sub(width).max(1));
        let hi = lo.saturating_add(width);
        if roll < self.mix.count {
            return Op::Count(lo, hi);
        }
        roll -= self.mix.count;
        if roll < self.mix.collect {
            return Op::Collect(lo, hi);
        }
        roll -= self.mix.collect;
        if roll < self.mix.snapshot {
            // Snapshot read: the drawn range plus a second independent
            // subrange, both answered from one front.
            let lo2 = rng.gen_range(1..=self.key_range.saturating_sub(width).max(1));
            return Op::SnapshotCounts(lo, hi, lo2, lo2.saturating_add(width));
        }
        // Streaming scan: drain the drawn range in bounded chunks (64 keys —
        // a typical page size relative to the range widths used here).
        Op::ChunkedScan(lo, hi, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_have_expected_shapes() {
        let contains = WorkloadSpec::contains_benchmark();
        assert_eq!(contains.key_range, 2_000_000);
        assert!((contains.mix.contains - 1.0).abs() < f64::EPSILON);

        let updates = WorkloadSpec::insert_delete();
        assert!((updates.mix.insert - 0.5).abs() < f64::EPSILON);
        assert!((updates.mix.remove - 0.5).abs() < f64::EPSILON);

        let inserts = WorkloadSpec::successful_insert();
        assert!(matches!(
            inserts.prefill,
            Prefill::RandomCount { count: 1_000_000 }
        ));
        assert_eq!(inserts.distribution, KeyDistribution::UniformFullRange);
    }

    #[test]
    fn prefill_bernoulli_hits_roughly_half_the_range() {
        let spec = WorkloadSpec::contains_benchmark().scaled_down(10_000);
        let keys = spec.prefill_keys(1);
        let frac = keys.len() as f64 / 10_000.0;
        assert!(
            (0.45..0.55).contains(&frac),
            "prefill fraction {frac} too far from 0.5"
        );
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be unique & sorted"
        );
    }

    #[test]
    fn prefill_is_deterministic_per_seed() {
        let spec = WorkloadSpec::insert_delete().scaled_down(5_000);
        assert_eq!(spec.prefill_keys(7), spec.prefill_keys(7));
        assert_ne!(spec.prefill_keys(7), spec.prefill_keys(8));
    }

    #[test]
    fn op_mix_respects_probabilities() {
        let spec = WorkloadSpec::range_mix(10.0, 0.01).scaled_down(10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 9];
        const N: usize = 20_000;
        for _ in 0..N {
            match spec.next_op(&mut rng) {
                Op::Contains(_) => counts[0] += 1,
                Op::Insert(_) => counts[1] += 1,
                Op::Remove(_) => counts[2] += 1,
                Op::Count(_, _) => counts[3] += 1,
                Op::Collect(_, _) => counts[4] += 1,
                Op::SnapshotCounts(..) => counts[5] += 1,
                Op::ChunkedScan(..) => counts[6] += 1,
                Op::Patch(_) => counts[7] += 1,
                Op::AtomicBatch(..) => counts[8] += 1,
            }
        }
        let frac = |i: usize| counts[i] as f64 / N as f64;
        assert!(
            (frac(0) - 0.45).abs() < 0.02,
            "contains fraction {}",
            frac(0)
        );
        assert!((frac(3) - 0.10).abs() < 0.02, "count fraction {}", frac(3));
        assert_eq!(counts[4], 0);
        assert_eq!(counts[5], 0, "range_mix draws no snapshot ops");
        assert_eq!(counts[6], 0, "range_mix draws no scan ops");
        assert_eq!(counts[7], 0, "range_mix draws no patch ops");
        assert_eq!(counts[8], 0, "range_mix draws no batch ops");
    }

    #[test]
    fn transactional_mix_draws_patch_and_batch_ops() {
        let spec = WorkloadSpec::transactional_mix(40.0).scaled_down(10_000);
        let mut rng = StdRng::seed_from_u64(23);
        let (mut patches, mut batches) = (0usize, 0usize);
        const N: usize = 20_000;
        for _ in 0..N {
            match spec.next_op(&mut rng) {
                Op::Patch(k) => {
                    patches += 1;
                    assert!(k >= 1);
                }
                Op::AtomicBatch(a, b) => {
                    batches += 1;
                    assert_ne!(a, b, "batch keys must be distinct");
                }
                _ => {}
            }
        }
        let frac = |n: usize| n as f64 / N as f64;
        assert!(
            (frac(patches) - 0.20).abs() < 0.02,
            "patch fraction {}",
            frac(patches)
        );
        assert!(
            (frac(batches) - 0.20).abs() < 0.02,
            "batch fraction {}",
            frac(batches)
        );
    }

    #[test]
    fn scan_mix_draws_chunked_scans() {
        let spec = WorkloadSpec::scan_mix(25.0, 0.05).scaled_down(10_000);
        let mut rng = StdRng::seed_from_u64(17);
        let mut scans = 0usize;
        const N: usize = 10_000;
        for _ in 0..N {
            if let Op::ChunkedScan(lo, hi, chunk) = spec.next_op(&mut rng) {
                scans += 1;
                assert!(lo <= hi && chunk > 0);
            }
        }
        let frac = scans as f64 / N as f64;
        assert!((frac - 0.25).abs() < 0.02, "scan fraction {frac}");
    }

    #[test]
    fn snapshot_mix_draws_snapshot_ops() {
        let spec = WorkloadSpec::snapshot_mix(20.0, 0.05).scaled_down(10_000);
        let mut rng = StdRng::seed_from_u64(13);
        let mut snapshots = 0usize;
        const N: usize = 10_000;
        for _ in 0..N {
            if let Op::SnapshotCounts(a_min, a_max, b_min, b_max) = spec.next_op(&mut rng) {
                snapshots += 1;
                assert!(a_min <= a_max && b_min <= b_max);
            }
        }
        let frac = snapshots as f64 / N as f64;
        assert!((frac - 0.20).abs() < 0.02, "snapshot fraction {frac}");
    }

    #[test]
    fn range_queries_stay_in_bounds() {
        let spec = WorkloadSpec::count_only(1_000, 0.1, false);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            if let Op::Count(lo, hi) = spec.next_op(&mut rng) {
                assert!(lo >= 1);
                assert!(hi >= lo);
                assert!(
                    hi - lo >= 100 - 1,
                    "width must match the requested fraction"
                );
            } else {
                panic!("count-only workload must only generate count ops");
            }
        }
    }

    #[test]
    fn successful_insert_keys_rarely_collide() {
        let spec = WorkloadSpec::successful_insert().scaled_down(100_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut keys = std::collections::HashSet::new();
        for _ in 0..10_000 {
            if let Op::Insert(k) = spec.next_op(&mut rng) {
                keys.insert(k);
            }
        }
        assert!(
            keys.len() > 9_990,
            "full-range keys must be essentially unique"
        );
    }
}
