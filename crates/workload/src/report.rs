//! Table and CSV emitters for experiment results.
//!
//! The paper presents its evaluation as throughput-vs-threads plots
//! (Figures 7–9). The `figures` binary reproduces each plot as a table with
//! one row per (thread count, implementation) point — the same data the
//! figure encodes — plus a machine-readable CSV/JSON dump for external
//! plotting.

use serde::{Deserialize, Serialize};

/// One data point of a figure: a (workload, implementation, threads) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Workload name (e.g. `contains`, `insert-delete`).
    pub workload: String,
    /// Implementation name (e.g. `wait-free-tree`).
    pub implementation: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Mean throughput in operations per second.
    pub ops_per_sec: f64,
    /// Minimum observed throughput across runs.
    pub min_ops_per_sec: f64,
    /// Maximum observed throughput across runs.
    pub max_ops_per_sec: f64,
    /// Number of averaged runs.
    pub runs: usize,
    /// Median per-op latency (ns) over the runs' merged sampled histograms
    /// (see `harness::LATENCY_SAMPLE`; bucketed, so quantiles carry the
    /// histogram's <25 % bucket-width error).
    pub p50_ns: u64,
    /// 99th-percentile per-op latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile per-op latency (ns).
    pub p999_ns: u64,
}

/// Renders rows as an aligned plain-text table (one line per row).
pub fn render_table(title: &str, rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<18} {:<26} {:>8} {:>16} {:>14} {:>14} {:>10} {:>10} {:>10}\n",
        "workload",
        "implementation",
        "threads",
        "ops/s (mean)",
        "min",
        "max",
        "p50(ns)",
        "p99(ns)",
        "p999(ns)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<18} {:<26} {:>8} {:>16.0} {:>14.0} {:>14.0} {:>10} {:>10} {:>10}\n",
            row.workload,
            row.implementation,
            row.threads,
            row.ops_per_sec,
            row.min_ops_per_sec,
            row.max_ops_per_sec,
            row.p50_ns,
            row.p99_ns,
            row.p999_ns
        ));
    }
    out
}

/// Renders rows as CSV with a header line.
pub fn render_csv(rows: &[FigureRow]) -> String {
    let mut out = String::from(
        "workload,implementation,threads,ops_per_sec,min_ops_per_sec,max_ops_per_sec,runs,p50_ns,p99_ns,p999_ns\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{:.2},{:.2},{:.2},{},{},{},{}\n",
            row.workload,
            row.implementation,
            row.threads,
            row.ops_per_sec,
            row.min_ops_per_sec,
            row.max_ops_per_sec,
            row.runs,
            row.p50_ns,
            row.p99_ns,
            row.p999_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<FigureRow> {
        vec![
            FigureRow {
                workload: "contains".into(),
                implementation: "wait-free-tree".into(),
                threads: 1,
                ops_per_sec: 123456.0,
                min_ops_per_sec: 120000.0,
                max_ops_per_sec: 130000.0,
                runs: 5,
                p50_ns: 700,
                p99_ns: 4_000,
                p999_ns: 20_000,
            },
            FigureRow {
                workload: "contains".into(),
                implementation: "persistent-tree".into(),
                threads: 1,
                ops_per_sec: 150000.0,
                min_ops_per_sec: 149000.0,
                max_ops_per_sec: 151000.0,
                runs: 5,
                p50_ns: 550,
                p99_ns: 3_500,
                p999_ns: 15_000,
            },
        ]
    }

    #[test]
    fn table_contains_all_rows_and_title() {
        let text = render_table("Figure 7", &sample_rows());
        assert!(text.contains("== Figure 7 =="));
        assert!(text.contains("wait-free-tree"));
        assert!(text.contains("persistent-tree"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn csv_has_header_plus_one_line_per_row() {
        let csv = render_csv(&sample_rows());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("workload,implementation"));
        assert!(lines[1].contains("123456.00"));
    }

    #[test]
    fn rows_serialize_to_json() {
        let json = serde_json::to_string(&sample_rows()).unwrap();
        let back: Vec<FigureRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].implementation, "wait-free-tree");
    }
}
