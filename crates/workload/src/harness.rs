//! The timed throughput harness.
//!
//! Mirrors the paper's methodology (§III): build a pre-filled tree, start `T`
//! worker threads behind a barrier, let them issue operations drawn from the
//! workload for a fixed wall-clock interval, stop, and report the total
//! number of completed operations. Each configuration is repeated several
//! times and the runs are averaged.
//!
//! The intervals and repetition counts are parameters: the paper uses 10 s ×
//! 5 runs on a 24-core machine; the defaults here are much shorter so the
//! full figure suite completes in minutes on a laptop or CI runner (the
//! *relative* comparison between implementations is what the reproduction
//! targets — see EXPERIMENTS.md).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::adapter::{ConcurrentSet, TreeImpl};
use crate::spec::{Op, WorkloadSpec};

/// Parameters of one experiment (a full sweep over thread counts and
/// implementations for one workload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Thread counts to sweep (the paper sweeps 1..24).
    pub threads: Vec<usize>,
    /// Measurement interval per run.
    pub duration: Duration,
    /// Number of runs averaged per point (the paper uses 5).
    pub runs: usize,
    /// Base RNG seed (varied per run for independence).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            threads: vec![1, 2, 4],
            duration: Duration::from_millis(300),
            runs: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// The outcome of a single timed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Total operations completed across all threads.
    pub total_ops: u64,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Per-operation latency distribution, merged across worker threads.
    /// Sampled — each worker times one in [`LATENCY_SAMPLE`] operations —
    /// so `latency.count ≈ total_ops / LATENCY_SAMPLE`; the *distribution*
    /// is unbiased because sampling is by operation index, not duration.
    pub latency: wft_obs::HistogramSnapshot,
}

/// Aggregated results of the repeated runs of one configuration point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    /// Mean throughput (ops/s) across runs.
    pub mean_ops_per_sec: f64,
    /// Minimum observed throughput.
    pub min_ops_per_sec: f64,
    /// Maximum observed throughput.
    pub max_ops_per_sec: f64,
    /// Number of runs aggregated.
    pub runs: usize,
    /// Median per-op latency (ns) over the runs' merged histograms.
    pub p50_ns: u64,
    /// 99th-percentile per-op latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile per-op latency (ns).
    pub p999_ns: u64,
}

/// One in this many operations is timed into the latency histogram
/// (per worker, by operation index). At 8 the amortised cost is two
/// `Instant::now()` calls per 8 ops — within measurement noise — while a
/// 300 ms window still collects tens of thousands of samples per thread.
pub const LATENCY_SAMPLE: u64 = 8;

/// How long [`timed_run`] waits for workers to exit after raising the stop
/// flag before declaring them wedged and dumping diagnostics (the workload
/// watchdog): a backend retry loop that livelocks shows up here as a
/// [`wft_obs::MetricsSnapshot`] plus the drained global
/// [`wft_obs::TraceRing`] timeline on stderr instead of a silent hang.
pub const WATCHDOG_GRACE: Duration = Duration::from_secs(10);

/// Executes one timed run of `spec` with `threads` workers against a freshly
/// built instance of `imp`.
pub fn run_once(
    imp: TreeImpl,
    spec: &WorkloadSpec,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let prefill = spec.prefill_keys(seed);
    let set = imp.build(&prefill, threads);
    timed_run(set, spec, threads, duration, seed)
}

/// Executes one timed run against an already-built structure (used by tests
/// and by experiments that reuse one tree across phases).
pub fn timed_run(
    set: Arc<dyn ConcurrentSet>,
    spec: &WorkloadSpec,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let done = Arc::clone(&done);
        let spec = *spec;
        handles.push(std::thread::spawn(move || {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)));
            let latency = wft_obs::LatencyHistogram::new();
            barrier.wait();
            let mut ops = 0u64;
            // Check the stop flag every few operations to keep the overhead
            // of the flag itself negligible.
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..32 {
                    let op = spec.next_op(&mut rng);
                    // Time one in LATENCY_SAMPLE ops (by index, so the
                    // sample is duration-unbiased); the other ops pay no
                    // clock reads at all.
                    let timed_at = ops.is_multiple_of(LATENCY_SAMPLE).then(Instant::now);
                    match op {
                        Op::Contains(k) => {
                            std::hint::black_box(set.contains(k));
                        }
                        Op::Insert(k) => {
                            std::hint::black_box(set.insert(k));
                        }
                        Op::Remove(k) => {
                            std::hint::black_box(set.remove(k));
                        }
                        Op::Count(lo, hi) => {
                            std::hint::black_box(set.count(lo, hi));
                        }
                        Op::Collect(lo, hi) => {
                            std::hint::black_box(set.count_via_collect(lo, hi));
                        }
                        Op::SnapshotCounts(a_min, a_max, b_min, b_max) => {
                            std::hint::black_box(
                                set.snapshot_count_pair(a_min, a_max, b_min, b_max),
                            );
                        }
                        Op::ChunkedScan(lo, hi, chunk) => {
                            std::hint::black_box(set.chunked_scan_count(lo, hi, chunk));
                        }
                        Op::Patch(k) => {
                            std::hint::black_box(set.patch_toggle(k));
                        }
                        Op::AtomicBatch(a, b) => {
                            std::hint::black_box(set.batch_move(a, b));
                        }
                    }
                    if let Some(at) = timed_at {
                        latency.observe(at.elapsed());
                    }
                    ops += 1;
                }
            }
            // ORDERING: Release orders the worker's final counter and latency writes
            // before the watchdog's Acquire `done` reads.
            done.fetch_add(1, Ordering::Release);
            (ops, latency.snapshot())
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    // The workload watchdog: workers only re-check the stop flag between
    // 32-op batches, so a backend whose retry loop livelocks (every op is
    // lock-free, not wait-free) would turn this join into a silent hang.
    // Give them a grace period; past it, dump the backend's metrics and the
    // global trace timeline to stderr — the post-mortem a wedged run needs.
    let deadline = Instant::now() + WATCHDOG_GRACE;
    // ORDERING: Acquire pairs with the workers' Release `done` bumps.
    while done.load(Ordering::Acquire) < threads && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    // ORDERING: as above.
    let stuck = threads - done.load(Ordering::Acquire).min(threads);
    if stuck > 0 {
        eprintln!(
            "[wft-workload watchdog] {stuck}/{threads} worker(s) still running \
             {WATCHDOG_GRACE:?} after the stop flag; dumping diagnostics"
        );
        eprint!("{}", set.metrics_snapshot().to_prometheus());
        eprint!("{}", wft_obs::trace::global().render_timeline());
    }
    let mut total_ops = 0u64;
    let mut latency = wft_obs::HistogramSnapshot::default();
    for handle in handles {
        let (ops, hist) = handle.join().unwrap();
        total_ops += ops;
        latency = latency.merged_with(&hist);
    }
    let elapsed = start.elapsed();
    RunResult {
        total_ops,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64(),
        latency,
    }
}

/// Repeats [`run_once`] `config.runs` times and aggregates the throughput.
pub fn run_experiment(
    imp: TreeImpl,
    spec: &WorkloadSpec,
    threads: usize,
    config: &ExperimentConfig,
) -> Summary {
    let mut results = Vec::with_capacity(config.runs);
    for run in 0..config.runs {
        results.push(run_once(
            imp,
            spec,
            threads,
            config.duration,
            config.seed.wrapping_add(run as u64),
        ));
    }
    let mean = results.iter().map(|r| r.ops_per_sec).sum::<f64>() / results.len() as f64;
    let min = results
        .iter()
        .map(|r| r.ops_per_sec)
        .fold(f64::INFINITY, f64::min);
    let max = results
        .iter()
        .map(|r| r.ops_per_sec)
        .fold(f64::NEG_INFINITY, f64::max);
    let latency = merged_latency(&results);
    Summary {
        mean_ops_per_sec: mean,
        min_ops_per_sec: min,
        max_ops_per_sec: max,
        runs: results.len(),
        p50_ns: latency.quantile(0.50),
        p99_ns: latency.quantile(0.99),
        p999_ns: latency.quantile(0.999),
    }
}

/// The runs' latency histograms merged into one distribution (bucket-wise
/// sums — log-bucketed histograms merge exactly).
pub fn merged_latency(results: &[RunResult]) -> wft_obs::HistogramSnapshot {
    results
        .iter()
        .fold(wft_obs::HistogramSnapshot::default(), |acc, r| {
            acc.merged_with(&r.latency)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_once_reports_progress_for_every_implementation() {
        let spec = WorkloadSpec::insert_delete().scaled_down(2_000);
        for imp in TreeImpl::ALL {
            let result = run_once(imp, &spec, 2, Duration::from_millis(50), 1);
            assert!(
                result.total_ops > 0,
                "{}: no operations completed",
                imp.name()
            );
            assert!(result.ops_per_sec > 0.0);
        }
    }

    #[test]
    fn transactional_workload_reports_progress_for_every_implementation() {
        let spec = WorkloadSpec::transactional_mix(50.0).scaled_down(2_000);
        for imp in TreeImpl::ALL {
            let result = run_once(imp, &spec, 2, Duration::from_millis(40), 2);
            assert!(
                result.total_ops > 0,
                "{}: no operations completed",
                imp.name()
            );
        }
    }

    #[test]
    fn read_heavy_workload_leaves_the_tree_unchanged() {
        let spec = WorkloadSpec::contains_benchmark().scaled_down(2_000);
        let prefill = spec.prefill_keys(3);
        let set = TreeImpl::WaitFree.build(&prefill, 2);
        let before = set.len();
        let _ = timed_run(Arc::clone(&set), &spec, 2, Duration::from_millis(50), 3);
        assert_eq!(
            set.len(),
            before,
            "contains-only workload must not modify the tree"
        );
    }

    #[test]
    fn experiment_aggregates_runs() {
        let spec = WorkloadSpec::contains_benchmark().scaled_down(1_000);
        let config = ExperimentConfig {
            threads: vec![1],
            duration: Duration::from_millis(20),
            runs: 3,
            seed: 9,
        };
        let summary = run_experiment(TreeImpl::Locked, &spec, 1, &config);
        assert_eq!(summary.runs, 3);
        assert!(summary.min_ops_per_sec <= summary.mean_ops_per_sec);
        assert!(summary.mean_ops_per_sec <= summary.max_ops_per_sec);
    }
}
