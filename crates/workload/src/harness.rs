//! The timed throughput harness.
//!
//! Mirrors the paper's methodology (§III): build a pre-filled tree, start `T`
//! worker threads behind a barrier, let them issue operations drawn from the
//! workload for a fixed wall-clock interval, stop, and report the total
//! number of completed operations. Each configuration is repeated several
//! times and the runs are averaged.
//!
//! The intervals and repetition counts are parameters: the paper uses 10 s ×
//! 5 runs on a 24-core machine; the defaults here are much shorter so the
//! full figure suite completes in minutes on a laptop or CI runner (the
//! *relative* comparison between implementations is what the reproduction
//! targets — see EXPERIMENTS.md).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::adapter::{ConcurrentSet, TreeImpl};
use crate::spec::{Op, WorkloadSpec};

/// Parameters of one experiment (a full sweep over thread counts and
/// implementations for one workload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Thread counts to sweep (the paper sweeps 1..24).
    pub threads: Vec<usize>,
    /// Measurement interval per run.
    pub duration: Duration,
    /// Number of runs averaged per point (the paper uses 5).
    pub runs: usize,
    /// Base RNG seed (varied per run for independence).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            threads: vec![1, 2, 4],
            duration: Duration::from_millis(300),
            runs: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// The outcome of a single timed run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunResult {
    /// Total operations completed across all threads.
    pub total_ops: u64,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
}

/// Aggregated results of the repeated runs of one configuration point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    /// Mean throughput (ops/s) across runs.
    pub mean_ops_per_sec: f64,
    /// Minimum observed throughput.
    pub min_ops_per_sec: f64,
    /// Maximum observed throughput.
    pub max_ops_per_sec: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Executes one timed run of `spec` with `threads` workers against a freshly
/// built instance of `imp`.
pub fn run_once(
    imp: TreeImpl,
    spec: &WorkloadSpec,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let prefill = spec.prefill_keys(seed);
    let set = imp.build(&prefill, threads);
    timed_run(set, spec, threads, duration, seed)
}

/// Executes one timed run against an already-built structure (used by tests
/// and by experiments that reuse one tree across phases).
pub fn timed_run(
    set: Arc<dyn ConcurrentSet>,
    spec: &WorkloadSpec,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let spec = *spec;
        handles.push(std::thread::spawn(move || {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)));
            barrier.wait();
            let mut ops = 0u64;
            // Check the stop flag every few operations to keep the overhead
            // of the flag itself negligible.
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..32 {
                    match spec.next_op(&mut rng) {
                        Op::Contains(k) => {
                            std::hint::black_box(set.contains(k));
                        }
                        Op::Insert(k) => {
                            std::hint::black_box(set.insert(k));
                        }
                        Op::Remove(k) => {
                            std::hint::black_box(set.remove(k));
                        }
                        Op::Count(lo, hi) => {
                            std::hint::black_box(set.count(lo, hi));
                        }
                        Op::Collect(lo, hi) => {
                            std::hint::black_box(set.count_via_collect(lo, hi));
                        }
                        Op::SnapshotCounts(a_min, a_max, b_min, b_max) => {
                            std::hint::black_box(
                                set.snapshot_count_pair(a_min, a_max, b_min, b_max),
                            );
                        }
                        Op::ChunkedScan(lo, hi, chunk) => {
                            std::hint::black_box(set.chunked_scan_count(lo, hi, chunk));
                        }
                    }
                    ops += 1;
                }
            }
            ops
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed();
    RunResult {
        total_ops,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64(),
    }
}

/// Repeats [`run_once`] `config.runs` times and aggregates the throughput.
pub fn run_experiment(
    imp: TreeImpl,
    spec: &WorkloadSpec,
    threads: usize,
    config: &ExperimentConfig,
) -> Summary {
    let mut results = Vec::with_capacity(config.runs);
    for run in 0..config.runs {
        results.push(run_once(
            imp,
            spec,
            threads,
            config.duration,
            config.seed.wrapping_add(run as u64),
        ));
    }
    let mean = results.iter().map(|r| r.ops_per_sec).sum::<f64>() / results.len() as f64;
    let min = results
        .iter()
        .map(|r| r.ops_per_sec)
        .fold(f64::INFINITY, f64::min);
    let max = results
        .iter()
        .map(|r| r.ops_per_sec)
        .fold(f64::NEG_INFINITY, f64::max);
    Summary {
        mean_ops_per_sec: mean,
        min_ops_per_sec: min,
        max_ops_per_sec: max,
        runs: results.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_once_reports_progress_for_every_implementation() {
        let spec = WorkloadSpec::insert_delete().scaled_down(2_000);
        for imp in TreeImpl::ALL {
            let result = run_once(imp, &spec, 2, Duration::from_millis(50), 1);
            assert!(
                result.total_ops > 0,
                "{}: no operations completed",
                imp.name()
            );
            assert!(result.ops_per_sec > 0.0);
        }
    }

    #[test]
    fn read_heavy_workload_leaves_the_tree_unchanged() {
        let spec = WorkloadSpec::contains_benchmark().scaled_down(2_000);
        let prefill = spec.prefill_keys(3);
        let set = TreeImpl::WaitFree.build(&prefill, 2);
        let before = set.len();
        let _ = timed_run(Arc::clone(&set), &spec, 2, Duration::from_millis(50), 3);
        assert_eq!(
            set.len(),
            before,
            "contains-only workload must not modify the tree"
        );
    }

    #[test]
    fn experiment_aggregates_runs() {
        let spec = WorkloadSpec::contains_benchmark().scaled_down(1_000);
        let config = ExperimentConfig {
            threads: vec![1],
            duration: Duration::from_millis(20),
            runs: 3,
            seed: 9,
        };
        let summary = run_experiment(TreeImpl::Locked, &spec, 1, &config);
        assert_eq!(summary.runs, 3);
        assert!(summary.min_ops_per_sec <= summary.mean_ops_per_sec);
        assert!(summary.mean_ops_per_sec <= summary.max_ops_per_sec);
    }
}
