//! A bounded lock-free event tracer for post-mortem timelines.
//!
//! Counters answer *how many* retries happened; a [`TraceRing`] answers
//! **when** — which is exactly the signal the ROADMAP's unreproduced
//! harness livelock needed ("was the spin a retry storm, and did it start
//! before or after the stop flag?"). Each emit packs a typed event
//! ([`TraceKind`] + a 16-bit argument, e.g. the shard index) and a coarse
//! microsecond timestamp into **one** `u64`, claims a slot with a relaxed
//! `fetch_add` and publishes with a release store: two uncontended atomic
//! ops on anomaly paths only (retries, fallbacks, rebuilds), cheap enough
//! to leave on in production and in every benchmark.
//!
//! The ring keeps the most recent `capacity` events; older ones are
//! overwritten and reported as [`TraceRing::dropped`]. [`TraceRing::drain`]
//! reconstructs the surviving timeline oldest-first. A drain that races
//! live emitters is best-effort at the wrap boundary (an overwritten slot
//! is attributed to the old sequence number); once emitters are quiescent
//! — the post-mortem case — the drain is exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Argument value meaning "no shard / not applicable".
pub const NO_SHARD: u16 = u16::MAX;

/// The event taxonomy: one variant per anomaly the system can hit on its
/// concurrent read/update paths. Deliberately small — every event is
/// something an engineer staring at a stall would want on a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A cross-shard read attempt was discarded because a shard advanced
    /// past its front mid-read (arg: the shard that invalidated the cut,
    /// or [`NO_SHARD`] when unattributed).
    SnapshotRetry = 1,
    /// A streaming scan cursor re-anchored at a fresh cut and degraded to
    /// `Resumed` (arg: the shard being merged when the cut expired).
    ScanResume = 2,
    /// A range read's optimistic traversals all failed validation and the
    /// read fell back to the descriptor slow path.
    RangeFallback = 3,
    /// `ShardedStore::len()` exhausted its bounded cut attempts and
    /// answered with the stitched sum.
    LenFallback = 4,
    /// A subtree rebuild was performed on the update path (arg: low 16
    /// bits of the number of items copied).
    HelpRebuild = 5,
    /// A writer blocked on the write-ahead log's group-commit watermark
    /// (arg: low 16 bits of the number of batches coalesced into the group
    /// that released it).
    WalStall = 6,
    /// An online checkpoint started draining the store through a snapshot
    /// scan cursor (arg: `(trigger << 14) | (cut & 0x3FFF)` — trigger 0 =
    /// explicit call, 1 = live-WAL-bytes policy threshold, 2 =
    /// live-WAL-segments policy threshold; low 14 bits are the cut
    /// sequence).
    CheckpointBegin = 7,
    /// An online checkpoint finished and the WAL prefix at-or-before its
    /// cut was truncated (arg: low 16 bits of the checkpoint's cut
    /// sequence).
    CheckpointEnd = 8,
    /// The durable log thread hit a transient I/O error and is retrying
    /// the flush after backoff (arg: the 0-based retry attempt index).
    IoRetry = 9,
    /// The durable journal escalated a persistent I/O failure into
    /// degraded read-only mode — reads keep serving, writes fail fast.
    DegradedEnter = 10,
    /// `try_resume` re-probed storage successfully and the journal left
    /// degraded mode (arg: low 16 bits of the resume count).
    DegradedResume = 11,
    /// An atomic cross-shard batch commit completed through the store's
    /// publish-at-front commit gate (arg: the number of shards the batch
    /// touched).
    BatchCommit = 12,
    /// A point operation or cut acquisition found a commit window open on
    /// a shard it touches and had to wait for its release (arg: the blocked
    /// shard, or [`NO_SHARD`] for a whole-cut acquisition).
    CommitGateWait = 13,
}

impl TraceKind {
    fn from_u8(v: u8) -> Option<TraceKind> {
        match v {
            1 => Some(TraceKind::SnapshotRetry),
            2 => Some(TraceKind::ScanResume),
            3 => Some(TraceKind::RangeFallback),
            4 => Some(TraceKind::LenFallback),
            5 => Some(TraceKind::HelpRebuild),
            6 => Some(TraceKind::WalStall),
            7 => Some(TraceKind::CheckpointBegin),
            8 => Some(TraceKind::CheckpointEnd),
            9 => Some(TraceKind::IoRetry),
            10 => Some(TraceKind::DegradedEnter),
            11 => Some(TraceKind::DegradedResume),
            12 => Some(TraceKind::BatchCommit),
            13 => Some(TraceKind::CommitGateWait),
            _ => None,
        }
    }

    /// Short stable label used in rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::SnapshotRetry => "snapshot-retry",
            TraceKind::ScanResume => "scan-resume",
            TraceKind::RangeFallback => "range-fallback",
            TraceKind::LenFallback => "len-fallback",
            TraceKind::HelpRebuild => "help-rebuild",
            TraceKind::WalStall => "wal-stall",
            TraceKind::CheckpointBegin => "checkpoint-begin",
            TraceKind::CheckpointEnd => "checkpoint-end",
            TraceKind::IoRetry => "io-retry",
            TraceKind::DegradedEnter => "degraded-enter",
            TraceKind::DegradedResume => "degraded-resume",
            TraceKind::BatchCommit => "batch-commit",
            TraceKind::CommitGateWait => "commit-gate-wait",
        }
    }
}

/// One decoded event of a [`TraceRing`] timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission sequence number (0-based, never wraps).
    pub seq: u64,
    /// Microseconds since the ring was created (40-bit, saturating at
    /// ~12.7 days of uptime).
    pub micros: u64,
    /// Event type.
    pub kind: TraceKind,
    /// Event argument (shard index, item count, … — see [`TraceKind`]).
    pub arg: u16,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>10}us] #{:<6} {}",
            self.micros,
            self.seq,
            self.kind.label()
        )?;
        if self.arg != NO_SHARD {
            write!(f, " (arg {})", self.arg)?;
        }
        Ok(())
    }
}

// Packing: | micros: 40 bits | kind: 8 bits | arg: 16 bits |
const MICROS_MAX: u64 = (1 << 40) - 1;

fn pack(micros: u64, kind: TraceKind, arg: u16) -> u64 {
    (micros.min(MICROS_MAX) << 24) | ((kind as u64) << 16) | arg as u64
}

fn unpack(word: u64) -> Option<(u64, TraceKind, u16)> {
    let kind = TraceKind::from_u8(((word >> 16) & 0xFF) as u8)?;
    Some((word >> 24, kind, (word & 0xFFFF) as u16))
}

/// A bounded lock-free ring buffer of packed [`TraceEvent`]s.
pub struct TraceRing {
    /// Total events ever emitted; slot of event `s` is `s & mask`.
    head: AtomicU64,
    slots: Box<[AtomicU64]>,
    mask: u64,
    epoch: Instant,
}

impl TraceRing {
    /// A ring keeping the most recent `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        TraceRing {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as u64 - 1,
            epoch: Instant::now(),
        }
    }

    /// Records one event (lock-free: one relaxed `fetch_add` to claim the
    /// slot, one release store to publish).
    #[inline]
    pub fn emit(&self, kind: TraceKind, arg: u16) {
        let micros = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        // ORDERING: Release publishes the packed event to the Acquire slot loads
        // in `drain`.
        self.slots[(seq & self.mask) as usize].store(pack(micros, kind, arg), Ordering::Release);
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted (including overwritten ones).
    pub fn total(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release slot stores in `emit` — events
        // below the returned head are visible to a subsequent drain.
        self.head.load(Ordering::Acquire)
    }

    /// Events that have been overwritten by wrap-around.
    pub fn dropped(&self) -> u64 {
        self.total().saturating_sub(self.mask + 1)
    }

    /// The surviving timeline, oldest event first. Exact once emitters are
    /// quiescent; see the module docs for the racing-drain caveat.
    pub fn drain(&self) -> Vec<TraceEvent> {
        // ORDERING: Acquire pairs with the Release slot stores in `emit`; slots
        // below `head` are published.
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.mask + 1);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            // ORDERING: Acquire pairs with the Release store in `emit`, so the packed
            // word is fully published.
            let word = self.slots[(seq & self.mask) as usize].load(Ordering::Acquire);
            if let Some((micros, kind, arg)) = unpack(word) {
                out.push(TraceEvent {
                    seq,
                    micros,
                    kind,
                    arg,
                });
            }
        }
        out
    }

    /// Renders the surviving timeline as one line per event, prefixed with
    /// a drop notice when wrap-around lost history.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("... {dropped} earlier events overwritten ...\n"));
        }
        for event in self.drain() {
            out.push_str(&format!("{event}\n"));
        }
        if out.is_empty() {
            out.push_str("(no trace events)\n");
        }
        out
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("total", &self.total())
            .finish()
    }
}

/// Capacity of the process-global ring: generous enough that a retry storm
/// of a few thousand events survives until a post-mortem drain.
const GLOBAL_CAPACITY: usize = 4096;

static GLOBAL: OnceLock<TraceRing> = OnceLock::new();

/// The process-global trace ring that instrumented crates emit into.
pub fn global() -> &'static TraceRing {
    GLOBAL.get_or_init(|| TraceRing::new(GLOBAL_CAPACITY))
}

/// Emits one event into the [`global`] ring.
#[inline]
pub fn emit(kind: TraceKind, arg: u16) {
    global().emit(kind, arg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for kind in [
            TraceKind::SnapshotRetry,
            TraceKind::ScanResume,
            TraceKind::RangeFallback,
            TraceKind::LenFallback,
            TraceKind::HelpRebuild,
            TraceKind::WalStall,
            TraceKind::CheckpointBegin,
            TraceKind::CheckpointEnd,
            TraceKind::IoRetry,
            TraceKind::DegradedEnter,
            TraceKind::DegradedResume,
            TraceKind::BatchCommit,
            TraceKind::CommitGateWait,
        ] {
            let (m, k, a) = unpack(pack(123_456, kind, 7)).unwrap();
            assert_eq!((m, k, a), (123_456, kind, 7));
        }
        assert!(unpack(0).is_none(), "empty slot decodes to no event");
    }

    #[test]
    fn drain_returns_events_in_order() {
        let ring = TraceRing::new(16);
        ring.emit(TraceKind::SnapshotRetry, 3);
        ring.emit(TraceKind::ScanResume, 1);
        ring.emit(TraceKind::LenFallback, NO_SHARD);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::SnapshotRetry);
        assert_eq!(events[0].arg, 3);
        assert_eq!(events[2].kind, TraceKind::LenFallback);
        assert!(events
            .windows(2)
            .all(|w| { w[0].seq < w[1].seq && w[0].micros <= w[1].micros }));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wrap_around_keeps_the_most_recent_events() {
        let ring = TraceRing::new(8);
        for i in 0..20u16 {
            ring.emit(TraceKind::RangeFallback, i);
        }
        let events = ring.drain();
        assert_eq!(events.len(), 8);
        assert_eq!(ring.dropped(), 12);
        assert_eq!(ring.total(), 20);
        // The surviving suffix is exactly emissions 12..20, in order.
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.seq, 12 + i as u64);
            assert_eq!(event.arg, 12 + i as u16);
        }
    }

    #[test]
    fn timeline_mentions_drops_and_labels() {
        let ring = TraceRing::new(8);
        for _ in 0..10 {
            ring.emit(TraceKind::HelpRebuild, 2);
        }
        let text = ring.render_timeline();
        assert!(text.contains("2 earlier events overwritten"));
        assert!(text.contains("help-rebuild"));
    }
}
