//! Log-bucketed latency histograms.
//!
//! [`LatencyHistogram`] records nanosecond latencies into fixed
//! **log-linear** buckets: values below [`LINEAR_MAX`] get exact unit
//! buckets, and every octave `[2^e, 2^(e+1))` above is split into
//! [`SUB_BUCKETS`] equal sub-buckets. With 4 sub-buckets the upper/lower
//! ratio of a bucket is between 5/4 and 19/16 — "power-of-~1.25" buckets —
//! so any quantile read back from the histogram overestimates the true
//! value by strictly less than 25% (and is exact below [`LINEAR_MAX`]).
//! 256 buckets cover the whole `u64` nanosecond range, so one histogram is
//! 2 KiB of atomics and recording is two relaxed `fetch_add`s (bucket +
//! sum) with no allocation, no locking and no floating point.
//!
//! Histograms are **mergeable**: per-thread recorders can run completely
//! uncontended and be folded into one via [`LatencyHistogram::merge_from`],
//! and [`HistogramSnapshot`]s support the same bucket-wise arithmetic for
//! window deltas ([`HistogramSnapshot::delta_since`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Values below this get exact unit-width buckets (`le == value`).
pub const LINEAR_MAX: u64 = 16;

/// Sub-buckets per octave above the linear region.
pub const SUB_BUCKETS: usize = 4;

/// Total bucket count: 16 linear + 4 per octave for octaves 4..=63.
pub const BUCKETS: usize = LINEAR_MAX as usize + (64 - 4) * SUB_BUCKETS;

/// Bucket index of `value` (nanoseconds).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let e = 63 - value.leading_zeros() as usize; // >= 4
    let sub = ((value >> (e - 2)) & 0b11) as usize;
    LINEAR_MAX as usize + (e - 4) * SUB_BUCKETS + sub
}

/// Inclusive upper bound (`le`) of bucket `index`.
pub fn bucket_le(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let rel = index - LINEAR_MAX as usize;
    let e = 4 + rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u64;
    // The bucket covers [(4 + sub) << (e-2), ((4 + sub + 1) << (e-2)) - 1].
    ((4 + sub + 1) << (e - 2)).wrapping_sub(1)
}

/// A mergeable log-bucketed histogram of nanosecond latencies.
///
/// Recording is wait-free (two relaxed `fetch_add`s); reading takes a
/// [`HistogramSnapshot`]. See the module docs for the bucket layout and
/// the ≤25% quantile error bound.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one latency given as a [`Duration`] (saturating at `u64`
    /// nanoseconds — ~584 years).
    #[inline]
    pub fn observe(&self, latency: Duration) {
        self.record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds every recording of `other` into `self` (bucket-wise add).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total recordings so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push(BucketCount {
                    le_ns: bucket_le(i),
                    count: n,
                });
                count += n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish()
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `count` recordings
/// with values `<= le_ns` (and above the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, in nanoseconds.
    pub le_ns: u64,
    /// Recordings that fell into this bucket.
    pub count: u64,
}

/// A point-in-time copy of a [`LatencyHistogram`]: only the non-empty
/// buckets, in ascending `le_ns` order, plus the total count and sum.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Non-empty buckets in ascending order of `le_ns`.
    pub buckets: Vec<BucketCount>,
    /// Total recordings.
    pub count: u64,
    /// Sum of all recorded values, in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The `p`-quantile (e.g. `0.99`), as the upper bound of the bucket
    /// holding the rank-`ceil(p * count)` recording — an overestimate of
    /// the true quantile by less than 25% (exact below [`LINEAR_MAX`]).
    /// Returns 0 for an empty snapshot; `p` is clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.le_ns;
            }
        }
        self.buckets.last().map(|b| b.le_ns).unwrap_or(0)
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self - earlier` (saturating): the
    /// recordings that happened between the two snapshots, assuming
    /// `earlier` was taken on the same histogram before `self`.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for b in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|e| e.le_ns == b.le_ns)
                .map(|e| e.count)
                .unwrap_or(0);
            let n = b.count.saturating_sub(before);
            if n != 0 {
                buckets.push(BucketCount {
                    le_ns: b.le_ns,
                    count: n,
                });
                count += n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
        }
    }

    /// Bucket-wise sum of two snapshots.
    pub fn merged_with(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut les: Vec<u64> = self
            .buckets
            .iter()
            .chain(other.buckets.iter())
            .map(|b| b.le_ns)
            .collect();
        les.sort_unstable();
        les.dedup();
        let at = |snap: &HistogramSnapshot, le: u64| {
            snap.buckets
                .iter()
                .find(|b| b.le_ns == le)
                .map(|b| b.count)
                .unwrap_or(0)
        };
        let buckets: Vec<BucketCount> = les
            .into_iter()
            .map(|le| BucketCount {
                le_ns: le,
                count: at(self, le) + at(other, le),
            })
            .collect();
        HistogramSnapshot {
            count: buckets.iter().map(|b| b.count).sum(),
            sum_ns: self.sum_ns + other.sum_ns,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's upper bound maps back into that bucket, and
        // `le + 1` maps into a strictly later bucket.
        for i in 0..BUCKETS {
            let le = bucket_le(i);
            assert_eq!(bucket_index(le), i, "le {le} of bucket {i}");
            if le < u64::MAX {
                assert!(bucket_index(le + 1) > i);
            }
        }
    }

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_le(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_is_below_25_percent() {
        for v in [16u64, 17, 100, 999, 4096, 1_000_000, u64::MAX / 3] {
            let le = bucket_le(bucket_index(v));
            assert!(le >= v);
            assert!((le as f64) < (v as f64) * 1.25, "v={v} le={le}");
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let p50 = snap.quantile(0.5);
        assert!((50..63).contains(&p50), "p50={p50}");
        let p0 = snap.quantile(0.0);
        assert_eq!(p0, 1, "rank clamps to the first recording");
        assert!(snap.quantile(1.0) >= 100);
    }

    #[test]
    fn merge_and_delta_are_inverses() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in [5u64, 5, 700, 80_000] {
            a.record(v);
        }
        b.record(700);
        let before = a.snapshot();
        a.merge_from(&b);
        let after = a.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta, b.snapshot());
        assert_eq!(after, before.merged_with(&b.snapshot()));
    }

    #[test]
    fn observe_handles_durations() {
        let h = LatencyHistogram::new();
        h.observe(Duration::from_nanos(4));
        h.observe(Duration::from_micros(3));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_ns, 4 + 3_000);
    }
}
