//! Point-in-time metric snapshots, window deltas, and the two exporters.
//!
//! A [`MetricsSnapshot`] is the flat, serializable form every instrument
//! and [`MetricsSource`](crate::MetricsSource) renders into: named counter
//! samples, gauge samples and histogram snapshots. Snapshots support the
//! **delta arithmetic** benches and watchdogs need —
//! [`MetricsSnapshot::delta_since`] subtracts an earlier snapshot of the
//! same instruments, turning cumulative counters into per-window rates —
//! and export as either JSON (embedded verbatim in the committed
//! `BENCH_*.json` reports) or the Prometheus text exposition format
//! ([`MetricsSnapshot::to_prometheus`]).

use serde::{Deserialize, Serialize};

use crate::hist::HistogramSnapshot;

/// One named counter reading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (e.g. `store_snapshot_retries`).
    pub name: String,
    /// Cumulative value at snapshot time.
    pub value: u64,
}

/// One named gauge reading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name (e.g. `store_len`).
    pub name: String,
    /// Level at snapshot time.
    pub value: i64,
}

/// One named histogram reading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name (e.g. `op_latency_ns`).
    pub name: String,
    /// The bucket contents at snapshot time.
    pub histogram: HistogramSnapshot,
}

/// A point-in-time reading of a set of named metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter readings, in registration order.
    pub counters: Vec<CounterSample>,
    /// Gauge readings, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// Histogram readings, in registration order.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// An empty snapshot (the starting point for
    /// [`MetricsSource::collect_metrics`](crate::MetricsSource::collect_metrics)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a counter sample.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push(CounterSample {
            name: name.into(),
            value,
        });
    }

    /// Appends a gauge sample.
    pub fn push_gauge(&mut self, name: impl Into<String>, value: i64) {
        self.gauges.push(GaugeSample {
            name: name.into(),
            value,
        });
    }

    /// Appends a histogram sample.
    pub fn push_histogram(&mut self, name: impl Into<String>, histogram: HistogramSnapshot) {
        self.histograms.push(HistogramSample {
            name: name.into(),
            histogram,
        });
    }

    /// Value of the named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.histogram)
    }

    /// `true` when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Per-window difference `self - earlier`, matched by name: counters
    /// subtract saturating (a metric absent from `earlier` counts from 0),
    /// gauges subtract signed, histograms subtract bucket-wise. Metrics
    /// only present in `earlier` are dropped — the delta describes what
    /// `self` can still see.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSample {
                    name: c.name.clone(),
                    value: c
                        .value
                        .saturating_sub(earlier.counter(&c.name).unwrap_or(0)),
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSample {
                    name: g.name.clone(),
                    value: g.value - earlier.gauge(&g.name).unwrap_or(0),
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSample {
                    name: h.name.clone(),
                    histogram: match earlier.histogram(&h.name) {
                        Some(prev) => h.histogram.delta_since(prev),
                        None => h.histogram.clone(),
                    },
                })
                .collect(),
        }
    }

    /// Serializes the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshot serializes")
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`. Metric names are
    /// sanitized to `[a-zA-Z0-9_:]`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = sanitize(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for g in &self.gauges {
            let name = sanitize(&g.name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
        }
        for h in &self.histograms {
            let name = sanitize(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for b in &h.histogram.buckets {
                cumulative += b.count;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    b.le_ns
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                h.histogram.count, h.histogram.sum_ns, h.histogram.count
            ));
        }
        out
    }
}

/// Replaces characters outside `[a-zA-Z0-9_:]` with `_` (Prometheus metric
/// name charset).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn sample() -> MetricsSnapshot {
        let h = LatencyHistogram::new();
        h.record(7);
        h.record(900);
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("tree_inserts", 10);
        snap.push_gauge("store_len", -3);
        snap.push_histogram("op_latency_ns", h.snapshot());
        snap
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn delta_subtracts_matched_names() {
        let mut earlier = MetricsSnapshot::new();
        earlier.push_counter("tree_inserts", 4);
        earlier.push_gauge("store_len", -10);
        let delta = sample().delta_since(&earlier);
        assert_eq!(delta.counter("tree_inserts"), Some(6));
        assert_eq!(delta.gauge("store_len"), Some(7));
        // Histogram absent from `earlier` passes through whole.
        assert_eq!(delta.histogram("op_latency_ns").unwrap().count, 2);
    }

    #[test]
    fn prometheus_format_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE tree_inserts counter"));
        assert!(text.contains("tree_inserts 10"));
        assert!(text.contains("store_len -3"));
        assert!(text.contains("# TYPE op_latency_ns histogram"));
        assert!(text.contains("op_latency_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("op_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("op_latency_ns_count 2"));
    }

    #[test]
    fn sanitize_replaces_bad_chars() {
        assert_eq!(sanitize("a.b-c d"), "a_b_c_d");
    }
}
