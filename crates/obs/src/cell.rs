//! Per-thread-sharded counter and gauge cells.
//!
//! The hot-path cost model is the whole design: a [`Counter::inc`] is one
//! `fetch_add(1, Relaxed)` on a cache line that — up to [`CELLS`] threads —
//! no other thread writes, so instrumented fast paths (presence-index
//! `contains`, optimistic range traversals) pay an uncontended RMW instead
//! of a shared-line ping-pong. Reads sum every cell
//! ([`Counter::value`]), which makes reading `O(CELLS)` and therefore
//! strictly a *snapshot-time* cost: exactly the right trade for metrics
//! that are written millions of times a second and read a few times a
//! window.
//!
//! Threads are assigned cells round-robin on first use (a thread-local
//! slot index shared by every counter and gauge in the process); with more
//! than [`CELLS`] live threads cells are shared and the `fetch_add`
//! degrades gracefully to a contended one — never to a lock.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of padded cells per counter/gauge: enough to keep every harness
/// thread count in the workspace (the paper sweeps up to 24) on a private
/// cache line.
pub const CELLS: usize = 64;

/// Round-robin allocator for thread slots.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's cell index, assigned on first metric touch.
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % CELLS;
}

/// The calling thread's cell index.
#[inline]
pub(crate) fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

/// One cache line per cell so two threads' cells never share one.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

#[repr(align(64))]
struct PaddedI64(AtomicI64);

/// A monotone event counter, sharded across [`CELLS`] per-thread cells.
///
/// Writes are relaxed, uncontended `fetch_add`s; [`Counter::value`] sums
/// the cells. The sum is exact once writers are quiescent and, under
/// concurrency, always a value the counter actually passed through
/// (cells only grow).
pub struct Counter {
    cells: [PaddedU64; CELLS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter {
            cells: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all cells.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// A signed up/down gauge, sharded the same way as [`Counter`]: the value
/// is the sum of per-cell deltas, so `add`/`sub` from any thread stay
/// uncontended and [`Gauge::value`] is the net level.
pub struct Gauge {
    cells: [PaddedI64; CELLS],
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge {
            cells: std::array::from_fn(|_| PaddedI64(AtomicI64::new(0))),
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cells[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Net sum of all cells.
    pub fn value(&self) -> i64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_cells() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn gauge_goes_up_and_down() {
        let g = Gauge::new();
        g.add(10);
        g.dec();
        g.sub(3);
        assert_eq!(g.value(), 6);
    }

    #[test]
    fn counter_is_exact_across_threads() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), threads as u64 * per_thread);
    }
}
