//! The metrics registry and the [`MetricsSource`] capability trait.
//!
//! Two ways metrics reach a [`MetricsSnapshot`]:
//!
//! * **Owned instruments** — [`Registry::counter`] / [`Registry::gauge`] /
//!   [`Registry::histogram`] hand out `Arc` handles to sharded cells.
//!   Get-or-create takes a lock once; the returned handle is then used
//!   lock-free on the hot path. Snapshots read every registered
//!   instrument.
//! * **Pulled sources** — any structure that already keeps its own
//!   counters (the trees' `TreeCounters`, the store's `StoreStats`)
//!   implements [`MetricsSource`] and is attached with
//!   [`Registry::register_source`]; [`Registry::snapshot`] polls it and
//!   prefixes its sample names. This is how the pre-existing `stats()`
//!   APIs stay the source of truth while gaining registry export — the
//!   same `snapshot_retries` number is readable via `StoreStats`, the
//!   JSON/Prometheus exporters, and per-window deltas.

use std::sync::{Arc, Mutex};

use crate::cell::{Counter, Gauge};
use crate::hist::LatencyHistogram;
use crate::snapshot::MetricsSnapshot;

/// A structure that can report its metrics into a snapshot.
///
/// Implementors append named samples with the `push_*` methods; names
/// should be stable, lowercase `snake_case` identifiers (they become
/// Prometheus metric names). Every backend in the workspace implements
/// this — trees and the store report their operational counters, the
/// baselines report at least their size — so any `ConcurrentSet` in the
/// harness can be asked for a snapshot.
pub trait MetricsSource: Send + Sync {
    /// Appends this structure's current metric readings to `out`.
    fn collect_metrics(&self, out: &mut MetricsSnapshot);
}

/// A named collection of live instruments and pulled sources.
///
/// Cloning the returned `Arc` handles is the intended usage: register
/// once at setup, stash the handle next to the hot path, and let the
/// registry own the name → instrument mapping for snapshot/export time.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<LatencyHistogram>)>,
    sources: Vec<(String, Arc<dyn MetricsSource>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name.to_owned(), Arc::clone(&c)));
        c
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner.gauges.push((name.to_owned(), Arc::clone(&g)));
        g
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::new());
        inner.histograms.push((name.to_owned(), Arc::clone(&h)));
        h
    }

    /// Attaches a pulled source; every sample it reports is prefixed with
    /// `prefix_` (pass `""` for no prefix). Sources are polled on every
    /// [`Registry::snapshot`].
    pub fn register_source(&self, prefix: &str, source: Arc<dyn MetricsSource>) {
        self.inner
            .lock()
            .unwrap()
            .sources
            .push((prefix.to_owned(), source));
    }

    /// Reads every instrument and polls every source into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut out = MetricsSnapshot::new();
        for (name, c) in &inner.counters {
            out.push_counter(name.clone(), c.value());
        }
        for (name, g) in &inner.gauges {
            out.push_gauge(name.clone(), g.value());
        }
        for (name, h) in &inner.histograms {
            out.push_histogram(name.clone(), h.snapshot());
        }
        for (prefix, source) in &inner.sources {
            if prefix.is_empty() {
                source.collect_metrics(&mut out);
            } else {
                let mut scoped = MetricsSnapshot::new();
                source.collect_metrics(&mut scoped);
                for c in scoped.counters {
                    out.push_counter(format!("{prefix}_{}", c.name), c.value);
                }
                for g in scoped.gauges {
                    out.push_gauge(format!("{prefix}_{}", g.name), g.value);
                }
                for h in scoped.histograms {
                    out.push_histogram(format!("{prefix}_{}", h.name), h.histogram);
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("sources", &inner.sources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSource;
    impl MetricsSource for FixedSource {
        fn collect_metrics(&self, out: &mut MetricsSnapshot) {
            out.push_counter("events", 5);
        }
    }

    #[test]
    fn instruments_are_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("hits"), Some(2));
    }

    #[test]
    fn sources_are_polled_with_prefix() {
        let reg = Registry::new();
        reg.register_source("store", Arc::new(FixedSource));
        reg.register_source("", Arc::new(FixedSource));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("store_events"), Some(5));
        assert_eq!(snap.counter("events"), Some(5));
    }

    #[test]
    fn snapshot_covers_all_instrument_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.gauge("g").sub(2);
        reg.histogram("h").record(64);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-2));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }
}
