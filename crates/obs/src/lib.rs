//! # `wft-obs` — unified observability for the wait-free-tree workspace
//!
//! The paper's evaluation is throughput-vs-threads, but everything grown
//! on top of it — global snapshot fronts, streaming scan cursors,
//! fast-path/fallback reads — lives and dies on **tail behaviour under
//! contention**: retry storms, helping cascades, fallback rates. This
//! crate is the single instrumentation layer every other crate threads
//! through:
//!
//! * [`Counter`] / [`Gauge`] — per-thread-sharded relaxed-atomic cells
//!   ([`cell`]): hot paths pay one uncontended `fetch_add`, readers sum
//!   the cells.
//! * [`LatencyHistogram`] — log-bucketed (power-of-~1.25 over ns),
//!   mergeable, with [`HistogramSnapshot::quantile`] for p50/p99/p999
//!   ([`hist`]).
//! * [`MetricsSnapshot`] — the flat serializable reading with
//!   **delta arithmetic** for per-window rates, exported as JSON (the
//!   `BENCH_*.json` embeds) or Prometheus text ([`snapshot`]).
//! * [`Registry`] + [`MetricsSource`] — owned instruments plus pulled
//!   sources ([`registry`]): the trees' and store's existing `stats()`
//!   counters stay authoritative and are mirrored into the registry, so
//!   one signal (say `store_snapshot_retries`) is readable via the legacy
//!   struct, both exporters, and window deltas.
//! * [`TraceRing`] — a bounded lock-free ring of typed, timestamped
//!   anomaly events ([`trace`]): cheap enough to leave on, drainable as a
//!   post-mortem timeline (the harness watchdog dumps it when workers
//!   outlive the stop flag).
//!
//! The crate is a dependency leaf (it knows nothing about trees or
//! stores), so every layer — `wft-core`, `wft-trie`, `wft-store`, the
//! baselines, the workload harness and the bench bins — can depend on it
//! without cycles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use cell::{Counter, Gauge};
pub use hist::{BucketCount, HistogramSnapshot, LatencyHistogram};
pub use registry::{MetricsSource, Registry};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use trace::{TraceEvent, TraceKind, TraceRing, NO_SHARD};
