//! Coarse-grained lock baseline.
//!
//! The simplest way to obtain a concurrent tree is to protect the sequential
//! one with a global lock (the paper's related-work §I: "Lock-based
//! solutions"). [`LockedRangeTree`] does exactly that: a `parking_lot` mutex
//! around [`wft_seq::SeqRangeTree`]. It is neither lock-free nor scalable,
//! but it is a useful lower bound in the benchmark harness and a sanity
//! oracle in stress tests (its behaviour is trivially linearizable).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use wft_seq::{Augmentation, Key, SeqRangeTree, Size, Value};

/// A sequential augmented tree behind one global mutex.
///
/// The interface mirrors `wft_core::WaitFreeTree` so the benchmark harness
/// can swap implementations.
pub struct LockedRangeTree<K: Key, V: Value = (), A: Augmentation<K, V> = Size> {
    inner: Mutex<SeqRangeTree<K, V, A>>,
    /// Write version, bumped while the lock is held by every mutation that
    /// changed the tree. Mutations are only visible at lock release, and
    /// the bump is sequenced before that release, so "version unchanged
    /// across a window" proves no mutation became visible inside it — the
    /// tree's snapshot front (see the `TimestampFront` impl below).
    version: AtomicU64,
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Default for LockedRangeTree<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> LockedRangeTree<K, V, A> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        LockedRangeTree {
            inner: Mutex::new(SeqRangeTree::new()),
            version: AtomicU64::new(0),
        }
    }

    /// Builds a pre-populated tree.
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        LockedRangeTree {
            inner: Mutex::new(SeqRangeTree::from_entries(entries)),
            version: AtomicU64::new(0),
        }
    }

    /// The current write version (the snapshot front); see the `version`
    /// field docs.
    pub fn write_version(&self) -> u64 {
        // ORDERING: SeqCst — the version sandwich compares observations taken
        // without holding the lock.
        // wft-lint: allow(seqcst) -- baseline keeps the cross-read comparison in one total order rather than reasoning about lock handoff.
        self.version.load(Ordering::SeqCst)
    }

    /// Bumps the write version; callers hold the lock.
    fn bump_version(&self) {
        // ORDERING: SeqCst bump under the write lock, totally ordered with the
        // sandwich reads above.
        // wft-lint: allow(seqcst) -- same total-order argument as write_version.
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Inserts `key → value`; `true` if the key was absent.
    pub fn insert(&self, key: K, value: V) -> bool {
        let mut inner = self.inner.lock();
        let inserted = inner.insert(key, value);
        if inserted {
            self.bump_version();
        }
        inserted
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// value it replaced, if any. Atomic: a single lock acquisition covers
    /// the whole upsert.
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        let mut inner = self.inner.lock();
        let prior = inner.insert_or_replace(key, value);
        self.bump_version();
        prior
    }

    /// Removes `key`; `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        let mut inner = self.inner.lock();
        let removed = inner.remove(key);
        if removed {
            self.bump_version();
        }
        removed
    }

    /// Removes `key` and returns its value, if any.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        let removed = inner.remove_entry(key);
        if removed.is_some() {
            self.bump_version();
        }
        removed
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().contains(key)
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }

    /// Aggregate of entries with keys in `[min, max]`.
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        self.inner.lock().range_agg(min, max)
    }

    /// Entries with keys in `[min, max]`, in key order.
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        self.inner.lock().collect_range(min, max)
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.inner.lock().len()
    }

    /// `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.inner.lock().entries()
    }

    /// Validates the inner tree's invariants (tests only).
    pub fn check_invariants(&self) {
        self.inner.lock().check_invariants();
    }
}

impl<K: Key, V: Value> LockedRangeTree<K, V, Size> {
    /// Number of keys in `[min, max]`.
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }
}

// --- wft-api trait family ------------------------------------------------

impl<K: Key, V: Value, A: Augmentation<K, V>> wft_api::PointMap<K, V> for LockedRangeTree<K, V, A> {
    fn insert(&self, key: K, value: V) -> wft_api::UpdateOutcome<V> {
        let mut inner = self.inner.lock();
        if let Some(current) = inner.get(&key) {
            return wft_api::UpdateOutcome::Unchanged {
                current: Some(current.clone()),
            };
        }
        inner.insert(key, value);
        self.bump_version();
        wft_api::UpdateOutcome::Applied { prior: None }
    }

    fn replace(&self, key: K, value: V) -> wft_api::UpdateOutcome<V> {
        wft_api::UpdateOutcome::Applied {
            prior: self.insert_or_replace(key, value),
        }
    }

    fn remove(&self, key: &K) -> wft_api::UpdateOutcome<V> {
        match self.remove_entry(key) {
            Some(prior) => wft_api::UpdateOutcome::Applied { prior: Some(prior) },
            None => wft_api::UpdateOutcome::Unchanged { current: None },
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        LockedRangeTree::get(self, key)
    }

    fn len(&self) -> u64 {
        LockedRangeTree::len(self)
    }
}

impl<K, V, A> wft_api::RangeRead<K, V> for LockedRangeTree<K, V, A>
where
    K: wft_api::RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Agg = A::Agg;

    fn range_agg(&self, range: wft_api::RangeSpec<K>) -> A::Agg {
        wft_api::agg_over(range, A::identity, |min, max| {
            LockedRangeTree::range_agg(self, min, max)
        })
    }

    fn count(&self, range: wft_api::RangeSpec<K>) -> u64 {
        wft_api::count_over(
            range,
            |min, max| LockedRangeTree::range_agg(self, min, max),
            A::count_of,
            |min, max| LockedRangeTree::collect_range(self, min, max).len() as u64,
        )
    }

    fn collect_range(&self, range: wft_api::RangeSpec<K>) -> Vec<(K, V)> {
        wft_api::collect_over(range, |min, max| {
            LockedRangeTree::collect_range(self, min, max)
        })
    }
}

/// Chunks through the default collect-and-truncate: every chunk takes the
/// lock once, like any other read of this baseline.
impl<K, V, A> wft_api::ChunkRead<K, V> for LockedRangeTree<K, V, A>
where
    K: wft_api::RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
}

/// Streaming scans through the shared front-sandwich cursor over the
/// write-version front.
impl<K, V, A> wft_api::RangeScan<K, V> for LockedRangeTree<K, V, A>
where
    K: wft_api::RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Cursor<'a>
        = wft_api::FrontScanCursor<'a, Self, K, V>
    where
        Self: 'a;

    fn scan(&self, range: wft_api::RangeSpec<K>) -> wft_api::FrontScanCursor<'_, Self, K, V> {
        wft_api::FrontScanCursor::new(self, range)
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> wft_api::BatchApply<K, V>
    for LockedRangeTree<K, V, A>
{
    fn apply_batch(
        &self,
        batch: Vec<wft_api::StoreOp<K, V>>,
    ) -> Result<Vec<wft_api::OpOutcome<V>>, wft_api::BatchError<K>> {
        wft_api::apply_batch_point(self, batch)
    }
}

/// Opts into the blanket `SnapshotRead`: plain reads here are
/// validation-free linearizable queries, so the blanket's sandwich is the
/// single validation layer.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_api::FrontSnapshot for LockedRangeTree<K, V, A> {}

/// The lock's write version is the snapshot front: mutations only become
/// visible at lock release, the version bump is sequenced before that
/// release, and reads serialize through the same lock — so announcement and
/// visibility coincide and [`wft_api::TimestampFront::settle_front`] never
/// waits. With this impl the blanket [`wft_api::SnapshotRead`] applies.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_api::TimestampFront for LockedRangeTree<K, V, A> {
    fn settle_front(&self) -> u64 {
        self.write_version()
    }

    fn front_advertised(&self) -> u64 {
        self.write_version()
    }
}

/// Minimal `wft-obs` surface for the baseline: the write version (a
/// monotone count of committed mutations) and the current size. The
/// baseline keeps no operational counters of its own.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_obs::MetricsSource for LockedRangeTree<K, V, A> {
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        out.push_counter("lockbased_writes", self.write_version());
        out.push_gauge("lockbased_len", wft_api::PointMap::len(self) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let tree: LockedRangeTree<i64, i64> = LockedRangeTree::new();
        assert!(tree.insert(1, 10));
        assert!(!tree.insert(1, 11));
        assert_eq!(tree.get(&1), Some(10));
        assert_eq!(tree.count(0, 5), 1);
        assert_eq!(tree.remove_entry(&1), Some(10));
        assert!(tree.is_empty());
        tree.check_invariants();
    }

    #[test]
    fn insert_or_replace_roundtrip() {
        let tree: LockedRangeTree<i64, i64> = LockedRangeTree::new();
        assert_eq!(tree.insert_or_replace(1, 10), None);
        assert_eq!(tree.insert_or_replace(1, 11), Some(10));
        assert_eq!(tree.get(&1), Some(11));
        assert_eq!(tree.len(), 1);
        tree.check_invariants();
    }

    #[test]
    fn from_entries_and_ranges() {
        let tree: LockedRangeTree<i64> = LockedRangeTree::from_entries((0..100).map(|k| (k, ())));
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.count(10, 19), 10);
        assert_eq!(tree.collect_range(95, 200).len(), 5);
    }

    #[test]
    fn concurrent_updates_are_serialised_by_the_lock() {
        const THREADS: i64 = 4;
        const PER_THREAD: i64 = 500;
        let tree: Arc<LockedRangeTree<i64>> = Arc::new(LockedRangeTree::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert!(tree.insert(t * PER_THREAD + i, ()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len(), (THREADS * PER_THREAD) as u64);
        assert_eq!(
            tree.count(i64::MIN, i64::MAX),
            (THREADS * PER_THREAD) as u64
        );
        tree.check_invariants();
    }
}
