//! Concurrent building blocks for the wait-free range tree.
//!
//! The paper's "hand-over-hand helping" scheme (§II) rests on a small number
//! of concurrent primitives. Each of them lives in its own module here, has
//! its own unit and property tests, and is reused by the concurrent tree in
//! `wft-core`:
//!
//! * [`TsQueue`] — the per-node descriptor queue (§II-D): a Michael–Scott
//!   queue whose nodes carry monotonically increasing timestamps and which
//!   supports the paper's exactly-once `push_if` / `pop_if` operations plus a
//!   non-destructive `peek`. The same structure doubles as the lock-free root
//!   queue through [`TsQueue::enqueue_assign`], which allocates the next
//!   timestamp while enqueuing.
//! * [`WaitFreeRootQueue`] — the wait-free timestamp-allocating root queue of
//!   §II-F (Lemma 1): announce array + fetch-and-add versions + helping, on
//!   top of a [`TsQueue`].
//! * [`TraverseQueue`] — the multi-producer single-consumer queue of nodes
//!   still to be visited by an operation (`Op.Traverse`, §II-B).
//! * [`FirstWriteMap`] — the first-write-wins map collecting per-node partial
//!   results (`Op.Processed`, §II-B/§II-C).
//! * [`PresenceIndex`] — the per-key last-update index used to fix the
//!   success and value delta of an update at its linearization point (see
//!   DESIGN.md §3 for why the framework needs this). Because the index is
//!   the resolution authority, its snapshot reads double as the trees'
//!   `O(1)` linearizable point-read fast path (selected via [`ReadPath`]).
//!
//! All shared memory that can be unlinked while other threads may still read
//! it is managed with `crossbeam-epoch`; structures whose nodes are only
//! freed on `Drop` (traverse queue, first-write map, presence buckets) use
//! plain atomics and reclaim in `Drop`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fwmap;
pub mod mpsc;
pub mod presence;
pub mod root;
pub mod timestamp;
pub mod tsqueue;

pub use fwmap::FirstWriteMap;
pub use mpsc::TraverseQueue;
pub use presence::{Decision, PresenceIndex, PresenceSnapshot, ReadPath, UpdateKind};
pub use root::WaitFreeRootQueue;
pub use timestamp::Timestamp;
pub use tsqueue::TsQueue;
