//! The presence index: fixing update effects at the linearization point.
//!
//! The paper maintains augmentation values **eagerly, top down**: the moment
//! an update descriptor is executed in a node, the augmentation value of the
//! child it descends into is adjusted, so that aggregate queries with larger
//! timestamps already observe the update high up in the tree (§II-C and the
//! `⟨v.Id, 5⟩/⟨v.Id, 6⟩` scenario of §II-B). This only works if the *effect*
//! of the update — did the `insert` succeed? which value does the `remove`
//! delete? — is known by the time the descriptor leaves the root, because
//! that is where the first augmentation adjustment happens.
//!
//! The paper leaves this resolution step implicit. We make it explicit with
//! a dedicated substrate, the **presence index**: a concurrent hash index
//! mapping every key that was ever touched by an update to
//! `(present, value, last_update_timestamp)`. While a descriptor is executed
//! at the fictive root — i.e. still in strict timestamp order — the
//! executing process *resolves* the update against the index:
//!
//! 1. load the entry's state; if its timestamp is already `>= ts`, the
//!    update was resolved by another helper and its published
//!    [`Decision`] is returned;
//! 2. otherwise compute the decision from the state (insert succeeds iff the
//!    key is absent, remove succeeds iff present), publish it in the
//!    descriptor's write-once decision cell (first publisher wins), and
//! 3. advance the entry with a timestamp-guarded CAS.
//!
//! The protocol is idempotent under any number of helpers and stalled
//! processes: a stale helper either observes an already-advanced entry (and
//! reads the published decision) or loses the CAS race, so every update is
//! applied to the index exactly once and every helper returns the same
//! decision. See DESIGN.md §3 for the full argument and why this preserves
//! the paper's linearization order and wait-freedom.
//!
//! The index is insert-only (removed keys stay with `present = false`) and
//! uses a fixed number of buckets chosen at construction; bucket chains are
//! freed on `Drop`, replaced state records are retired through the epoch
//! collector.

use crossbeam_epoch::{Atomic, Guard, Owned};
use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::timestamp::Timestamp;

/// Default number of hash buckets (tuned for the paper's 2·10^6-key
/// workloads; collisions only degrade constants, never correctness).
pub const DEFAULT_BUCKETS: usize = 1 << 16;

/// Which implementation answers read operations on a descriptor-based tree.
///
/// The presence index is the tree's *resolution authority*: every update's
/// effect is fixed there, in strict root-queue timestamp order, while the
/// update is executed at the fictive root. A snapshot read of a key's state
/// record is therefore linearizable on its own — which lets `get` /
/// `contains` skip the descriptor machinery entirely, and lets aggregate
/// range queries attempt an optimistic descriptor-free traversal first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Point reads are answered in `O(1)` from the presence index; range
    /// reads attempt a validated optimistic traversal and fall back to the
    /// descriptor path when validation fails. This is the default.
    #[default]
    Fast,
    /// Every read runs as a full descriptor through the root queue (the
    /// paper's original scheme). Primarily for testing and comparison: the
    /// linearizability suites run under both variants.
    Descriptor,
}

/// The kind of update being resolved.
#[derive(Debug, Clone)]
pub enum UpdateKind<V> {
    /// `insert(key, value)`: succeeds iff the key is currently absent.
    Insert(V),
    /// `replace(key, value)`: always succeeds, overwriting any current value
    /// (the decision's `prior_value` reports what was overwritten).
    Replace(V),
    /// `remove(key)`: succeeds iff the key is currently present.
    Remove,
}

/// The resolved effect of an update, fixed at its linearization point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision<V> {
    /// Whether the update succeeds (modifies the set).
    pub success: bool,
    /// The value previously associated with the key (needed to undo its
    /// augmentation contribution on a successful `remove`, and reported for
    /// unsuccessful `insert`s).
    pub prior_value: Option<V>,
}

/// A snapshot of one key's state in the index (diagnostics and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceSnapshot<V> {
    /// Whether the key is present after all updates up to `last_ts`.
    pub present: bool,
    /// The associated value if present.
    pub value: Option<V>,
    /// Timestamp of the last update applied to this key (zero if none).
    pub last_ts: Timestamp,
}

/// Immutable, epoch-managed state record of one key.
struct KeyState<V> {
    present: bool,
    value: Option<V>,
    ts: Timestamp,
}

/// One key's entry: bucket-chain link plus the swappable state record.
struct KeyEntry<K, V> {
    key: K,
    state: Atomic<KeyState<V>>,
    next: AtomicPtr<KeyEntry<K, V>>,
}

/// Concurrent per-key last-update index. See the module documentation.
pub struct PresenceIndex<K, V> {
    buckets: Box<[AtomicPtr<KeyEntry<K, V>>]>,
    mask: usize,
    entries: AtomicUsize,
}

// SAFETY: the index owns its entries and state records; all shared access
// goes through atomics, and the `K: Send + Sync`, `V: Send + Sync` bounds
// keep the payload thread-safe, so the raw-pointer fields do not impede Send.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for PresenceIndex<K, V> {}
// SAFETY: same argument as `Send` — shared readers only follow atomically
// published pointers to immutable entries/records.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for PresenceIndex<K, V> {}

impl<K, V> PresenceIndex<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    /// Creates an index with the default bucket count.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates an index with at least `buckets` hash buckets (rounded up to
    /// a power of two, minimum 2).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(2);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicPtr::new(ptr::null_mut()));
        PresenceIndex {
            buckets: v.into_boxed_slice(),
            mask: n - 1,
            entries: AtomicUsize::new(0),
        }
    }

    fn bucket_of(&self, key: &K) -> &AtomicPtr<KeyEntry<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.buckets[(hasher.finish() as usize) & self.mask]
    }

    /// Finds the entry for `key`, inserting a fresh (absent, ts 0) entry if
    /// none exists. Returns a reference valid for the index's lifetime
    /// (entries are never unlinked before `Drop`).
    fn entry(&self, key: &K) -> &KeyEntry<K, V> {
        let bucket = self.bucket_of(key);
        // Fast path: the key is usually already in the chain.
        // ORDERING: Acquire pairs with the Release bucket-head CAS in the insert
        // loop below, so a found entry's fields (key, initial state) are visible.
        if let Some(found) = Self::find(bucket.load(Ordering::Acquire), key) {
            return found;
        }
        let fresh = Box::into_raw(Box::new(KeyEntry {
            key: key.clone(),
            state: Atomic::new(KeyState {
                present: false,
                value: None,
                ts: Timestamp::ZERO,
            }),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        loop {
            // ORDERING: Acquire pairs with the Release bucket-head CAS so the chain we
            // re-walk includes every published entry.
            let head = bucket.load(Ordering::Acquire);
            if let Some(found) = Self::find(head, key) {
                // Someone else inserted it; discard our speculative entry.
                // SAFETY: `fresh` was never published.
                unsafe {
                    let boxed = Box::from_raw(fresh);
                    // The unpublished entry owns its initial state record.
                    drop(
                        boxed
                            .state
                            .load(Ordering::Relaxed, crossbeam_epoch::unprotected())
                            .into_owned(),
                    );
                    drop(boxed);
                }
                return found;
            }
            // SAFETY: `fresh` is still unpublished — this thread has exclusive access
            // until the CAS below succeeds.
            unsafe { (*fresh).next.store(head, Ordering::Relaxed) };
            if bucket
                // ORDERING: Release publishes the fully initialised entry (key, state
                // record, next link) to the Acquire bucket loads above; failure re-reads the
                // head with Acquire to re-walk the updated chain.
                .compare_exchange(head, fresh, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                self.entries.fetch_add(1, Ordering::Relaxed);
                // SAFETY: the CAS published `fresh` into the bucket chain; entries are never
                // unlinked before `Drop` takes `&mut self`, so the reference is valid for
                // the index's (and hence the caller's borrow) lifetime.
                return unsafe { &*fresh };
            }
        }
    }

    fn find<'a>(mut cur: *mut KeyEntry<K, V>, key: &K) -> Option<&'a KeyEntry<K, V>> {
        while !cur.is_null() {
            // SAFETY: `cur` came from a bucket head or `next` link published by the
            // Release CAS in `entry`; entries are never unlinked before `Drop`.
            let entry = unsafe { &*cur };
            if &entry.key == key {
                return Some(entry);
            }
            // ORDERING: Acquire pairs with the Relaxed store + Release CAS publication
            // ordering in `entry` — the `next` field is written before the entry is
            // published, so a non-null next pointer is always a fully initialised entry.
            cur = entry.next.load(Ordering::Acquire);
        }
        None
    }

    /// Pre-loads the index with an initially present key (used when a tree
    /// is bulk-constructed from existing entries before any concurrent
    /// operation starts).
    pub fn prefill(&self, key: K, value: V, guard: &Guard) {
        let entry = self.entry(&key);
        let new = Owned::new(KeyState {
            present: true,
            value: Some(value),
            ts: Timestamp::ZERO,
        });
        // ORDERING: AcqRel — Release publishes the new state record, Acquire orders
        // the swap after construction-time readers (prefill races no concurrent
        // resolve by contract, but a torn record must still never be observable).
        let old = entry.state.swap(new, Ordering::AcqRel, guard);
        if !old.is_null() {
            // SAFETY: `old` was the published state record; after the swap no new
            // reader can reach it, and current readers hold guards, so `defer_destroy`
            // is the unique retirement (swap returns the old pointer exactly once).
            unsafe { guard.defer_destroy(old) };
        }
    }

    /// Resolves the update `(key, ts, kind)` against the index, publishing
    /// the decision in `decision_cell` (first publisher wins) and advancing
    /// the key's state exactly once. Every helper of the same descriptor
    /// returns the same [`Decision`]; the second element of the returned pair
    /// is `true` for exactly the one caller whose CAS advanced the index
    /// (useful for exactly-once accounting such as size counters).
    ///
    /// Must be called while the descriptor with timestamp `ts` is being
    /// executed at the fictive root, i.e. while every update with a smaller
    /// timestamp has already been resolved — the tree guarantees this by
    /// construction (strict queue order at the root).
    pub fn resolve(
        &self,
        key: &K,
        ts: Timestamp,
        kind: &UpdateKind<V>,
        decision_cell: &OnceLock<Decision<V>>,
        guard: &Guard,
    ) -> (Decision<V>, bool) {
        let entry = self.entry(key);
        loop {
            // ORDERING: Acquire pairs with the Release half of the state CAS below, so
            // the record's fields are visible before we read them.
            let state = entry.state.load(Ordering::Acquire, guard);
            // The entry always carries a state record.
            // SAFETY: a `KeyEntry` always carries a non-null state record (installed at
            // construction, only ever swapped for another record) and records are
            // retired via `defer_destroy`, so the deref is valid under `guard`.
            let state_ref = unsafe { state.deref() };
            if state_ref.ts >= ts {
                // Already applied (possibly by a faster helper of this very
                // descriptor); the decision was published before the index
                // advanced, so it must be available.
                return (
                    decision_cell
                        .get()
                        .expect("presence index advanced past ts before decision was published")
                        .clone(),
                    false,
                );
            }
            // Compute the decision from the (stable) pre-state.
            let computed = match kind {
                UpdateKind::Insert(_) => Decision {
                    success: !state_ref.present,
                    prior_value: state_ref.value.clone(),
                },
                // A replace always takes effect; `prior_value` carries the
                // overwritten value (None when the key was absent), which is
                // both the caller's return value and the augmentation delta's
                // subtrahend.
                UpdateKind::Replace(_) => Decision {
                    success: true,
                    prior_value: state_ref.value.clone(),
                },
                UpdateKind::Remove => Decision {
                    success: state_ref.present,
                    prior_value: state_ref.value.clone(),
                },
            };
            // First publisher wins; everyone uses the published decision.
            let decision = decision_cell.get_or_init(|| computed).clone();
            // Advance the index. Unsuccessful updates still advance the
            // timestamp so stale helpers can detect that resolution is done.
            let new_state = match (&decision.success, kind) {
                (true, UpdateKind::Insert(v)) | (true, UpdateKind::Replace(v)) => KeyState {
                    present: true,
                    value: Some(v.clone()),
                    ts,
                },
                (true, UpdateKind::Remove) => KeyState {
                    present: false,
                    value: None,
                    ts,
                },
                (false, _) => KeyState {
                    present: state_ref.present,
                    value: state_ref.value.clone(),
                    ts,
                },
            };
            // ORDERING: AcqRel — Release publishes the new record's fields to the
            // Acquire load at the top of the loop (and to every reader), Acquire orders
            // the advance after the decision publication in `decision_cell`; failure
            // Acquire re-reads the state another helper installed.
            match entry.state.compare_exchange(
                state,
                Owned::new(new_state),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => {
                    // SAFETY: our CAS unlinked `state` from the entry; exactly one helper wins
                    // the CAS for a given predecessor record, so it is retired exactly once,
                    // and concurrent readers are protected by their guards.
                    unsafe { guard.defer_destroy(state) };
                    return (decision, true);
                }
                Err(_) => {
                    // Another helper advanced the entry; loop and re-examine
                    // (we will take the `ts >= ts` branch or retry against
                    // the new state).
                }
            }
        }
    }

    /// Current snapshot of `key`'s state (absent keys report `present =
    /// false` with timestamp zero). Primarily for tests and diagnostics.
    pub fn snapshot(&self, key: &K, guard: &Guard) -> PresenceSnapshot<V> {
        let bucket = self.bucket_of(key);
        // ORDERING: Acquire pairs with the Release bucket-head CAS in `entry`.
        match Self::find(bucket.load(Ordering::Acquire), key) {
            None => PresenceSnapshot {
                present: false,
                value: None,
                last_ts: Timestamp::ZERO,
            },
            Some(entry) => {
                // ORDERING: Acquire pairs with the Release state CAS in `resolve`.
                let state = entry.state.load(Ordering::Acquire, guard);
                // SAFETY: state records are non-null by construction and epoch-protected
                // under `guard`; see `resolve`.
                let state_ref = unsafe { state.deref() };
                PresenceSnapshot {
                    present: state_ref.present,
                    value: state_ref.value.clone(),
                    last_ts: state_ref.ts,
                }
            }
        }
    }

    /// Whether `key` is currently marked present.
    pub fn is_present(&self, key: &K, guard: &Guard) -> bool {
        self.contains_key(key, guard)
    }

    /// Lock-free snapshot read of `key`'s current value: one bucket walk and
    /// one state-record load, no allocation, and the value is cloned only
    /// when the key is present (this *is* the caller's return value).
    ///
    /// Linearizes at the atomic load of the state record: updates are applied
    /// to the index exactly once, in strict root-queue timestamp order, at
    /// their linearization point (see [`PresenceIndex::resolve`]), so the
    /// loaded record is the authoritative outcome of the last linearized
    /// update on `key`. This is the tree's `O(1)` read fast path.
    pub fn read_value(&self, key: &K, guard: &Guard) -> Option<V> {
        let bucket = self.bucket_of(key);
        let entry = Self::find(bucket.load(Ordering::Acquire), key)?; // ORDERING: pairs with the Release bucket-head CAS in `entry`.
        let state = entry.state.load(Ordering::Acquire, guard); // ORDERING: pairs with the Release state CAS in `resolve` — this load is the read's linearization point.
                                                                // SAFETY: state records are non-null by construction and epoch-protected
                                                                // under `guard`; see `resolve`.
        let state_ref = unsafe { state.deref() };
        if state_ref.present {
            state_ref.value.clone()
        } else {
            None
        }
    }

    /// Lock-free presence test: like [`PresenceIndex::read_value`] but never
    /// clones the value — the whole read is a bucket walk plus one boolean
    /// field load. Backs the tree's allocation-free `contains`.
    pub fn contains_key(&self, key: &K, guard: &Guard) -> bool {
        let bucket = self.bucket_of(key);
        // ORDERING: pairs with the Release bucket-head CAS in `entry`.
        match Self::find(bucket.load(Ordering::Acquire), key) {
            None => false,
            Some(entry) => {
                let state = entry.state.load(Ordering::Acquire, guard); // ORDERING: pairs with the Release state CAS in `resolve` — the read's linearization point.
                                                                        // SAFETY: state records are non-null by construction and epoch-protected
                                                                        // under `guard`; see `resolve`.
                unsafe { state.deref() }.present
            }
        }
    }

    /// Number of distinct keys ever touched by an update (present or not).
    pub fn tracked_keys(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Number of hash buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl<K, V> Default for PresenceIndex<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for PresenceIndex<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free every bucket chain and the state record of
        // every entry.
        for bucket in self.buckets.iter() {
            let mut cur = bucket.load(Ordering::Relaxed);
            while !cur.is_null() {
                // SAFETY: `Drop` takes `&mut self`, so no other thread can reach the chain;
                // each entry was allocated with `Box::into_raw` in `entry` and is reclaimed
                // exactly once by this walk.
                let entry = unsafe { Box::from_raw(cur) };
                // SAFETY: exclusive access (see above); the entry's state record is always
                // non-null and owned solely by the entry at this point.
                unsafe {
                    let state = entry
                        .state
                        .load(Ordering::Relaxed, crossbeam_epoch::unprotected());
                    if !state.is_null() {
                        drop(state.into_owned());
                    }
                }
                cur = entry.next.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;
    use std::sync::Arc;

    type Index = PresenceIndex<i64, i64>;

    fn resolve_one(index: &Index, key: i64, ts: u64, kind: UpdateKind<i64>) -> Decision<i64> {
        let cell = OnceLock::new();
        let guard = epoch::pin();
        index.resolve(&key, Timestamp(ts), &kind, &cell, &guard).0
    }

    #[test]
    fn insert_then_remove_then_insert() {
        let index = Index::with_buckets(64);
        let d = resolve_one(&index, 5, 1, UpdateKind::Insert(50));
        assert!(d.success);
        assert_eq!(d.prior_value, None);

        let d = resolve_one(&index, 5, 2, UpdateKind::Insert(51));
        assert!(!d.success, "duplicate insert must fail");
        assert_eq!(d.prior_value, Some(50));

        let d = resolve_one(&index, 5, 3, UpdateKind::Remove);
        assert!(d.success);
        assert_eq!(d.prior_value, Some(50));

        let d = resolve_one(&index, 5, 4, UpdateKind::Remove);
        assert!(!d.success, "removing an absent key must fail");

        let d = resolve_one(&index, 5, 5, UpdateKind::Insert(52));
        assert!(d.success, "re-inserting after removal must succeed");

        let guard = epoch::pin();
        let snap = index.snapshot(&5, &guard);
        assert!(snap.present);
        assert_eq!(snap.value, Some(52));
        assert_eq!(snap.last_ts, Timestamp(5));
    }

    #[test]
    fn replace_always_succeeds_and_reports_the_prior_value() {
        let index = Index::with_buckets(64);
        let d = resolve_one(&index, 8, 1, UpdateKind::Replace(80));
        assert!(d.success, "replace of an absent key applies");
        assert_eq!(d.prior_value, None);

        let d = resolve_one(&index, 8, 2, UpdateKind::Replace(81));
        assert!(d.success, "replace of a present key applies");
        assert_eq!(d.prior_value, Some(80));

        let guard = epoch::pin();
        let snap = index.snapshot(&8, &guard);
        assert!(snap.present);
        assert_eq!(snap.value, Some(81));

        let d = resolve_one(&index, 8, 3, UpdateKind::Remove);
        assert!(d.success);
        assert_eq!(d.prior_value, Some(81));
    }

    #[test]
    fn remove_on_untouched_key_fails() {
        let index = Index::with_buckets(64);
        let d = resolve_one(&index, 99, 1, UpdateKind::Remove);
        assert!(!d.success);
        assert_eq!(d.prior_value, None);
        let guard = epoch::pin();
        assert!(!index.is_present(&99, &guard));
    }

    #[test]
    fn prefill_marks_keys_present() {
        let index = Index::with_buckets(64);
        {
            let guard = epoch::pin();
            index.prefill(7, 70, &guard);
        }
        let d = resolve_one(&index, 7, 1, UpdateKind::Insert(71));
        assert!(!d.success, "prefilled key is already present");
        let d = resolve_one(&index, 7, 2, UpdateKind::Remove);
        assert!(d.success);
        assert_eq!(d.prior_value, Some(70));
    }

    #[test]
    fn helpers_of_the_same_descriptor_agree() {
        // Simulate many helpers racing to resolve the same descriptor: all
        // must return the identical decision and the index must advance once.
        let index = Arc::new(Index::with_buckets(64));
        {
            let guard = epoch::pin();
            index.prefill(1, 10, &guard);
        }
        let cell: Arc<OnceLock<Decision<i64>>> = Arc::new(OnceLock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let index = Arc::clone(&index);
            let cell = Arc::clone(&cell);
            handles.push(std::thread::spawn(move || {
                let guard = epoch::pin();
                index.resolve(&1, Timestamp(7), &UpdateKind::Remove, &cell, &guard)
            }));
        }
        let results: Vec<(Decision<i64>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (d, _) in &results {
            assert_eq!(d, &results[0].0);
        }
        assert!(results[0].0.success);
        assert_eq!(
            results.iter().filter(|(_, applied)| *applied).count(),
            1,
            "exactly one helper may report having advanced the index"
        );
        let guard = epoch::pin();
        let snap = index.snapshot(&1, &guard);
        assert_eq!(snap.last_ts, Timestamp(7));
        assert!(!snap.present);
    }

    #[test]
    fn late_helper_observes_published_decision() {
        // A helper that arrives after the index already advanced past its
        // timestamp must return the decision published earlier, not
        // recompute one from the newer state.
        let index = Index::with_buckets(64);
        let guard = epoch::pin();
        let cell_insert = OnceLock::new();
        let (d1, applied) = index.resolve(
            &3,
            Timestamp(1),
            &UpdateKind::Insert(30),
            &cell_insert,
            &guard,
        );
        assert!(d1.success);
        assert!(applied);
        // A later operation removes the key, advancing the index to ts 2.
        let cell_remove = OnceLock::new();
        index.resolve(&3, Timestamp(2), &UpdateKind::Remove, &cell_remove, &guard);
        // A stale helper of the ts-1 insert now arrives.
        let (d_late, applied_late) = index.resolve(
            &3,
            Timestamp(1),
            &UpdateKind::Insert(30),
            &cell_insert,
            &guard,
        );
        assert_eq!(d_late, d1, "stale helper must see the published decision");
        assert!(!applied_late, "a stale helper never advances the index");
    }

    #[test]
    fn distinct_keys_resolve_independently_under_concurrency() {
        // Each thread owns a disjoint key set; the only sharing is the hash
        // buckets (kept deliberately small to force chain collisions). The
        // per-key timestamp-order precondition of `resolve` is respected
        // because no two threads ever touch the same key.
        const KEYS: i64 = 500;
        const THREADS: i64 = 4;
        let index = Arc::new(Index::with_buckets(32)); // force collisions
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                for k in 0..KEYS {
                    let key = t * KEYS + k;
                    let ts = (key as u64) + 1;
                    let cell = OnceLock::new();
                    let guard = epoch::pin();
                    index.resolve(&key, Timestamp(ts), &UpdateKind::Insert(key), &cell, &guard);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let guard = epoch::pin();
        for key in 0..THREADS * KEYS {
            assert!(index.is_present(&key, &guard), "key {key} must be present");
        }
        assert_eq!(index.tracked_keys() as i64, THREADS * KEYS);
    }

    #[test]
    fn read_value_and_contains_key_track_resolutions() {
        let index = Index::with_buckets(64);
        let guard = epoch::pin();
        assert_eq!(index.read_value(&5, &guard), None);
        assert!(!index.contains_key(&5, &guard));

        resolve_one(&index, 5, 1, UpdateKind::Insert(50));
        assert_eq!(index.read_value(&5, &guard), Some(50));
        assert!(index.contains_key(&5, &guard));

        resolve_one(&index, 5, 2, UpdateKind::Replace(51));
        assert_eq!(index.read_value(&5, &guard), Some(51));

        resolve_one(&index, 5, 3, UpdateKind::Remove);
        assert_eq!(index.read_value(&5, &guard), None);
        assert!(!index.contains_key(&5, &guard));

        index.prefill(6, 60, &guard);
        assert_eq!(index.read_value(&6, &guard), Some(60));
    }

    #[test]
    fn bucket_count_is_power_of_two() {
        let index = Index::with_buckets(1000);
        assert_eq!(index.bucket_count(), 1024);
        let index = Index::with_buckets(0);
        assert_eq!(index.bucket_count(), 2);
    }
}
