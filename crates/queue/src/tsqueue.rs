//! The timestamped descriptor queue (§II-D).
//!
//! [`TsQueue`] is a Michael–Scott queue in which every node carries the
//! timestamp of the descriptor it holds. Timestamps in a queue are strictly
//! increasing from head to tail (Theorem 1), and the queue exploits this to
//! provide the three operations the helping scheme needs:
//!
//! * [`TsQueue::peek`] — read the head descriptor without removing it;
//! * [`TsQueue::push_if`] — append a descriptor with an externally assigned
//!   timestamp *only if it has not been appended before* (exactly-once
//!   insertion, §II-C); the check is a single comparison against the tail
//!   timestamp;
//! * [`TsQueue::pop_if`] — remove the head descriptor *only if it still is*
//!   the descriptor with the given timestamp (exactly-once removal, §II-C).
//!
//! The root queue additionally allocates timestamps:
//! [`TsQueue::enqueue_assign`] reads the tail timestamp, increments it and
//! appends in one CAS loop, which yields the lock-free timestamp allocation
//! mechanism of §II-D. The wait-free variant (Lemma 1) is layered on top in
//! [`crate::root`].
//!
//! The queue is generic over the descriptor handle `T`; the tree uses
//! `Arc<Descriptor>`. Nodes unlinked by `pop_if` are retired through
//! `crossbeam-epoch`.

use crossbeam_epoch::{Atomic, Guard, Owned, Shared};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

use crate::timestamp::Timestamp;

/// One queue node: a descriptor handle plus its timestamp.
struct QNode<T> {
    ts: Timestamp,
    /// `None` only for the initial dummy node; every enqueued node holds a
    /// descriptor. Former descriptor nodes become dummies after `pop_if`,
    /// keeping their item alive until the node is reclaimed (harmless: the
    /// handle is reference counted).
    item: Option<T>,
    next: Atomic<QNode<T>>,
}

/// A Michael–Scott queue with per-node timestamps and exactly-once
/// conditional insertion/removal. See the module documentation.
pub struct TsQueue<T> {
    head: Atomic<QNode<T>>,
    tail: Atomic<QNode<T>>,
}

// SAFETY: the queue owns its nodes, all shared mutation goes through
// epoch-protected atomics, and `T: Send + Sync` keeps the carried handles
// thread-safe when the queue moves across threads.
unsafe impl<T: Send + Sync> Send for TsQueue<T> {}
// SAFETY: same argument as `Send` — concurrent access only follows
// Release-published links and clones `T` through `&` (`T: Sync`).
unsafe impl<T: Send + Sync> Sync for TsQueue<T> {}

impl<T> TsQueue<T> {
    /// Creates an empty queue whose dummy node carries `watermark`.
    ///
    /// Descriptors with timestamps `<= watermark` are permanently rejected by
    /// [`TsQueue::push_if`]. Fresh trees use `Timestamp::ZERO`; subtrees
    /// created by a rebuild triggered by operation `Op` use
    /// `Op.timestamp - 1` so that `Op` itself and later operations can enter
    /// while all earlier operations (already accounted for by the rebuild)
    /// cannot (§II-E).
    pub fn new(watermark: Timestamp) -> Self {
        let dummy = Owned::new(QNode {
            ts: watermark,
            item: None,
            next: Atomic::null(),
        })
        // SAFETY: the queue is still being constructed, so no other thread can
        // observe the dummy; `unprotected()` is fine for a single-threaded store.
        .into_shared(unsafe { crossbeam_epoch::unprotected() });
        TsQueue {
            head: Atomic::from(dummy),
            tail: Atomic::from(dummy),
        }
    }

    /// Appends `item`, assigning it the next timestamp after the current
    /// tail, and returns the assigned timestamp. This is the lock-free root
    /// queue enqueue of §II-D: take the tail timestamp, increment, CAS the
    /// new node in; on contention retry from the new tail.
    pub fn enqueue_assign(&self, item: T, guard: &Guard) -> Timestamp {
        let mut new = Owned::new(QNode {
            ts: Timestamp::ZERO,
            item: Some(item),
            next: Atomic::null(),
        });
        loop {
            // ORDERING: Acquire pairs with the Release tail CASes below, so the node
            // `tail` points at is fully initialised.
            let tail = self.tail.load(Acquire, guard);
            // Tail is never null: the queue always contains at least the dummy.
            // SAFETY: `tail` was loaded from an epoch-protected slot under `guard`;
            // nodes are retired only via `defer_destroy` in `pop_if`.
            let tail_ref = unsafe { tail.deref() };
            // ORDERING: Acquire pairs with the Release link CAS below — a non-null
            // `next` is a fully initialised node.
            let next = tail_ref.next.load(Acquire, guard);
            if !next.is_null() {
                // Tail is lagging; help swing it forward and retry.
                let _ = self
                    .tail
                    // ORDERING: Release keeps the helped-forward tail publication consistent
                    // with the enqueuer's own swing; failure only retries (Relaxed).
                    .compare_exchange(tail, next, Release, Relaxed, guard);
                continue;
            }
            let ts = tail_ref.ts.next();
            new.ts = ts;
            // ORDERING: success Release publishes the initialised node (ts, item) to
            // the Acquire `next`/tail loads everywhere; failure only retries (Relaxed).
            match tail_ref
                .next
                .compare_exchange(Shared::null(), new, Release, Relaxed, guard)
            {
                Ok(appended) => {
                    // ORDERING: Release publishes the new tail; losing this race means a peer
                    // already helped, so the result is ignored.
                    let _ = self
                        .tail
                        .compare_exchange(tail, appended, Release, Relaxed, guard);
                    return ts;
                }
                Err(e) => {
                    // Another enqueuer won; recover the allocation and retry.
                    new = e.new;
                }
            }
        }
    }

    /// Appends `item` with the externally assigned timestamp `ts`, unless a
    /// descriptor with timestamp `>= ts` has already been appended (in which
    /// case `item` has been pushed by another helper — or is older than the
    /// queue's watermark — and the queue is left unmodified).
    ///
    /// Returns `true` if this call performed the insertion.
    ///
    /// Correct usage (guaranteed by the tree): `push_if(ts, ..)` is only
    /// called while the parent of this queue's node is executing the
    /// descriptor with timestamp `ts`, so timestamps still arrive in strictly
    /// increasing order and Theorem 1 is preserved.
    pub fn push_if(&self, ts: Timestamp, item: T, guard: &Guard) -> bool {
        let mut new = Owned::new(QNode {
            ts,
            item: Some(item),
            next: Atomic::null(),
        });
        loop {
            // ORDERING: Acquire pairs with the Release tail CASes, so `tail_ref.ts`
            // below reads a fully initialised node.
            let tail = self.tail.load(Acquire, guard);
            // SAFETY: `tail` came from an epoch-protected slot under `guard`; nodes
            // are retired only via `defer_destroy`.
            let tail_ref = unsafe { tail.deref() };
            if tail_ref.ts >= ts {
                // Already inserted by another helper (or pre-dates this
                // queue's watermark). `new` is dropped here, releasing its
                // handle clone.
                return false;
            }
            // ORDERING: Acquire pairs with the Release link CAS below.
            let next = tail_ref.next.load(Acquire, guard);
            if !next.is_null() {
                // ORDERING: Release keeps the helped tail consistent; failure retries.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Release, Relaxed, guard);
                continue;
            }
            // ORDERING: success Release publishes the initialised node to every
            // Acquire load of this link; failure only retries (Relaxed).
            match tail_ref
                .next
                .compare_exchange(Shared::null(), new, Release, Relaxed, guard)
            {
                Ok(appended) => {
                    // ORDERING: Release publishes the new tail; the race loser is ignored.
                    let _ = self
                        .tail
                        .compare_exchange(tail, appended, Release, Relaxed, guard);
                    return true;
                }
                Err(e) => {
                    new = e.new;
                }
            }
        }
    }

    /// Returns the timestamp and a clone of the head descriptor, or `None`
    /// if the queue is currently empty.
    pub fn peek(&self, guard: &Guard) -> Option<(Timestamp, T)>
    where
        T: Clone,
    {
        // ORDERING: Acquire pairs with the Release head CAS in `pop_if`.
        let head = self.head.load(Acquire, guard);
        // SAFETY: `head` is epoch-protected under `guard` (retired only via
        // `defer_destroy`).
        // ORDERING: Acquire pairs with the Release link CAS in the enqueue paths —
        // a non-null `next` is a fully initialised node.
        let next = unsafe { head.deref() }.next.load(Acquire, guard);
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` was published by the Release link CAS and is
        // epoch-protected under `guard`.
        let node = unsafe { next.deref() };
        let item = node
            .item
            .as_ref()
            .expect("non-dummy queue node must hold a descriptor")
            .clone();
        Some((node.ts, item))
    }

    /// Removes the head descriptor if (and only if) it still is the
    /// descriptor with timestamp `ts`. Returns `true` if this call performed
    /// the removal, `false` if another helper already removed it.
    ///
    /// Like the paper's `pop_if`, this must only be called for a timestamp
    /// that was at some point observed at the head of this queue; it never
    /// removes from the middle.
    pub fn pop_if(&self, ts: Timestamp, guard: &Guard) -> bool {
        loop {
            // ORDERING: Acquire pairs with the Release head CAS below, so the cursor
            // node (and the unlink that published it) is visible.
            let head = self.head.load(Acquire, guard);
            // SAFETY: `head` is epoch-protected under `guard`; `defer_destroy` waits
            // out all current guards before freeing.
            let head_ref = unsafe { head.deref() };
            // ORDERING: Acquire pairs with the Release link CAS in the enqueue paths.
            let next = head_ref.next.load(Acquire, guard);
            if next.is_null() {
                // Queue drained: the descriptor was already removed.
                return false;
            }
            // ORDERING: Acquire pairs with the Release tail CASes, so the head == tail
            // comparison below sees a tail at least as fresh as `head`.
            let tail = self.tail.load(Acquire, guard);
            if head == tail {
                // Tail lags behind an in-progress enqueue; help it forward so
                // we never unlink the node the tail still points to.
                // ORDERING: Release keeps the helped tail consistent for enqueuers'
                // Acquire loads; failure retries.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Release, Relaxed, guard);
                continue;
            }
            // SAFETY: `next` was published by the Release link CAS and is
            // epoch-protected under `guard`.
            if unsafe { next.deref() }.ts != ts {
                // Timestamps are strictly increasing, so a different head
                // timestamp means ours was already popped.
                return false;
            }
            // ORDERING: success Release publishes the head advance (making the item
            // removal visible to `peek`'s Acquire head load) and orders it after the
            // `ts` check above; failure re-derives everything, so Relaxed suffices.
            match self
                .head
                .compare_exchange(head, next, Release, Relaxed, guard)
            {
                Ok(_) => {
                    // The old dummy is unreachable for new readers; readers
                    // that still hold it are protected by their epoch guard.
                    // SAFETY: our CAS unlinked `head` — exactly one popper wins for a given
                    // predecessor, so the node is retired exactly once, and readers still
                    // holding it are protected by their epoch guards.
                    unsafe { guard.defer_destroy(head) };
                    return true;
                }
                Err(_) => {
                    // Lost the race; re-check whether our descriptor is still
                    // at the head (it will not be — timestamps increase — but
                    // the loop re-derives that instead of assuming it).
                    continue;
                }
            }
        }
    }

    /// Timestamp carried by the current tail node: the timestamp of the most
    /// recently enqueued descriptor, or the watermark if nothing was ever
    /// enqueued. Monotonically non-decreasing over time.
    pub fn last_timestamp(&self, guard: &Guard) -> Timestamp {
        loop {
            // ORDERING: Acquire pairs with the Release tail CASes, so `tail_ref.ts`
            // is read from an initialised node.
            let tail = self.tail.load(Acquire, guard);
            // SAFETY: `tail` is epoch-protected under `guard`.
            let tail_ref = unsafe { tail.deref() };
            // ORDERING: Acquire pairs with the Release link CAS in the enqueue paths.
            let next = tail_ref.next.load(Acquire, guard);
            if next.is_null() {
                return tail_ref.ts;
            }
            // Help the lagging tail so the answer reflects completed enqueues.
            // ORDERING: Release keeps the helped tail consistent; failure retries.
            let _ = self
                .tail
                .compare_exchange(tail, next, Release, Relaxed, guard);
        }
    }

    /// `true` if no descriptor is currently queued.
    pub fn is_empty(&self, guard: &Guard) -> bool {
        // ORDERING: Acquire pairs with the Release head CAS in `pop_if`.
        let head = self.head.load(Acquire, guard);
        // SAFETY: `head` is epoch-protected under `guard`.
        // ORDERING: Acquire pairs with the Release link CAS in the enqueue paths.
        unsafe { head.deref() }.next.load(Acquire, guard).is_null()
    }

    /// Timestamps of all queued descriptors, head to tail. Only used by
    /// tests and debug assertions (takes a consistent-enough snapshot by
    /// walking `next` pointers under the guard).
    pub fn timestamps(&self, guard: &Guard) -> Vec<Timestamp> {
        let mut out = Vec::new();
        // ORDERING: Acquire pairs with the Release head CAS in `pop_if`.
        let mut cur = self.head.load(Acquire, guard);
        loop {
            // SAFETY: `cur` is epoch-protected under `guard` (head or a published
            // link).
            // ORDERING: Acquire pairs with the Release link CAS in the enqueue paths.
            let next = unsafe { cur.deref() }.next.load(Acquire, guard);
            if next.is_null() {
                return out;
            }
            // SAFETY: `next` was published by the Release link CAS and is
            // epoch-protected under `guard`.
            out.push(unsafe { next.deref() }.ts);
            cur = next;
        }
    }
}

impl<T> Drop for TsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the list and free every node, including the
        // dummy. Items (descriptor handles) are dropped with their nodes.
        // SAFETY: `drop` takes `&mut self`, so no other thread can touch the
        // queue; walking with the unprotected guard and freeing every node in
        // place (via `into_owned`) is therefore sound.
        unsafe {
            let guard = crossbeam_epoch::unprotected();
            let mut cur = self.head.load(Relaxed, guard);
            while !cur.is_null() {
                let next = cur.deref().next.load(Relaxed, guard);
                drop(cur.into_owned());
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn enqueue_assign_allocates_consecutive_timestamps() {
        let q: TsQueue<u32> = TsQueue::new(Timestamp::ZERO);
        let guard = epoch::pin();
        assert_eq!(q.enqueue_assign(10, &guard), Timestamp(1));
        assert_eq!(q.enqueue_assign(20, &guard), Timestamp(2));
        assert_eq!(q.enqueue_assign(30, &guard), Timestamp(3));
        assert_eq!(
            q.timestamps(&guard),
            vec![Timestamp(1), Timestamp(2), Timestamp(3)]
        );
        assert_eq!(q.last_timestamp(&guard), Timestamp(3));
    }

    #[test]
    fn peek_and_pop_if_walk_the_queue_in_order() {
        let q: TsQueue<&str> = TsQueue::new(Timestamp::ZERO);
        let guard = epoch::pin();
        let t1 = q.enqueue_assign("a", &guard);
        let t2 = q.enqueue_assign("b", &guard);
        assert_eq!(q.peek(&guard), Some((t1, "a")));
        assert!(q.pop_if(t1, &guard));
        assert!(!q.pop_if(t1, &guard), "double pop must be a no-op");
        assert_eq!(q.peek(&guard), Some((t2, "b")));
        assert!(q.pop_if(t2, &guard));
        assert_eq!(q.peek(&guard), None);
        assert!(q.is_empty(&guard));
    }

    #[test]
    fn push_if_is_idempotent_per_timestamp() {
        let q: TsQueue<&str> = TsQueue::new(Timestamp::ZERO);
        let guard = epoch::pin();
        assert!(q.push_if(Timestamp(5), "x", &guard));
        assert!(!q.push_if(Timestamp(5), "x-again", &guard));
        assert!(!q.push_if(Timestamp(3), "older", &guard));
        assert!(q.push_if(Timestamp(9), "y", &guard));
        assert_eq!(q.timestamps(&guard), vec![Timestamp(5), Timestamp(9)]);
    }

    #[test]
    fn watermark_rejects_stale_descriptors() {
        let q: TsQueue<&str> = TsQueue::new(Timestamp(100));
        let guard = epoch::pin();
        assert!(!q.push_if(Timestamp(100), "stale", &guard));
        assert!(!q.push_if(Timestamp(42), "staler", &guard));
        assert!(q.push_if(Timestamp(101), "fresh", &guard));
        assert_eq!(q.last_timestamp(&guard), Timestamp(101));
    }

    #[test]
    fn enqueue_assign_after_drain_continues_timestamps() {
        let q: TsQueue<u32> = TsQueue::new(Timestamp::ZERO);
        let guard = epoch::pin();
        let t1 = q.enqueue_assign(1, &guard);
        assert!(q.pop_if(t1, &guard));
        let t2 = q.enqueue_assign(2, &guard);
        assert_eq!(t2, Timestamp(2), "timestamps never repeat after a drain");
    }

    #[test]
    fn pop_if_wrong_timestamp_is_noop() {
        let q: TsQueue<u32> = TsQueue::new(Timestamp::ZERO);
        let guard = epoch::pin();
        let t1 = q.enqueue_assign(1, &guard);
        assert!(!q.pop_if(t1.next(), &guard));
        assert!(!q.pop_if(Timestamp::ZERO, &guard));
        assert_eq!(q.peek(&guard), Some((t1, 1)));
    }

    #[test]
    fn concurrent_enqueue_assign_yields_unique_dense_timestamps() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let q: Arc<TsQueue<usize>> = Arc::new(TsQueue::new(Timestamp::ZERO));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::with_capacity(PER_THREAD);
                for i in 0..PER_THREAD {
                    let guard = epoch::pin();
                    got.push(q.enqueue_assign(t * PER_THREAD + i, &guard).get());
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=(THREADS * PER_THREAD) as u64).collect();
        assert_eq!(all, expect, "timestamps must be unique and dense");
        let guard = epoch::pin();
        let ts = q.timestamps(&guard);
        assert!(
            ts.windows(2).all(|w| w[0] < w[1]),
            "queue order must be sorted"
        );
        assert_eq!(ts.len(), THREADS * PER_THREAD);
    }

    #[test]
    fn concurrent_helpers_pop_each_descriptor_exactly_once() {
        const DESCRIPTORS: u64 = 2_000;
        const THREADS: usize = 4;
        let q: Arc<TsQueue<u64>> = Arc::new(TsQueue::new(Timestamp::ZERO));
        {
            let guard = epoch::pin();
            for i in 0..DESCRIPTORS {
                q.enqueue_assign(i, &guard);
            }
        }
        let popped = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            let popped = Arc::clone(&popped);
            handles.push(std::thread::spawn(move || loop {
                let guard = epoch::pin();
                match q.peek(&guard) {
                    None => break,
                    Some((ts, _item)) => {
                        if q.pop_if(ts, &guard) {
                            popped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(popped.load(Ordering::Relaxed), DESCRIPTORS);
        let guard = epoch::pin();
        assert!(q.is_empty(&guard));
    }

    #[test]
    fn concurrent_push_if_same_timestamp_inserts_once() {
        const ROUNDS: u64 = 500;
        const THREADS: usize = 4;
        let q: Arc<TsQueue<u64>> = Arc::new(TsQueue::new(Timestamp::ZERO));
        for round in 1..=ROUNDS {
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    let guard = epoch::pin();
                    q.push_if(Timestamp(round), round, &guard)
                }));
            }
            let successes = handles
                .into_iter()
                .filter(|_| true)
                .map(|h| h.join().unwrap())
                .filter(|ok| *ok)
                .count();
            assert_eq!(successes, 1, "round {round}: exactly one push_if must win");
        }
        let guard = epoch::pin();
        assert_eq!(q.timestamps(&guard).len() as u64, ROUNDS);
    }

    #[test]
    fn drop_releases_queued_items() {
        struct CountDrop(Arc<AtomicU64>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let q: TsQueue<Arc<CountDrop>> = TsQueue::new(Timestamp::ZERO);
            let guard = epoch::pin();
            for _ in 0..10 {
                q.enqueue_assign(Arc::new(CountDrop(Arc::clone(&drops))), &guard);
            }
        }
        assert_eq!(drops.load(Ordering::Relaxed), 10);
    }
}
