//! The first-write-wins result map (`Op.Processed`, §II-B/§II-C).
//!
//! While an operation is executed in a node `v`, the executing process tries
//! to record the part of the answer contributed by `v` under the key `v.Id`.
//! Crucially, only the *first* recorded value may be kept: a process that
//! stalled and read node state after later operations already modified it
//! would otherwise overwrite a correct partial result with a value from the
//! wrong linearization point (the `⟨v.Id, 5⟩` vs `⟨v.Id, 6⟩` scenario in
//! §II-B). [`FirstWriteMap::try_insert`] therefore implements a linearizable
//! *insert-if-absent*: exactly one writer per key ever succeeds.
//!
//! The map lives inside one operation descriptor and is only read in full
//! once the operation has completed. Scalar operations and aggregate range
//! queries record `O(height + |P|)` entries, so the default configuration is
//! a single CAS-push-front list — optimal for a few dozen entries and one
//! word of overhead per descriptor. A `collect` query, however, records one
//! entry per *visited node*, i.e. `O(range)` entries; descriptors for such
//! queries use [`FirstWriteMap::with_buckets`] to spread the entries over a
//! hashed bucket array so insertion stays effectively constant-time instead
//! of degrading quadratically over wide ranges.

use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct FNode<K, V> {
    key: K,
    value: V,
    next: *mut FNode<K, V>,
}

/// A concurrent insert-once ("first write wins") map.
pub struct FirstWriteMap<K, V> {
    buckets: Box<[AtomicPtr<FNode<K, V>>]>,
    mask: usize,
}

// SAFETY: the map owns its chain nodes and mutates the bucket heads only
// through atomics; `K: Send`/`V: Send` let the payload move with the map.
unsafe impl<K: Send, V: Send> Send for FirstWriteMap<K, V> {}
// SAFETY: shared access only follows Release-published bucket chains and
// reads `K`/`V` through `&`, which `Sync` on both makes thread-safe.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for FirstWriteMap<K, V> {}

impl<K: Eq + Hash, V> Default for FirstWriteMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> FirstWriteMap<K, V> {
    /// Creates an empty map with a single bucket (the right choice for the
    /// `O(height + |P|)`-entry maps of scalar and aggregate operations).
    pub fn new() -> Self {
        Self::with_buckets(1)
    }

    /// Creates an empty map with at least `buckets` hash buckets (rounded up
    /// to a power of two). Use a larger bucket count for descriptors that
    /// record one entry per visited node (`collect` over wide ranges).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicPtr::new(ptr::null_mut()));
        FirstWriteMap {
            buckets: v.into_boxed_slice(),
            mask: n - 1,
        }
    }

    fn bucket(&self, key: &K) -> &AtomicPtr<FNode<K, V>> {
        if self.mask == 0 {
            return &self.buckets[0];
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.buckets[(hasher.finish() as usize) & self.mask]
    }

    /// Inserts `key → value` if `key` is absent. Returns `true` if this call
    /// inserted the value (it "won"), `false` if some value was already
    /// recorded for `key` (the new value is discarded, as required by the
    /// paper's `Processed` semantics).
    pub fn try_insert(&self, key: K, value: V) -> bool {
        let bucket = self.bucket(&key);
        let node = Box::into_raw(Box::new(FNode {
            key,
            value,
            next: ptr::null_mut(),
        }));
        loop {
            // ORDERING: Acquire pairs with the Release bucket CAS below, so every node
            // in the observed chain is fully initialised.
            let head = bucket.load(Ordering::Acquire);
            // Scan the current chain: if the key is already present, some
            // earlier writer won; drop our node and report failure.
            let mut cur = head;
            while !cur.is_null() {
                // SAFETY: `cur` came from a bucket head (or `next` link) published by the
                // Release CAS below; nodes are never unlinked before `Drop`.
                let cur_ref = unsafe { &*cur };
                // SAFETY: `node` is still unpublished — this thread has exclusive access.
                if &cur_ref.key == unsafe { &(*node).key } {
                    // Reclaim the speculative node (never published).
                    // SAFETY: `node` was never published, so this thread still owns it and the
                    // `Box::into_raw` above is reversed exactly once.
                    drop(unsafe { Box::from_raw(node) });
                    return false;
                }
                cur = cur_ref.next;
            }
            // SAFETY: `node` is unpublished until the CAS below succeeds; exclusive
            // access to its `next` field.
            unsafe { (*node).next = head };
            if bucket
                // ORDERING: success Release publishes the initialised node (key, value,
                // next) to the Acquire bucket loads; failure Acquire re-reads the chain a
                // concurrent winner published so the rescan sees its key.
                .compare_exchange(head, node, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
            // Another writer published something; rescan from the new head
            // (our key may now be present).
        }
    }

    /// Returns a clone of the value recorded for `key`, if any.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        // ORDERING: Acquire pairs with the Release bucket CAS in `try_insert`.
        let mut cur = self.bucket(key).load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: `cur` was published by the Release CAS in `try_insert` and nodes
            // are never unlinked before `Drop`.
            let cur_ref = unsafe { &*cur };
            if &cur_ref.key == key {
                return Some(cur_ref.value.clone());
            }
            cur = cur_ref.next;
        }
        None
    }

    /// `true` if a value has been recorded for `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        // ORDERING: Acquire pairs with the Release bucket CAS in `try_insert`.
        let mut cur = self.bucket(key).load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: `cur` was published by the Release CAS in `try_insert` and nodes
            // are never unlinked before `Drop`.
            let cur_ref = unsafe { &*cur };
            if &cur_ref.key == key {
                return true;
            }
            cur = cur_ref.next;
        }
        false
    }

    /// Number of hash buckets (diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of recorded entries (linear walk).
    pub fn len(&self) -> usize {
        let mut n = 0;
        for bucket in self.buckets.iter() {
            // ORDERING: Acquire pairs with the Release bucket CAS in `try_insert`.
            let mut cur = bucket.load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                // SAFETY: `cur` was published by the Release CAS in `try_insert` and stays
                // linked until `Drop`.
                cur = unsafe { (*cur).next };
            }
        }
        n
    }

    /// `true` if no entry has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets
            .iter()
            // ORDERING: Acquire pairs with the Release bucket CAS in `try_insert`.
            .all(|bucket| bucket.load(Ordering::Acquire).is_null())
    }

    /// Folds over all recorded `(key, value)` pairs in unspecified order.
    ///
    /// Intended for assembling the final operation result once the traverse
    /// queue has drained (the map can no longer change at that point, as the
    /// paper notes at the end of §II-B).
    pub fn fold<B, F: FnMut(B, &K, &V) -> B>(&self, init: B, mut f: F) -> B {
        let mut acc = init;
        for bucket in self.buckets.iter() {
            // ORDERING: Acquire pairs with the Release bucket CAS in `try_insert`.
            let mut cur = bucket.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: `cur` was published by the Release CAS in `try_insert` and stays
                // linked until `Drop`.
                let cur_ref = unsafe { &*cur };
                acc = f(acc, &cur_ref.key, &cur_ref.value);
                cur = cur_ref.next;
            }
        }
        acc
    }

    /// Collects all entries into a vector (unspecified order).
    pub fn entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        self.fold(Vec::new(), |mut acc, k, v| {
            acc.push((k.clone(), v.clone()));
            acc
        })
    }
}

impl<K, V> Drop for FirstWriteMap<K, V> {
    fn drop(&mut self) {
        for bucket in self.buckets.iter_mut() {
            let mut cur = *bucket.get_mut();
            while !cur.is_null() {
                // SAFETY: `drop` takes `&mut self`, so no other thread can reach the
                // chains; every node was allocated via `Box::into_raw` in `try_insert` and
                // is reclaimed exactly once by this walk.
                let node = unsafe { Box::from_raw(cur) };
                cur = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_writer_wins() {
        let m: FirstWriteMap<u64, &str> = FirstWriteMap::new();
        assert!(m.try_insert(1, "first"));
        assert!(!m.try_insert(1, "second"));
        assert_eq!(m.get(&1), Some("first"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.bucket_count(), 1);
    }

    #[test]
    fn distinct_keys_coexist() {
        let m: FirstWriteMap<u64, u64> = FirstWriteMap::new();
        for k in 0..100 {
            assert!(m.try_insert(k, k * 2));
        }
        assert_eq!(m.len(), 100);
        for k in 0..100 {
            assert_eq!(m.get(&k), Some(k * 2));
        }
        assert_eq!(m.get(&100), None);
        assert!(!m.contains_key(&100));
        assert!(m.contains_key(&99));
    }

    #[test]
    fn bucketed_map_behaves_identically() {
        let m: FirstWriteMap<u64, u64> = FirstWriteMap::with_buckets(64);
        assert_eq!(m.bucket_count(), 64);
        for k in 0..10_000u64 {
            assert!(m.try_insert(k, k));
        }
        for k in 0..10_000u64 {
            assert!(!m.try_insert(k, k + 1), "key {k} must already be present");
            assert_eq!(m.get(&k), Some(k));
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.fold(0u64, |acc, _, v| acc + v), (0..10_000).sum::<u64>());
    }

    #[test]
    fn bucket_count_rounds_up_to_powers_of_two() {
        let m: FirstWriteMap<u64, ()> = FirstWriteMap::with_buckets(3);
        assert_eq!(m.bucket_count(), 4);
        let m: FirstWriteMap<u64, ()> = FirstWriteMap::with_buckets(0);
        assert_eq!(m.bucket_count(), 1);
    }

    #[test]
    fn fold_assembles_results() {
        let m: FirstWriteMap<u64, u64> = FirstWriteMap::new();
        for k in 1..=10 {
            m.try_insert(k, k);
        }
        let sum = m.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(sum, 55);
        let mut entries = m.entries();
        entries.sort_unstable();
        assert_eq!(entries, (1..=10).map(|k| (k, k)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_map_behaviour() {
        let m: FirstWriteMap<u64, u64> = FirstWriteMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert_eq!(m.fold(0u64, |acc, _, v| acc + v), 0);
    }

    #[test]
    fn concurrent_racers_exactly_one_wins_per_key() {
        const KEYS: u64 = 200;
        const THREADS: usize = 4;
        let m: Arc<FirstWriteMap<u64, usize>> = Arc::new(FirstWriteMap::with_buckets(8));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut wins = Vec::new();
                for k in 0..KEYS {
                    if m.try_insert(k, t) {
                        wins.push(k);
                    }
                }
                wins
            }));
        }
        let all_wins: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let total: usize = all_wins.iter().map(|w| w.len()).sum();
        assert_eq!(total as u64, KEYS, "every key must be won exactly once");
        assert_eq!(m.len() as u64, KEYS);
        // The stored value must belong to the thread that reported the win.
        for (t, wins) in all_wins.iter().enumerate() {
            for k in wins {
                assert_eq!(m.get(k), Some(t));
            }
        }
    }

    #[test]
    fn drop_frees_values() {
        struct CountDrop(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let m: FirstWriteMap<u64, CountDrop> = FirstWriteMap::new();
            for k in 0..5 {
                m.try_insert(k, CountDrop(Arc::clone(&drops)));
            }
            // A losing insert must also free its value.
            m.try_insert(0, CountDrop(Arc::clone(&drops)));
        }
        assert_eq!(drops.load(Ordering::Relaxed), 6);
    }
}
