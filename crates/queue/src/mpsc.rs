//! The per-operation traverse queue (`Op.Traverse`, §II-B).
//!
//! While an operation descends the tree, every process executing it in a
//! node appends the children in which execution must continue; only the
//! *initiator* process removes nodes from the head and visits them. The
//! queue therefore is multi-producer / single-consumer, FIFO, and tolerates
//! duplicate entries (a node may be appended several times when several
//! helpers execute the same operation in its parent — the per-node
//! timestamp checks make the extra visits no-ops).
//!
//! Because the queue lives inside a single operation descriptor and holds at
//! most `O(height + |P|)` small entries, nodes are never unlinked during the
//! descriptor's lifetime: the consumer advances a cursor and everything is
//! freed when the descriptor (and with it the queue) is dropped. This keeps
//! the structure trivially safe without epoch protection.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// One link of the traverse queue.
struct TNode<T> {
    item: Option<T>,
    next: AtomicPtr<TNode<T>>,
}

/// Multi-producer single-consumer FIFO queue used for `Op.Traverse`.
///
/// `push` may be called from any thread; `peek` / `pop` must only be called
/// by the operation's initiator (single consumer), which is exactly how the
/// traversal algorithm of Listing 2 uses it.
pub struct TraverseQueue<T> {
    /// Consumer cursor: points at the node *before* the next item (a dummy
    /// or an already consumed node).
    head: AtomicPtr<TNode<T>>,
    /// Producer end.
    tail: AtomicPtr<TNode<T>>,
    /// First node ever allocated; `Drop` walks the full chain from here.
    first: *mut TNode<T>,
}

// SAFETY: the queue owns its heap nodes and mutates the links only through
// atomics; `T: Send` lets the items move with the queue across threads.
unsafe impl<T: Send> Send for TraverseQueue<T> {}
// SAFETY: shared access is limited to atomic loads/CASes of the links plus
// cloning items, which `T: Sync` makes sound from any thread.
unsafe impl<T: Send + Sync> Sync for TraverseQueue<T> {}

impl<T> Default for TraverseQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TraverseQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(TNode {
            item: None,
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        TraverseQueue {
            head: AtomicPtr::new(dummy),
            tail: AtomicPtr::new(dummy),
            first: dummy,
        }
    }

    /// Appends `item` to the tail. Callable from any thread.
    pub fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(TNode {
            item: Some(item),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        loop {
            // ORDERING: Acquire pairs with the Release tail CASes below, so the node
            // `tail` points at is fully initialised before we dereference it.
            let tail = self.tail.load(Ordering::Acquire);
            // SAFETY: nodes are only freed in `Drop`, which requires
            // exclusive access, so `tail` is always valid here.
            // ORDERING: Acquire pairs with the Release link CAS below — a non-null
            // `next` is always a fully initialised node.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if !next.is_null() {
                // Help the lagging tail.
                let _ = self
                    .tail
                    // ORDERING: Release keeps the helped tail publication consistent for other
                    // producers' Acquire tail loads; failure only retries, so Relaxed suffices.
                    .compare_exchange(tail, next, Ordering::Release, Ordering::Relaxed);
                continue;
            }
            // SAFETY: `tail` remains valid — nodes are only freed in `Drop`, which
            // requires exclusive access.
            // ORDERING: success Release publishes the initialised node to the Acquire
            // `next`/tail loads above; failure only retries, so Relaxed suffices.
            if unsafe { &(*tail).next }
                .compare_exchange(ptr::null_mut(), node, Ordering::Release, Ordering::Relaxed) // ORDERING: as above.
                .is_ok()
            {
                let _ = self
                    .tail
                    // ORDERING: Release publishes the new tail node to producers' Acquire tail
                    // loads; losing this race is fine, a peer already helped.
                    .compare_exchange(tail, node, Ordering::Release, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Returns a clone of the item at the head without removing it.
    /// Single-consumer: must only be called by the initiator.
    pub fn peek(&self) -> Option<T>
    where
        T: Clone,
    {
        // ORDERING: Acquire pairs with the Release head store in `pop`, so the
        // cursor node and everything behind it is visible.
        let head = self.head.load(Ordering::Acquire);
        // SAFETY: the head cursor is always a valid node (freed only in `Drop`).
        // ORDERING: Acquire pairs with the Release link CAS in `push` — a non-null
        // `next` is a fully initialised node.
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` is non-null, was published by the Release link CAS in
        // `push`, and stays allocated until `Drop`.
        unsafe { (*next).item.clone() }
    }

    /// Removes and returns the item at the head. Single-consumer.
    pub fn pop(&self) -> Option<T>
    where
        T: Clone,
    {
        // ORDERING: Acquire pairs with the Release head store below (the single
        // consumer re-reading its own cursor) and the constructor's publication.
        let head = self.head.load(Ordering::Acquire);
        // SAFETY: the head cursor is always a valid node (freed only in `Drop`).
        // ORDERING: Acquire pairs with the Release link CAS in `push`.
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // Single consumer: a plain store is sufficient, nobody else advances
        // the head. The consumed node stays linked (it is freed in Drop).
        // ORDERING: Release orders the item read above before the cursor advance,
        // pairing with the Acquire head loads in `peek`/`is_empty`/`len`.
        self.head.store(next, Ordering::Release);
        // SAFETY: `next` was published by the Release link CAS in `push` and stays
        // linked until `Drop`.
        unsafe { (*next).item.clone() }
    }

    /// `true` if no unconsumed item remains.
    pub fn is_empty(&self) -> bool {
        // ORDERING: Acquire pairs with the Release head store in `pop`.
        let head = self.head.load(Ordering::Acquire);
        // SAFETY: the head cursor is always a valid node (freed only in `Drop`).
        // ORDERING: Acquire pairs with the Release link CAS in `push`.
        unsafe { (*head).next.load(Ordering::Acquire).is_null() }
    }

    /// Number of unconsumed items (linear walk; debugging/tests only).
    pub fn len(&self) -> usize {
        let mut n = 0;
        // ORDERING: Acquire pairs with the Release head store in `pop`.
        let mut cur = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: every node in the chain stays allocated until `Drop`.
            // ORDERING: Acquire pairs with the Release link CAS in `push`.
            let next = unsafe { (*cur).next.load(Ordering::Acquire) };
            if next.is_null() {
                return n;
            }
            n += 1;
            cur = next;
        }
    }
}

impl<T> Drop for TraverseQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain starting from the very
        // first dummy, including consumed nodes.
        let mut cur = self.first;
        while !cur.is_null() {
            // SAFETY: `drop` takes `&mut self`, so this thread has exclusive access;
            // each node was allocated via `Box::into_raw` and is freed exactly once.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q: TraverseQueue<u32> = TraverseQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.peek(), Some(0));
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let q: TraverseQueue<&str> = TraverseQueue::new();
        q.push("a");
        assert_eq!(q.peek(), Some("a"));
        assert_eq!(q.peek(), Some("a"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn duplicates_are_preserved() {
        let q: TraverseQueue<u32> = TraverseQueue::new();
        q.push(7);
        q.push(7);
        q.push(7);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn multi_producer_single_consumer() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 1_000;
        let q: Arc<TraverseQueue<usize>> = Arc::new(TraverseQueue::new());
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        // Consumer runs concurrently with the producers.
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < PRODUCERS * PER_PRODUCER {
                    if let Some(v) = q.pop() {
                        seen.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                seen
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = consumer.join().unwrap();
        // Per-producer FIFO: each producer's items must appear in order.
        for p in 0..PRODUCERS {
            let per: Vec<usize> = seen
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == p)
                .collect();
            let expect: Vec<usize> = (0..PER_PRODUCER).map(|i| p * PER_PRODUCER + i).collect();
            assert_eq!(per, expect, "producer {p} items out of order");
        }
        seen.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn drop_frees_unconsumed_items() {
        struct CountDrop(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let q: TraverseQueue<Arc<CountDrop>> = TraverseQueue::new();
            for _ in 0..5 {
                q.push(Arc::new(CountDrop(Arc::clone(&drops))));
            }
            let _ = q.pop();
            // 4 unconsumed + 1 consumed-but-still-linked: all must be freed.
        }
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }
}
