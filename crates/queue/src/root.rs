//! The wait-free root queue (§II-F, Lemma 1).
//!
//! The lock-free root queue ([`crate::TsQueue::enqueue_assign`]) can in
//! principle starve an enqueuer under unbounded contention: its CAS loop
//! retries until it wins the tail. Lemma 1 of the paper sketches how to make
//! timestamp allocation wait-free with an announce array, a fetch-and-add
//! version counter and helping:
//!
//! 1. the enqueuer publishes an *announce record* for its descriptor in its
//!    slot of the announce array;
//! 2. it fetches a fresh version with `fetch_add` and tries to CAS it into
//!    the record's empty timestamp; whether or not the CAS wins, the record
//!    now has a timestamp (possibly assigned by a helper);
//! 3. it scans the whole announce array, assigning fresh versions to any
//!    record that still lacks one, and collects every announced record whose
//!    timestamp is `<=` its own;
//! 4. it appends the collected records to the underlying [`TsQueue`] in
//!    ascending timestamp order with the idempotent `push_if`.
//!
//! Because every enqueuer publishes *before* fetching its version and scans
//! *after*, any record with a smaller timestamp is visible to the scan, so no
//! descriptor can be skipped; `push_if` keeps duplicates out. Each enqueue
//! therefore finishes in `O(P log P)` steps regardless of scheduling — the
//! bound stated in the paper.
//!
//! Slots are owned by threads through [`RootSlot`] handles obtained from
//! [`WaitFreeRootQueue::register`]; the handle frees its slot on drop so a
//! pool of worker threads can come and go.

use crossbeam_epoch::{Atomic, Guard, Owned};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU64};

use crate::timestamp::Timestamp;
use crate::tsqueue::TsQueue;

/// An announce record: a descriptor waiting for a timestamp.
struct Announce<T> {
    item: T,
    /// Zero until a version is assigned (either by the owner or by a helper).
    ts: AtomicU64,
}

/// A wait-free timestamp-allocating MPMC queue, layered over [`TsQueue`].
pub struct WaitFreeRootQueue<T> {
    slots: Box<[Atomic<Announce<T>>]>,
    slot_taken: Box<[AtomicBool]>,
    version: AtomicU64,
    queue: TsQueue<T>,
}

// SAFETY: the queue owns its announce records and the inner `TsQueue`; all
// shared mutation is atomic and `T: Send + Sync` covers the payload.
unsafe impl<T: Send + Sync> Send for WaitFreeRootQueue<T> {}
// SAFETY: same argument as `Send` — shared access only follows
// atomically-published records and clones `T` through `&` (`T: Sync`).
unsafe impl<T: Send + Sync> Sync for WaitFreeRootQueue<T> {}

/// A registered enqueuer slot. Obtained from
/// [`WaitFreeRootQueue::register`]; released when dropped.
pub struct RootSlot {
    index: usize,
}

impl RootSlot {
    /// The slot index inside the announce array.
    pub fn index(&self) -> usize {
        self.index
    }
}

impl<T: Clone + Send + Sync> WaitFreeRootQueue<T> {
    /// Creates a queue able to serve up to `max_threads` concurrent
    /// enqueuers (the paper's `|P|`).
    pub fn new(max_threads: usize) -> Self {
        let n = max_threads.max(1);
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, Atomic::null);
        let mut taken = Vec::with_capacity(n);
        taken.resize_with(n, || AtomicBool::new(false));
        WaitFreeRootQueue {
            slots: slots.into_boxed_slice(),
            slot_taken: taken.into_boxed_slice(),
            version: AtomicU64::new(0),
            queue: TsQueue::new(Timestamp::ZERO),
        }
    }

    /// Number of announce slots (maximum supported concurrent enqueuers).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claims a free announce slot for the calling thread.
    ///
    /// Returns `None` when all slots are taken (more concurrent enqueuers
    /// than the queue was constructed for); the caller should then fall back
    /// to a larger queue or treat it as a configuration error.
    pub fn register(&self) -> Option<RootSlot> {
        for (i, taken) in self.slot_taken.iter().enumerate() {
            // ORDERING: AcqRel — Release so the slot owner's later announce publication
            // is ordered after the claim, Acquire so we see the previous owner's
            // release; failure Acquire pairs with the Release store in `unregister`.
            if taken.compare_exchange(false, true, AcqRel, Acquire).is_ok() {
                return Some(RootSlot { index: i });
            }
        }
        None
    }

    /// Releases a slot claimed by [`WaitFreeRootQueue::register`].
    pub fn unregister(&self, slot: RootSlot) {
        // ORDERING: Release orders everything the slot owner did (its final
        // announce swap, retirements) before the slot becomes claimable by the
        // Acquire CAS in `register`.
        self.slot_taken[slot.index].store(false, Release);
    }

    /// Enqueues `item`, allocating and returning its timestamp, in a
    /// bounded number of steps (wait-free). `slot` must have been obtained
    /// from [`WaitFreeRootQueue::register`] on this queue.
    pub fn enqueue(&self, slot: &RootSlot, item: T, guard: &Guard) -> Timestamp {
        // 1. Publish the announce record.
        let record = Owned::new(Announce {
            item,
            ts: AtomicU64::new(0),
        })
        .into_shared(guard);
        // ORDERING: AcqRel — Release publishes the fully initialised record (item,
        // zero ts) to the Acquire scan loads below, Acquire orders our publication
        // after the previous record's completed enqueue.
        let previous = self.slots[slot.index].swap(record, AcqRel, guard);
        if !previous.is_null() {
            // The previous announce of this slot was already appended to the
            // queue (its enqueue completed); retire it.
            // SAFETY: a slot's previous record is only replaced by its owner, and only
            // after the previous enqueue completed, so nobody can announce-load it
            // anymore; current readers hold epoch guards, and the swap returns the
            // pointer exactly once, so it is retired exactly once.
            unsafe { guard.defer_destroy(previous) };
        }
        // SAFETY: `record` was just allocated and swapped in under `guard`; it is
        // only retired by a later swap in this same slot, never while we run.
        let record_ref = unsafe { record.deref() };

        // 2. Fetch a fresh version and try to claim it for our record.
        // ORDERING: AcqRel makes every version allocation globally ordered after
        // the announce swap above — the invariant (publish before fetch) that
        // guarantees the helping scan cannot miss a smaller timestamp.
        let version = self.version.fetch_add(1, AcqRel) + 1;
        // ORDERING: AcqRel — Release publishes the claimed timestamp to helper
        // Acquire loads, Acquire (success and failure) orders our subsequent load
        // after whichever CAS won.
        let _ = record_ref.ts.compare_exchange(0, version, AcqRel, Acquire);
        // ORDERING: Acquire pairs with the AcqRel timestamp CAS (ours or a
        // helper's) that assigned this record its version.
        let my_ts = Timestamp(record_ref.ts.load(Acquire));

        // 3. Help: make sure every announced record has a timestamp, collect
        //    everything with a timestamp not larger than ours.
        let mut pending: Vec<(Timestamp, T)> = Vec::with_capacity(self.slots.len());
        for s in self.slots.iter() {
            // ORDERING: Acquire pairs with the AcqRel announce swap in step 1, so an
            // observed record is fully initialised.
            let announced = s.load(Acquire, guard);
            if announced.is_null() {
                continue;
            }
            // SAFETY: `announced` was published by the AcqRel swap and is only retired
            // via `defer_destroy` after being swapped out; `guard` protects it.
            let a = unsafe { announced.deref() };
            // ORDERING: Acquire pairs with the AcqRel timestamp CAS that may have
            // assigned this record a version.
            let mut ts = a.ts.load(Acquire);
            if ts == 0 {
                // ORDERING: AcqRel keeps the helper's version allocation in the same total
                // ordering chain as step 2 (fetch after publish).
                let fresh = self.version.fetch_add(1, AcqRel) + 1;
                // ORDERING: AcqRel — Release publishes the helped timestamp, Acquire
                // orders the re-read below after the winning CAS.
                let _ = a.ts.compare_exchange(0, fresh, AcqRel, Acquire);
                // ORDERING: Acquire pairs with the AcqRel timestamp CAS above.
                ts = a.ts.load(Acquire);
            }
            if ts <= my_ts.get() {
                pending.push((Timestamp(ts), a.item.clone()));
            }
        }

        // 4. Append in ascending timestamp order; `push_if` drops records
        //    already appended by other helpers.
        pending.sort_by_key(|(ts, _)| *ts);
        for (ts, item) in pending {
            self.queue.push_if(ts, item, guard);
        }
        my_ts
    }

    /// Reads the head descriptor without removing it (delegates to the
    /// underlying [`TsQueue`]).
    pub fn peek(&self, guard: &Guard) -> Option<(Timestamp, T)> {
        self.queue.peek(guard)
    }

    /// Removes the head descriptor if it still has timestamp `ts`.
    pub fn pop_if(&self, ts: Timestamp, guard: &Guard) -> bool {
        self.queue.pop_if(ts, guard)
    }

    /// Timestamp of the most recently appended descriptor.
    pub fn last_timestamp(&self, guard: &Guard) -> Timestamp {
        self.queue.last_timestamp(guard)
    }

    /// `true` when no descriptor is queued.
    pub fn is_empty(&self, guard: &Guard) -> bool {
        self.queue.is_empty(guard)
    }

    /// Timestamps currently queued, in order (tests/diagnostics).
    pub fn timestamps(&self, guard: &Guard) -> Vec<Timestamp> {
        self.queue.timestamps(guard)
    }
}

impl<T> Drop for WaitFreeRootQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free any announce records still published.
        // SAFETY: `drop` takes `&mut self`, so no enqueuer can touch the slots;
        // reclaiming the still-published records in place is sound.
        unsafe {
            let guard = crossbeam_epoch::unprotected();
            for slot in self.slots.iter() {
                let announced = slot.load(Relaxed, guard);
                if !announced.is_null() {
                    drop(announced.into_owned());
                }
            }
        }
        // The inner TsQueue frees its own nodes in its Drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;
    use std::sync::Arc;

    #[test]
    fn single_thread_enqueue_allocates_increasing_timestamps() {
        let q: WaitFreeRootQueue<u32> = WaitFreeRootQueue::new(4);
        let slot = q.register().unwrap();
        let guard = epoch::pin();
        let t1 = q.enqueue(&slot, 1, &guard);
        let t2 = q.enqueue(&slot, 2, &guard);
        let t3 = q.enqueue(&slot, 3, &guard);
        assert!(t1 < t2 && t2 < t3);
        let ts = q.timestamps(&guard);
        assert_eq!(ts, vec![t1, t2, t3]);
        assert_eq!(q.peek(&guard), Some((t1, 1)));
        assert!(q.pop_if(t1, &guard));
        assert_eq!(q.peek(&guard), Some((t2, 2)));
    }

    #[test]
    fn register_hands_out_distinct_slots_and_respects_capacity() {
        let q: WaitFreeRootQueue<u32> = WaitFreeRootQueue::new(2);
        let a = q.register().unwrap();
        let b = q.register().unwrap();
        assert_ne!(a.index(), b.index());
        assert!(q.register().is_none(), "capacity exhausted");
        q.unregister(a);
        assert!(q.register().is_some(), "slot reusable after unregister");
    }

    #[test]
    fn concurrent_enqueues_never_lose_or_duplicate_descriptors() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 300;
        let q: Arc<WaitFreeRootQueue<(usize, usize)>> = Arc::new(WaitFreeRootQueue::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let slot = q.register().expect("enough slots for every thread");
                let mut tss = Vec::with_capacity(PER_THREAD);
                for i in 0..PER_THREAD {
                    let guard = epoch::pin();
                    tss.push(q.enqueue(&slot, (t, i), &guard));
                }
                q.unregister(slot);
                tss
            }));
        }
        let per_thread_ts: Vec<Vec<Timestamp>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Timestamps are unique across all enqueues.
        let mut all: Vec<Timestamp> = per_thread_ts.iter().flatten().copied().collect();
        all.sort();
        let before_dedup = all.len();
        all.dedup();
        assert_eq!(before_dedup, all.len(), "timestamps must be unique");
        assert_eq!(all.len(), THREADS * PER_THREAD);

        // Each thread's own enqueues see strictly increasing timestamps.
        for tss in &per_thread_ts {
            assert!(tss.windows(2).all(|w| w[0] < w[1]));
        }

        // Drain the queue: every enqueued descriptor appears exactly once and
        // in timestamp order.
        let guard = epoch::pin();
        let queued = q.timestamps(&guard);
        assert!(
            queued.windows(2).all(|w| w[0] < w[1]),
            "queue must be sorted"
        );
        assert_eq!(
            queued.len(),
            THREADS * PER_THREAD,
            "no descriptor may be lost"
        );
        let mut drained = Vec::new();
        while let Some((ts, item)) = q.peek(&guard) {
            assert!(q.pop_if(ts, &guard));
            drained.push(item);
        }
        assert_eq!(drained.len(), THREADS * PER_THREAD);
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            drained.len(),
            "no descriptor may be duplicated"
        );
    }

    #[test]
    fn helping_assigns_timestamps_to_stalled_announcers() {
        // Direct white-box check of step 3: a record announced without a
        // timestamp gets one from a helper's scan. We simulate the stalled
        // announcer by enqueuing from one slot while another slot's record is
        // published manually with an unassigned timestamp.
        let q: Arc<WaitFreeRootQueue<u32>> = Arc::new(WaitFreeRootQueue::new(2));
        let helper_slot = q.register().unwrap();
        let stalled_slot = q.register().unwrap();
        let guard = epoch::pin();
        // Publish a record in the stalled slot without assigning a version,
        // mimicking a thread suspended between steps 1 and 2.
        let record = Owned::new(Announce {
            item: 999u32,
            ts: AtomicU64::new(0),
        });
        q.slots[stalled_slot.index()].store(record, Release);
        // The helper enqueues; its scan must assign a timestamp to the
        // stalled record (even though it will not push it, since the stalled
        // record's timestamp ends up larger than the helper's own).
        let helper_ts = q.enqueue(&helper_slot, 1, &guard);
        let stalled = q.slots[stalled_slot.index()].load(Acquire, &guard);
        // SAFETY: the record was stored above and never retired in this test.
        let stalled_ts = unsafe { stalled.deref() }.ts.load(Acquire);
        assert_ne!(stalled_ts, 0, "helper must have assigned a timestamp");
        assert!(Timestamp(stalled_ts) > helper_ts);
    }

    #[test]
    fn interleaved_enqueue_and_drain() {
        const THREADS: usize = 3;
        const PER_THREAD: usize = 200;
        let q: Arc<WaitFreeRootQueue<usize>> = Arc::new(WaitFreeRootQueue::new(THREADS));
        let produced = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let q = Arc::clone(&q);
            let produced = Arc::clone(&produced);
            handles.push(std::thread::spawn(move || {
                let slot = q.register().unwrap();
                for i in 0..PER_THREAD {
                    let guard = epoch::pin();
                    q.enqueue(&slot, t * PER_THREAD + i, &guard);
                    produced.fetch_add(1, Relaxed);
                    // Consumers also drain concurrently, like tree helpers do.
                    if let Some((ts, _)) = q.peek(&guard) {
                        q.pop_if(ts, &guard);
                    }
                }
                q.unregister(slot);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Drain the remainder; total seen by peek/pop plus the leftovers must
        // equal the number produced (no losses).
        let guard = epoch::pin();
        let mut leftovers = 0;
        while let Some((ts, _)) = q.peek(&guard) {
            assert!(q.pop_if(ts, &guard));
            leftovers += 1;
        }
        assert!(leftovers <= THREADS * PER_THREAD);
        assert_eq!(produced.load(Relaxed), THREADS * PER_THREAD);
    }
}
