//! Operation timestamps.
//!
//! Every operation receives a timestamp when its descriptor enters the root
//! queue (§II-A). Timestamps define the linearization order: if descriptor A
//! entered the root queue before descriptor B then `timestamp(A) <
//! timestamp(B)`. Inside every per-node queue, timestamps form a strictly
//! increasing sequence (Theorem 1), which is what lets a process decide
//! whether its operation has already been executed at a node by a single
//! `peek`.

use std::fmt;

/// A strictly positive operation timestamp.
///
/// The value `0` is reserved as the *watermark* carried by the dummy node of
/// a freshly created queue (see [`crate::TsQueue::new`]): descriptors always
/// have timestamps `>= 1`, so a rebuilt node initialised with watermark `t`
/// rejects every descriptor with timestamp `<= t` — exactly the "operations
/// preceding the rebuild must not touch the new subtree" rule of §II-E.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp, used only as the initial queue watermark.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// The numeric value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The next timestamp (`self + 1`).
    ///
    /// # Panics
    ///
    /// Panics on overflow; `u64` timestamps cannot realistically overflow
    /// (more than 10^19 operations), so an overflow indicates memory
    /// corruption and must not wrap silently.
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(
            self.0
                .checked_add(1)
                .expect("timestamp overflow: more than u64::MAX operations"),
        )
    }

    /// The previous timestamp (`self - 1`), saturating at zero. Used when a
    /// rebuilt subtree is initialised with `Ts_Mod = Op.Timestamp - 1`
    /// (§II-E) so the triggering operation can still modify it.
    #[inline]
    pub fn prev_saturating(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts#{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp(1).next(), Timestamp(2));
        assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
        assert_eq!(Timestamp(5).prev_saturating(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.prev_saturating(), Timestamp::ZERO);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Timestamp(42)), "42");
        assert_eq!(format!("{:?}", Timestamp(42)), "ts#42");
    }

    #[test]
    #[should_panic(expected = "timestamp overflow")]
    fn next_overflow_panics() {
        let _ = Timestamp::MAX.next();
    }
}
