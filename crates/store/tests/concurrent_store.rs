//! Multi-threaded smoke tests for the sharded store.
//!
//! Writers commit two-phase batches from disjoint key stripes while readers
//! issue cross-shard aggregates; afterwards the quiescent store must equal
//! the union of what the writers committed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wft_store::{ShardedStore, StoreConfig, StoreOp};

const WRITERS: i64 = 4;
const ROUNDS: i64 = 60;
const BATCH: i64 = 64;
const KEYSPACE: i64 = 1 << 16;

/// Writer `w` owns the keys congruent to `w` modulo [`WRITERS`]; batches of
/// upserts and deletes from each stripe commute with the other writers'.
fn writer_batch(w: i64, round: i64, rng: &mut StdRng) -> Vec<StoreOp<i64, i64>> {
    let mut keys = std::collections::HashSet::new();
    while (keys.len() as i64) < BATCH {
        keys.insert(rng.gen_range(0..KEYSPACE / WRITERS) * WRITERS + w);
    }
    keys.into_iter()
        .map(|key| {
            if (key ^ round) % 3 == 0 {
                StoreOp::Remove { key }
            } else {
                StoreOp::InsertOrReplace { key, value: round }
            }
        })
        .collect()
}

#[test]
fn concurrent_batches_from_disjoint_stripes_merge_correctly() {
    let store: Arc<ShardedStore<i64, i64>> = Arc::new(ShardedStore::from_entries_with_config(
        (0..KEYSPACE).step_by(16).map(|k| (k, -1)),
        8,
        StoreConfig::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    // Readers: cross-shard aggregates must never see impossible states.
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 + r);
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let lo = rng.gen_range(0..KEYSPACE / 2);
                    let hi = lo + rng.gen_range(0..KEYSPACE / 2);
                    let count = store.count(lo, hi);
                    assert!(count <= KEYSPACE as u64, "count out of bounds: {count}");
                    let narrow = store.collect_range(lo, lo + 256);
                    assert!(
                        narrow.windows(2).all(|w| w[0].0 < w[1].0),
                        "collect_range must stay sorted under concurrency"
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    // Writers: each replays a deterministic batch stream from its stripe.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(w as u64);
                for round in 0..ROUNDS {
                    let batch = writer_batch(w, round, &mut rng);
                    let outcomes = store.apply_batch(batch.clone()).unwrap();
                    assert_eq!(outcomes.len(), batch.len());
                }
            })
        })
        .collect();

    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        assert!(reader.join().unwrap() > 0, "readers must make progress");
    }

    // Replay the same deterministic streams sequentially into an oracle.
    let mut oracle: BTreeMap<i64, i64> = (0..KEYSPACE).step_by(16).map(|k| (k, -1)).collect();
    for w in 0..WRITERS {
        let mut rng = StdRng::seed_from_u64(w as u64);
        for round in 0..ROUNDS {
            for op in writer_batch(w, round, &mut rng) {
                match op {
                    StoreOp::InsertOrReplace { key, value } => {
                        oracle.insert(key, value);
                    }
                    StoreOp::Remove { key } => {
                        oracle.remove(&key);
                    }
                    _ => unreachable!("writer batches only upsert/remove"),
                }
            }
        }
    }

    store.check_invariants();
    let entries = store.entries_quiescent();
    let expected: Vec<(i64, i64)> = oracle.into_iter().collect();
    assert_eq!(entries.len(), expected.len());
    assert_eq!(entries, expected, "stripe union must match the oracle");
}

#[test]
fn rejected_batches_leave_concurrent_store_untouched() {
    let store: Arc<ShardedStore<i64>> =
        Arc::new(ShardedStore::from_entries((0..1024).map(|k| (k, ())), 4));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for i in 0..200 {
                    // Every batch is invalid: duplicate key 1_000_000 + t.
                    let dup = 1_000_000 + t;
                    let batch = vec![
                        StoreOp::Insert {
                            key: dup,
                            value: (),
                        },
                        StoreOp::Remove { key: i },
                        StoreOp::Insert {
                            key: dup,
                            value: (),
                        },
                    ];
                    assert!(store.apply_batch(batch).is_err());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.len(), 1024, "no rejected batch may mutate the store");
    assert_eq!(store.count(0, 2_000_000), 1024);
}

#[test]
fn forced_parallel_fanout_is_correct_under_contention() {
    // parallel_threshold = 0 forces the scoped-thread fan-out even on a
    // single-core host, stacking it on top of the callers' own threads.
    let config = StoreConfig {
        parallel_threshold: 0,
        ..StoreConfig::default()
    };
    let store: Arc<ShardedStore<i64, i64>> = Arc::new(ShardedStore::from_entries_with_config(
        (0..4096).map(|k| (k, 0)),
        4,
        config,
    ));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + w as u64);
                for round in 0..20 {
                    let batch = writer_batch(w, round, &mut rng);
                    store.apply_batch(batch).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    store.check_invariants();
}
