//! Property tests: the sharded store against a `BTreeMap` oracle.
//!
//! Whatever the shard count and however the batches are composed, the
//! store must be indistinguishable from a sequential ordered map:
//! membership, `count`, `range_agg` and `collect_range` all agree, and
//! batch outcomes match what point operations would have returned.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use wft_store::{OpOutcome, ShardedStore, StoreOp};

const UNIVERSE: i64 = 512;

#[derive(Debug, Clone)]
enum Step {
    Op(StoreOp<i64, i64>),
    Count(i64, i64),
    Collect(i64, i64),
    Contains(i64),
    Get(i64),
}

/// Named patch functions (the `Patch` payload is a plain `fn` pointer).
fn patch_increment(current: Option<i64>) -> Option<i64> {
    Some(current.unwrap_or(0).wrapping_add(1))
}

fn patch_clear(_: Option<i64>) -> Option<i64> {
    None
}

fn patch_negate_present(current: Option<i64>) -> Option<i64> {
    current.map(|v| v.wrapping_neg())
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = 0i64..UNIVERSE;
    prop_oneof![
        (key.clone(), any::<i64>())
            .prop_map(|(key, value)| Step::Op(StoreOp::Insert { key, value })),
        (key.clone(), any::<i64>())
            .prop_map(|(key, value)| Step::Op(StoreOp::InsertOrReplace { key, value })),
        key.clone()
            .prop_map(|key| Step::Op(StoreOp::Remove { key })),
        key.clone()
            .prop_map(|key| Step::Op(StoreOp::RemoveEntry { key })),
        (key.clone(), 0usize..3).prop_map(|(key, which)| {
            let patch = [patch_increment, patch_clear, patch_negate_present][which];
            Step::Op(StoreOp::Patch { key, patch })
        }),
        // `expect: None` hits often (insert-if-absent); an arbitrary
        // expect mostly misses — both outcomes must match the oracle.
        (
            key.clone(),
            prop_oneof![Just(None), any::<i64>().prop_map(Some)],
            any::<i64>()
        )
            .prop_map(|(key, expect, value)| {
                Step::Op(StoreOp::CompareAndSet { key, expect, value })
            }),
        key.clone().prop_map(|key| Step::Op(StoreOp::Get { key })),
        (key.clone(), key.clone()).prop_map(|(a, b)| Step::Count(a.min(b), a.max(b))),
        (key.clone(), key.clone()).prop_map(|(a, b)| Step::Collect(a.min(b), a.max(b))),
        key.clone().prop_map(Step::Contains),
        key.prop_map(Step::Get),
    ]
}

/// Applies one operation to the oracle, returning the outcome the store
/// must report for it.
fn oracle_apply(oracle: &mut BTreeMap<i64, i64>, op: &StoreOp<i64, i64>) -> OpOutcome<i64> {
    match *op {
        StoreOp::Insert { key, value } => {
            if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key) {
                e.insert(value);
                OpOutcome::Inserted(true)
            } else {
                OpOutcome::Inserted(false)
            }
        }
        StoreOp::InsertOrReplace { key, value } => OpOutcome::Replaced(oracle.insert(key, value)),
        StoreOp::Remove { key } => OpOutcome::Removed(oracle.remove(&key).is_some()),
        StoreOp::RemoveEntry { key } => OpOutcome::RemovedEntry(oracle.remove(&key)),
        StoreOp::Patch { key, patch } => {
            let after = patch(oracle.get(&key).copied());
            match after {
                Some(v) => {
                    oracle.insert(key, v);
                }
                None => {
                    oracle.remove(&key);
                }
            }
            OpOutcome::Patched(after)
        }
        StoreOp::CompareAndSet { key, expect, value } => {
            if oracle.get(&key).copied() == expect {
                oracle.insert(key, value);
                OpOutcome::CompareSet(true)
            } else {
                OpOutcome::CompareSet(false)
            }
        }
        StoreOp::Get { key } => OpOutcome::Got(oracle.get(&key).copied()),
    }
}

fn oracle_count(oracle: &BTreeMap<i64, i64>, min: i64, max: i64) -> u64 {
    oracle.range(min..=max).count() as u64
}

fn oracle_collect(oracle: &BTreeMap<i64, i64>, min: i64, max: i64) -> Vec<(i64, i64)> {
    oracle.range(min..=max).map(|(&k, &v)| (k, v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random shard counts, random interleavings of batched mutations and
    /// queries: the store tracks the oracle exactly.
    #[test]
    fn store_matches_btreemap_oracle(
        shards in 1usize..=8,
        prefill in vec((0i64..UNIVERSE, any::<i64>()), 0..64),
        steps in vec(step_strategy(), 1..200),
    ) {
        let store: ShardedStore<i64, i64> =
            ShardedStore::from_entries(prefill.clone(), shards);
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        // `from_entries` keeps the first value of duplicate keys.
        for (k, v) in prefill {
            oracle.entry(k).or_insert(v);
        }

        // Mutations accumulate into a batch; any query step flushes it
        // first, so batches of every size and shard spread get exercised.
        let mut batch: Vec<StoreOp<i64, i64>> = Vec::new();
        let mut batch_keys = std::collections::HashSet::new();
        for step in steps {
            match step {
                Step::Op(op) => {
                    if !batch_keys.insert(*op.key()) {
                        // The validator rejects intra-batch duplicates by
                        // design; start a new batch at a duplicate key.
                        flush(&store, &mut oracle, &mut batch);
                        batch_keys.clear();
                        batch_keys.insert(*op.key());
                    }
                    batch.push(op);
                }
                Step::Count(a, b) => {
                    flush(&store, &mut oracle, &mut batch);
                    batch_keys.clear();
                    prop_assert_eq!(store.count(a, b), oracle_count(&oracle, a, b));
                }
                Step::Collect(a, b) => {
                    flush(&store, &mut oracle, &mut batch);
                    batch_keys.clear();
                    prop_assert_eq!(store.collect_range(a, b), oracle_collect(&oracle, a, b));
                }
                Step::Contains(k) => {
                    flush(&store, &mut oracle, &mut batch);
                    batch_keys.clear();
                    prop_assert_eq!(store.contains(&k), oracle.contains_key(&k));
                }
                Step::Get(k) => {
                    flush(&store, &mut oracle, &mut batch);
                    batch_keys.clear();
                    prop_assert_eq!(store.get(&k), oracle.get(&k).copied());
                }
            }
        }
        flush(&store, &mut oracle, &mut batch);

        // Final state: exact equality, via every read path.
        prop_assert_eq!(store.len(), oracle.len() as u64);
        prop_assert_eq!(
            store.collect_range(0, UNIVERSE),
            oracle_collect(&oracle, 0, UNIVERSE)
        );
        prop_assert_eq!(store.entries_quiescent(), oracle_collect(&oracle, 0, UNIVERSE));
        prop_assert_eq!(store.count(0, UNIVERSE), oracle.len() as u64);
        store.check_invariants();
    }

    /// `range_agg` over sub-ranges equals a linear scan of the oracle for
    /// the size augmentation, at every shard count.
    #[test]
    fn range_agg_matches_linear_scan(
        shards in 1usize..=6,
        keys in vec(0i64..UNIVERSE, 1..128),
        ranges in vec((0i64..UNIVERSE, 0i64..UNIVERSE), 1..16),
    ) {
        let store: ShardedStore<i64> =
            ShardedStore::from_entries(keys.iter().map(|&k| (k, ())), shards);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for (a, b) in ranges {
            let (lo, hi) = (a.min(b), a.max(b));
            let expected = sorted.iter().filter(|&&k| lo <= k && k <= hi).count() as u64;
            prop_assert_eq!(store.count(lo, hi), expected);
            prop_assert_eq!(store.range_agg(lo, hi), expected);
        }
    }

    /// One batch through `apply_batch` is indistinguishable from the same
    /// operations applied one-by-one: identical outcomes, identical state.
    #[test]
    fn batch_equals_sequential_application(
        shards in 1usize..=8,
        prefill in vec(0i64..UNIVERSE, 0..64),
        ops in vec(step_strategy(), 1..96),
    ) {
        // Keep only mutations, first occurrence per key (the batch
        // validator refuses duplicates).
        let mut seen = std::collections::HashSet::new();
        let batch: Vec<StoreOp<i64, i64>> = ops
            .into_iter()
            .filter_map(|s| match s {
                Step::Op(op) if seen.insert(*op.key()) => Some(op),
                _ => None,
            })
            .collect();

        let entries: Vec<(i64, i64)> = prefill.iter().map(|&k| (k, k)).collect();
        let batched: ShardedStore<i64, i64> =
            ShardedStore::from_entries(entries.clone(), shards);
        let sequential: ShardedStore<i64, i64> = ShardedStore::from_entries(entries, shards);

        let batch_outcomes = batched.apply_batch(batch.clone()).unwrap();
        let point_outcomes: Vec<OpOutcome<i64>> = batch
            .into_iter()
            .map(|op| match op {
                StoreOp::Insert { key, value } =>
                    OpOutcome::Inserted(sequential.insert(key, value)),
                StoreOp::InsertOrReplace { key, value } =>
                    OpOutcome::Replaced(sequential.insert_or_replace(key, value)),
                StoreOp::Remove { key } => OpOutcome::Removed(sequential.remove(&key)),
                StoreOp::RemoveEntry { key } =>
                    OpOutcome::RemovedEntry(sequential.remove_entry(&key)),
                StoreOp::Patch { key, patch } =>
                    OpOutcome::Patched(sequential.patch(key, patch)),
                StoreOp::CompareAndSet { key, expect, value } =>
                    OpOutcome::CompareSet(sequential.compare_and_set(key, expect, value)),
                StoreOp::Get { key } => OpOutcome::Got(sequential.get(&key)),
            })
            .collect();

        prop_assert_eq!(batch_outcomes, point_outcomes);
        prop_assert_eq!(batched.entries_quiescent(), sequential.entries_quiescent());
        prop_assert_eq!(batched.len(), sequential.len());
    }
}

/// Applies the pending batch to both store and oracle and panics unless
/// the reported outcomes agree.
fn flush(
    store: &ShardedStore<i64, i64>,
    oracle: &mut BTreeMap<i64, i64>,
    batch: &mut Vec<StoreOp<i64, i64>>,
) {
    if batch.is_empty() {
        return;
    }
    let ops = std::mem::take(batch);
    let expected: Vec<OpOutcome<i64>> = ops.iter().map(|op| oracle_apply(oracle, op)).collect();
    let outcomes = store.apply_batch(ops).unwrap();
    assert_eq!(outcomes, expected);
}
