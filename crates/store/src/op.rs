//! The batched operation vocabulary of the store layer.
//!
//! A [`StoreOp`] is one keyed mutation; a batch is a `Vec<StoreOp>`. Batches
//! go through the two-phase pipeline of
//! [`ShardedStore::apply_batch`](crate::ShardedStore::apply_batch): phase one
//! **validates** the whole batch and groups it by destination shard without
//! touching any tree, phase two **executes** the per-shard groups. A batch
//! that fails validation is rejected wholesale — by construction no shard
//! has been mutated yet, which is the property GroveDB-style storage stacks
//! rely on to keep multi-key application commits all-or-nothing.

use std::fmt;

use wft_seq::{Key, Value};

/// One keyed mutation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp<K: Key, V: Value = ()> {
    /// Insert `key → value` if the key is absent; an existing key leaves the
    /// store unmodified (the paper tree's `insert` semantics).
    Insert {
        /// Key to insert.
        key: K,
        /// Value stored when the key is absent.
        value: V,
    },
    /// Insert `key → value`, replacing (and reporting) any existing value.
    InsertOrReplace {
        /// Key to insert or overwrite.
        key: K,
        /// The new value.
        value: V,
    },
    /// Remove `key`, reporting only whether it was present.
    Remove {
        /// Key to remove.
        key: K,
    },
    /// Remove `key`, reporting the removed value.
    RemoveEntry {
        /// Key to remove.
        key: K,
    },
}

impl<K: Key, V: Value> StoreOp<K, V> {
    /// The key this operation routes by.
    pub fn key(&self) -> &K {
        match self {
            StoreOp::Insert { key, .. }
            | StoreOp::InsertOrReplace { key, .. }
            | StoreOp::Remove { key }
            | StoreOp::RemoveEntry { key } => key,
        }
    }

    /// `true` for the operations that can grow the store.
    pub fn is_insert(&self) -> bool {
        matches!(
            self,
            StoreOp::Insert { .. } | StoreOp::InsertOrReplace { .. }
        )
    }
}

/// The per-operation result of an executed batch, index-aligned with the
/// submitted `Vec<StoreOp>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome<V: Value> {
    /// Result of [`StoreOp::Insert`]: `true` when the key was absent.
    Inserted(bool),
    /// Result of [`StoreOp::InsertOrReplace`]: the value it replaced.
    Replaced(Option<V>),
    /// Result of [`StoreOp::Remove`]: `true` when the key was present.
    Removed(bool),
    /// Result of [`StoreOp::RemoveEntry`]: the removed value.
    RemovedEntry(Option<V>),
}

/// Why phase one rejected a batch. No shard is mutated when any of these is
/// returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError<K: Key> {
    /// Two operations in the batch address the same key. Within one batch
    /// there is no defined order between them (the per-shard groups execute
    /// concurrently), so the batch is ambiguous and refused.
    DuplicateKey {
        /// The key that appears more than once.
        key: K,
    },
    /// The batch exceeds [`StoreConfig::max_batch_ops`].
    TooLarge {
        /// Number of operations submitted.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl<K: Key> fmt::Display for BatchError<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::DuplicateKey { key } => {
                write!(f, "batch addresses key {key:?} more than once")
            }
            BatchError::TooLarge { len, max } => {
                write!(
                    f,
                    "batch of {len} ops exceeds the configured maximum of {max}"
                )
            }
        }
    }
}

impl<K: Key> std::error::Error for BatchError<K> {}

/// Construction parameters of a [`ShardedStore`](crate::ShardedStore).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Per-shard tree configuration, forwarded to every `WaitFreeTree`.
    pub tree: wft_core::TreeConfig,
    /// Upper bound accepted by `apply_batch`; larger batches are rejected in
    /// phase one. Defaults to `usize::MAX` (unbounded).
    pub max_batch_ops: usize,
    /// Minimum number of operations a batch must carry before execution
    /// fans out across shards on worker threads; smaller batches run on the
    /// calling thread (spawning costs more than it saves). On single-core
    /// hosts the fan-out is suppressed entirely — except with the special
    /// value `0`, which forces the parallel path unconditionally (used to
    /// exercise it in tests).
    pub parallel_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            tree: wft_core::TreeConfig::default(),
            max_batch_ops: usize::MAX,
            parallel_threshold: 64,
        }
    }
}
