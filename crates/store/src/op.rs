//! Store configuration, plus re-exports of the shared batch vocabulary.
//!
//! The [`StoreOp`] / [`OpOutcome`] / [`BatchError`] types originated here;
//! they are now defined in [`wft_api`] (so single trees accept the same
//! batches through [`wft_api::BatchApply`]) and re-exported for source
//! compatibility. What remains store-specific is [`StoreConfig`]: the
//! per-shard tree configuration and the two-phase pipeline's tuning knobs.

pub use wft_api::{BatchError, OpOutcome, StoreOp};

/// Construction parameters of a [`ShardedStore`](crate::ShardedStore).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Per-shard tree configuration, forwarded to every `WaitFreeTree`.
    pub tree: wft_core::TreeConfig,
    /// Upper bound accepted by `apply_batch`; larger batches are rejected in
    /// phase one. Defaults to `usize::MAX` (unbounded).
    pub max_batch_ops: usize,
    /// Minimum number of operations a batch must carry before execution
    /// fans out across shards on worker threads; smaller batches run on the
    /// calling thread (spawning costs more than it saves). On single-core
    /// hosts the fan-out is suppressed entirely — except with the special
    /// value `0`, which forces the parallel path unconditionally (used to
    /// exercise it in tests).
    pub parallel_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            tree: wft_core::TreeConfig::default(),
            max_batch_ops: wft_api::UNBOUNDED_BATCH_OPS,
            parallel_threshold: 64,
        }
    }
}
