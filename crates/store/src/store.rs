//! The range-partitioned store: a router over independent [`WaitFreeTree`]
//! shards.
//!
//! # Partitioning
//!
//! A store with split keys `b_0 < b_1 < … < b_{S-2}` owns `S` shards with
//! key ranges
//!
//! ```text
//! shard 0: (-∞, b_0)    shard i: [b_{i-1}, b_i)    shard S-1: [b_{S-2}, ∞)
//! ```
//!
//! Routing is a binary search over the split keys — **not** a hash: range
//! partitioning keeps each aggregate range query confined to the shards its
//! interval actually overlaps, so `count`/`range_agg` stay `O(Σ log n_i)`
//! over the touched shards and `collect_range` concatenates per-shard
//! results already in global key order. This is the contention-adapting
//! insight (Winblad et al.) applied statically: disjoint keyspace slices
//! mean disjoint root queues, so writers to different slices never contend
//! on one tree root.
//!
//! # Consistency
//!
//! Every *single-shard* operation (every point op, and every aggregate whose
//! range falls inside one shard) inherits the linearizability of the
//! underlying `WaitFreeTree`. A *cross-shard* aggregate is executed **at a
//! global timestamp front** (see [`crate::front`]): one settled per-shard
//! watermark cut is acquired, every touched shard is read at its front with
//! front-validated entry points, and the attempt retries on a fresh cut if
//! any shard advanced mid-read — so `count` / `range_agg` / `collect_range`
//! are linearizable across shards; `len()` takes the same discipline with a
//! **bounded** number of cut attempts, falling back to the stitched sum
//! under sustained contention (the pre-front
//! stitched behaviour remains available as
//! [`ShardedStore::stitched_range_agg`] /
//! [`ShardedStore::stitched_collect_range`] / [`ShardedStore::stitched_len`]).
//! Streaming reads take the same discipline shard-by-shard: the store's
//! [`wft_api::RangeScan`] cursor (see [`crate::scan`]) drains a range in
//! chunks at one cut. Batches are atomic per shard and all-or-nothing with
//! respect to validation, but a concurrent reader may observe a batch
//! half-applied across two shards.

use std::thread;

use wft_core::{Timestamp, TreeStats, WaitFreeTree};
use wft_seq::{Augmentation, Key, Size, Value};

use crate::front::{FrontTable, GlobalFront, StoreStats};
use crate::op::{BatchError, OpOutcome, StoreConfig, StoreOp};

/// A range-partitioned, wait-free-sharded concurrent ordered map with
/// batched writes and cross-shard aggregate range queries.
pub struct ShardedStore<K: Key, V: Value = (), A: Augmentation<K, V> = Size> {
    pub(crate) shards: Vec<WaitFreeTree<K, V, A>>,
    /// `shards.len() - 1` strictly increasing split keys; `bounds[i]` is the
    /// first key owned by shard `i + 1`.
    pub(crate) bounds: Vec<K>,
    config: StoreConfig,
    /// Global-front bookkeeping: the monotone published front table and the
    /// snapshot counters (see [`crate::front`]).
    pub(crate) front: FrontTable,
}

/// The validated, shard-grouped form of a batch: the output of phase one.
///
/// Holding a plan proves the batch passed validation; executing it is
/// phase two. The plan borrows nothing from the store, so tests can assert
/// that a failed validation left every shard untouched.
pub struct BatchPlan<K: Key, V: Value> {
    /// One group per shard: `(original batch index, operation)`, in batch
    /// order (the grouping is stable).
    groups: Vec<Vec<(usize, StoreOp<K, V>)>>,
    len: usize,
}

impl<K: Key, V: Value> BatchPlan<K, V> {
    /// Number of operations in the planned batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the planned batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards the batch touches.
    pub fn shards_touched(&self) -> usize {
        self.groups.iter().filter(|g| !g.is_empty()).count()
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> ShardedStore<K, V, A> {
    /// A single-shard store (no split keys): behaves exactly like one
    /// `WaitFreeTree`, which makes it the natural baseline in sweeps.
    pub fn new() -> Self {
        Self::with_boundaries(Vec::new())
    }

    /// A store whose shard ranges are delimited by `bounds` (strictly
    /// increasing split keys; `bounds.len() + 1` shards).
    pub fn with_boundaries(bounds: Vec<K>) -> Self {
        Self::with_boundaries_and_config(bounds, StoreConfig::default())
    }

    /// [`ShardedStore::with_boundaries`] with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is not strictly increasing.
    pub fn with_boundaries_and_config(bounds: Vec<K>, config: StoreConfig) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let shards: Vec<WaitFreeTree<K, V, A>> = (0..=bounds.len())
            .map(|_| WaitFreeTree::with_config(config.tree))
            .collect();
        let front = FrontTable::new(shards.len());
        ShardedStore {
            shards,
            bounds,
            config,
            front,
        }
    }

    /// Builds a store over `entries` partitioned into (up to) `shards`
    /// balanced shards, with split keys chosen from the observed key
    /// distribution (equi-depth quantiles of the sorted key sample — see
    /// [`split_keys_from_sample`]).
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I, shards: usize) -> Self {
        Self::from_entries_with_config(entries, shards, StoreConfig::default())
    }

    /// [`ShardedStore::from_entries`] with explicit configuration.
    pub fn from_entries_with_config<I: IntoIterator<Item = (K, V)>>(
        entries: I,
        shards: usize,
        config: StoreConfig,
    ) -> Self {
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);

        let bounds = equi_depth_split_keys(&sorted, shards, |(k, _)| *k);

        // Feed each shard its contiguous slice through the tree's bulk
        // constructor instead of per-key inserts.
        let mut tree_shards = Vec::with_capacity(bounds.len() + 1);
        let mut rest = sorted.as_slice();
        for i in 0..=bounds.len() {
            let split = match bounds.get(i) {
                Some(bound) => rest.partition_point(|(k, _)| k < bound),
                None => rest.len(),
            };
            let (mine, tail) = rest.split_at(split);
            rest = tail;
            tree_shards.push(WaitFreeTree::from_entries_with_config(
                mine.iter().cloned(),
                config.tree,
            ));
        }
        let front = FrontTable::new(tree_shards.len());
        ShardedStore {
            shards: tree_shards,
            bounds,
            config,
            front,
        }
    }

    // -- routing ----------------------------------------------------------

    /// The index of the shard owning `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.bounds.partition_point(|b| b <= key)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The split keys delimiting the shard ranges.
    pub fn boundaries(&self) -> &[K] {
        &self.bounds
    }

    pub(crate) fn shard(&self, key: &K) -> &WaitFreeTree<K, V, A> {
        &self.shards[self.shard_of(key)]
    }

    // -- point operations -------------------------------------------------

    /// Inserts `key → value`; returns `true` if the key was absent.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.shard(&key).insert(key, value)
    }

    /// Inserts `key → value`, returning the value it replaced, if any.
    ///
    /// Atomic: delegates to the owning shard's
    /// [`WaitFreeTree::insert_or_replace`], which executes as a single
    /// `Replace` descriptor — there is no window in which a concurrent
    /// reader can observe the key absent.
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).insert_or_replace(key, value)
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.shard(key).remove(key)
    }

    /// Removes `key` and returns its value, if any.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        self.shard(key).remove_entry(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).contains(key)
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).get(key)
    }

    /// Total number of keys, read **at one global front** when the front
    /// holds still long enough — linearizable in that case.
    ///
    /// Every shard's front is settled, every shard length is read, and the
    /// sum is returned only if no shard's advertised watermark moved in
    /// between (per-shard lengths are maintained at update linearization
    /// points, so an unchanged front pins them); otherwise the read retries
    /// on a fresh cut. The retry loop is **bounded**: under sustained
    /// multi-shard write traffic a validated cut may never materialise
    /// (each attempt is lock-free, not wait-free), so after
    /// [`LEN_CUT_ATTEMPTS`](Self::LEN_CUT_ATTEMPTS) expired cuts the read
    /// falls back to [`ShardedStore::stitched_len`] — still a sum of
    /// atomic per-shard lengths, just not one linearization point — and
    /// records the degradation in [`StoreStats::len_fallbacks`]. Callers
    /// polling a length on a hot path (metrics, balance probes) should
    /// call `stitched_len()` directly and skip the cut machinery entirely.
    /// Single-shard stores skip the front (one tree's `len` is already a
    /// single linearization point).
    pub fn len(&self) -> u64 {
        if self.shards.len() == 1 {
            return self.shards[0].len();
        }
        for _ in 0..Self::LEN_CUT_ATTEMPTS {
            let fronts = self.settle_all();
            let sum: u64 = self.shards.iter().map(WaitFreeTree::len).sum();
            match self
                .shards
                .iter()
                .zip(&fronts)
                .position(|(shard, &front)| !shard.front_unchanged(Timestamp(front)))
            {
                None => return sum,
                Some(advanced) => self.note_snapshot_retry(advanced),
            }
            std::hint::spin_loop();
        }
        self.front.count_len_fallback();
        wft_obs::trace::emit(wft_obs::TraceKind::LenFallback, wft_obs::NO_SHARD);
        self.stitched_len()
    }

    /// How many settled cuts [`ShardedStore::len`] tries to validate
    /// before giving up on a single linearization point and answering with
    /// [`ShardedStore::stitched_len`] — bounds `len()`'s completion time
    /// under write traffic that expires every cut.
    pub const LEN_CUT_ATTEMPTS: usize = 32;

    /// Sum of the per-shard lengths with no global cut: each shard length
    /// is read atomically but the sum is not a single linearization point
    /// (the pre-front `len`, kept as the zero-cost baseline).
    pub fn stitched_len(&self) -> u64 {
        self.shards.iter().map(WaitFreeTree::len).sum()
    }

    /// `true` when every shard is empty, read through
    /// [`ShardedStore::len`] — so it inherits `len()`'s cut machinery: up
    /// to [`LEN_CUT_ATTEMPTS`](Self::LEN_CUT_ATTEMPTS) settle/validate
    /// rounds under multi-shard write traffic before the stitched
    /// fallback. Callers polling emptiness on a hot path should probe
    /// `stitched_len() == 0` instead and skip the cut.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // -- cross-shard aggregate queries (global timestamp front) -----------

    /// Aggregate of all entries with keys in `[min, max]`, combined across
    /// the overlapped shards **at one global front** — linearizable.
    ///
    /// The query interval is split at the shard boundaries: shard `i` in
    /// the overlap is asked for `[max(min, b_{i-1}), max]`, which its own
    /// augmented root answers in `O(log n_i)`. Shards outside
    /// `[shard_of(min), shard_of(max)]` are never touched. A range inside
    /// one shard is answered directly (the shard's own read is already
    /// linearizable); a multi-shard range acquires a settled per-shard
    /// front, reads every touched shard at it, and retries on a fresh front
    /// if any shard advanced mid-read (see [`crate::front`] for the
    /// argument and the progress guarantee; retries are counted in
    /// [`StoreStats::snapshot_retries`]).
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        if max < min {
            return A::identity();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        if first == last {
            return self.shards[first].range_agg(min, max);
        }
        loop {
            let fronts = self.settle_touched(first, last);
            match self.try_agg_at(first, last, min, max, &fronts) {
                Ok(acc) => return acc,
                Err(advanced) => self.note_snapshot_retry(advanced),
            }
            std::hint::spin_loop();
        }
    }

    /// All entries with keys in `[min, max]`, in ascending key order, read
    /// **at one global front** — linearizable.
    ///
    /// Range partitioning makes the global order free: per-shard results
    /// are already sorted and shard ranges are disjoint and ascending. The
    /// front discipline is the same as [`ShardedStore::range_agg`].
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if max < min {
            return Vec::new();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        if first == last {
            return self.shards[first].collect_range(min, max);
        }
        loop {
            let fronts = self.settle_touched(first, last);
            match self.try_collect_at(first, last, min, max, &fronts) {
                Ok(out) => return out,
                Err(advanced) => self.note_snapshot_retry(advanced),
            }
            std::hint::spin_loop();
        }
    }

    /// Aggregate of all entries with keys in `[min, max]` assembled the
    /// **pre-front way**: one linearizable query per overlapped shard, each
    /// taken at a (slightly) different instant, with no global cut. Not a
    /// single atomic snapshot — kept as the explicitly named baseline for
    /// benchmarks and for callers that prefer zero retry cost over
    /// cross-shard atomicity.
    pub fn stitched_range_agg(&self, min: K, max: K) -> A::Agg {
        if max < min {
            return A::identity();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let mut acc = A::identity();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            acc = A::combine(&acc, &self.shards[i].range_agg(lo, max));
        }
        acc
    }

    /// [`ShardedStore::collect_range`] assembled the pre-front way (see
    /// [`ShardedStore::stitched_range_agg`]).
    pub fn stitched_collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if max < min {
            return Vec::new();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let mut out = Vec::new();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            out.extend(self.shards[i].collect_range(lo, max));
        }
        out
    }

    // -- the global front --------------------------------------------------

    /// Acquires a [`GlobalFront`]: one settled watermark per shard (helping
    /// any mid-linearization update to completion — lock-free), published
    /// into the monotone front table. Reads against the front succeed while
    /// [`ShardedStore::front_valid`] holds; see [`crate::front`].
    pub fn acquire_front(&self) -> GlobalFront {
        self.front.count_acquire();
        GlobalFront::new(
            (0..self.shards.len())
                .map(|i| {
                    let f = self.shards[i].settle_front().get();
                    self.front.publish(i, f);
                    f
                })
                .collect(),
        )
    }

    /// `true` while no shard has begun linearizing an update past its
    /// watermark in `front` — i.e. while the cut still describes the
    /// store's current state.
    pub fn front_valid(&self, front: &GlobalFront) -> bool {
        front.num_shards() == self.shards.len()
            && self
                .shards
                .iter()
                .enumerate()
                .all(|(i, shard)| shard.front_unchanged(Timestamp(front.of(i))))
    }

    /// [`ShardedStore::range_agg`] **at** an acquired front: the aggregate
    /// of the store's state at exactly that cut, or `None` once a *touched*
    /// shard advanced past it (acquire a fresh front and retry).
    pub fn range_agg_at_front(&self, front: &GlobalFront, min: K, max: K) -> Option<A::Agg> {
        if max < min {
            return Some(A::identity());
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let touched: Vec<u64> = (first..=last).map(|i| front.of(i)).collect();
        self.try_agg_at(first, last, min, max, &touched).ok()
    }

    /// [`ShardedStore::collect_range`] at an acquired front; `None` once a
    /// touched shard advanced past it.
    pub fn collect_range_at_front(
        &self,
        front: &GlobalFront,
        min: K,
        max: K,
    ) -> Option<Vec<(K, V)>> {
        if max < min {
            return Some(Vec::new());
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let touched: Vec<u64> = (first..=last).map(|i| front.of(i)).collect();
        self.try_collect_at(first, last, min, max, &touched).ok()
    }

    /// The monotone **published** front: the highest watermark ever settled
    /// and published per shard (a lower bound on each shard's linearized
    /// prefix; diagnostics and tests).
    pub fn shard_fronts(&self) -> Vec<u64> {
        self.front.published()
    }

    /// Snapshot-front counters (acquisitions, retries).
    pub fn store_stats(&self) -> StoreStats {
        self.front.stats()
    }

    /// Sum of the per-shard settled fronts — the store's *scalar* front for
    /// the blanket [`wft_api::SnapshotRead`] (see the `TimestampFront` impl
    /// in `crate::api`). Monotone, and unchanged iff no shard advanced.
    pub(crate) fn settled_front_sum(&self) -> u64 {
        self.front.count_acquire();
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let f = shard.settle_front().get();
                self.front.publish(i, f);
                f
            })
            .sum()
    }

    /// Sum of the per-shard advertised watermarks.
    pub(crate) fn advertised_sum(&self) -> u64 {
        self.shards.iter().map(|s| s.advertised_ts().get()).sum()
    }

    /// Sum of the per-shard resolved watermarks.
    pub(crate) fn resolved_sum(&self) -> u64 {
        self.shards.iter().map(|s| s.stable_ts().get()).sum()
    }

    /// Settles **every** shard's front (the acquire phase of a streaming
    /// scan cursor, shaped like [`ShardedStore::acquire_front`]);
    /// `result[i]` is shard `i`'s watermark.
    pub(crate) fn settle_all(&self) -> Vec<u64> {
        self.settle_touched(0, self.shards.len() - 1)
    }

    /// Settles the fronts of shards `first..=last` (acquire phase of one
    /// cross-shard read attempt, and of a scan cursor's suffix resume);
    /// `result[i - first]` is shard `i`'s watermark.
    pub(crate) fn settle_touched(&self, first: usize, last: usize) -> Vec<u64> {
        self.front.count_acquire();
        (first..=last)
            .map(|i| {
                let f = self.shards[i].settle_front().get();
                self.front.publish(i, f);
                f
            })
            .collect()
    }

    /// One front-validated aggregate attempt over shards `first..=last`
    /// (`fronts[i - first]` is shard `i`'s watermark). `Err(i)` as soon as
    /// touched shard `i` advanced past its front — the attribution feeds the
    /// retry loops' [`ShardedStore::note_snapshot_retry`] trace events.
    fn try_agg_at(
        &self,
        first: usize,
        last: usize,
        min: K,
        max: K,
        fronts: &[u64],
    ) -> Result<A::Agg, usize> {
        let mut acc = A::identity();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            let shard_agg = self.shards[i]
                .range_agg_at_front(lo, max, Timestamp(fronts[i - first]))
                .ok_or(i)?;
            acc = A::combine(&acc, &shard_agg);
        }
        Ok(acc)
    }

    /// One front-validated collect attempt (see
    /// [`ShardedStore::try_agg_at`]).
    fn try_collect_at(
        &self,
        first: usize,
        last: usize,
        min: K,
        max: K,
        fronts: &[u64],
    ) -> Result<Vec<(K, V)>, usize> {
        let mut out = Vec::new();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            out.extend(
                self.shards[i]
                    .collect_range_at_front(lo, max, Timestamp(fronts[i - first]))
                    .ok_or(i)?,
            );
        }
        Ok(out)
    }

    /// Records one discarded cross-shard read attempt: bumps
    /// [`StoreStats::snapshot_retries`] and traces **which shard** expired
    /// the cut ([`wft_obs::TraceKind::SnapshotRetry`]) — the per-shard
    /// attribution the scalar counter cannot carry.
    pub(crate) fn note_snapshot_retry(&self, shard: usize) {
        self.front.count_retry();
        wft_obs::trace::emit(wft_obs::TraceKind::SnapshotRetry, shard_trace_arg(shard));
    }

    // -- two-phase batches ------------------------------------------------

    /// Phase one: validates `batch` and groups it by destination shard
    /// **without mutating any shard**.
    ///
    /// Validation rejects batches that exceed
    /// [`StoreConfig::max_batch_ops`] and batches addressing any key twice
    /// (per-shard groups execute concurrently, so a batch-internal order
    /// between same-key operations cannot be guaranteed).
    pub fn plan_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<BatchPlan<K, V>, BatchError<K>> {
        wft_api::validate_batch(&batch, self.config.max_batch_ops)?;
        let mut groups: Vec<Vec<(usize, StoreOp<K, V>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let len = batch.len();
        for (index, op) in batch.into_iter().enumerate() {
            let shard = self.shard_of(op.key());
            groups[shard].push((index, op));
        }
        Ok(BatchPlan { groups, len })
    }

    /// Phase two: executes a validated plan, fanning the per-shard groups
    /// out across worker threads when the batch is large enough to pay for
    /// them ([`StoreConfig::parallel_threshold`]).
    ///
    /// Returns one [`OpOutcome`] per submitted operation, in submission
    /// order.
    pub fn execute_plan(&self, plan: BatchPlan<K, V>) -> Vec<OpOutcome<V>> {
        let mut results: Vec<Option<OpOutcome<V>>> = (0..plan.len).map(|_| None).collect();
        let parallel = plan.len >= self.config.parallel_threshold
            && plan.shards_touched() >= 2
            && (hardware_threads() > 1 || self.config.parallel_threshold == 0);
        if parallel {
            let outcomes: Vec<Vec<(usize, OpOutcome<V>)>> = thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .groups
                    .into_iter()
                    .enumerate()
                    .filter(|(_, group)| !group.is_empty())
                    .map(|(shard_idx, group)| {
                        let shard = &self.shards[shard_idx];
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|(index, op)| (index, apply_one(shard, op)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (index, outcome) in outcomes.into_iter().flatten() {
                results[index] = Some(outcome);
            }
        } else {
            for (shard_idx, group) in plan.groups.into_iter().enumerate() {
                let shard = &self.shards[shard_idx];
                for (index, op) in group {
                    results[index] = Some(apply_one(shard, op));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch index receives an outcome"))
            .collect()
    }

    /// Validates and executes `batch`: [`ShardedStore::plan_batch`] followed
    /// by [`ShardedStore::execute_plan`]. On `Err` no shard was mutated.
    pub fn apply_batch(
        &self,
        batch: Vec<StoreOp<K, V>>,
    ) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        let plan = self.plan_batch(batch)?;
        Ok(self.execute_plan(plan))
    }

    // -- introspection ----------------------------------------------------

    /// Per-shard key counts, for balance inspection.
    pub fn shard_lens(&self) -> Vec<u64> {
        self.shards.iter().map(WaitFreeTree::len).collect()
    }

    /// Per-shard operational statistics.
    pub fn shard_stats(&self) -> Vec<TreeStats> {
        self.shards.iter().map(WaitFreeTree::stats).collect()
    }

    /// The per-shard [`TreeStats`] summed into one store-wide view: total
    /// descriptor traffic, fast-path hit/retry counts and rebuild work
    /// across every shard. The per-shard breakdown remains available as
    /// [`ShardedStore::shard_stats`].
    pub fn tree_stats(&self) -> TreeStats {
        let mut total = TreeStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.stats());
        }
        total
    }

    /// All entries in ascending key order. Callers must guarantee
    /// quiescence (no concurrent updates), like the underlying tree method.
    pub fn entries_quiescent(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.entries_quiescent());
        }
        out
    }

    /// Panics unless every shard's internal invariants hold **and** every
    /// key lives in the shard that owns its range.
    pub fn check_invariants(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants();
            for (key, _) in shard.entries_quiescent() {
                assert_eq!(
                    self.shard_of(&key),
                    i,
                    "key {key:?} stored in shard {i} but routed to {}",
                    self.shard_of(&key)
                );
            }
        }
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Default for ShardedStore<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> ShardedStore<K, V, Size> {
    /// Number of keys in `[min, max]`, the paper's headline aggregate,
    /// answered per overlapped shard at one global front and summed —
    /// linearizable (see [`ShardedStore::range_agg`]).
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }

    /// [`ShardedStore::count`] assembled the pre-front way (not a single
    /// atomic snapshot; see [`ShardedStore::stitched_range_agg`]).
    pub fn stitched_count(&self, min: K, max: K) -> u64 {
        self.stitched_range_agg(min, max)
    }
}

impl<K: Key, V: Value, B: Augmentation<K, V>> ShardedStore<K, V, wft_seq::Pair<Size, B>> {
    /// Number of keys in `[min, max]` for stores that track the subtree
    /// size alongside another aggregate (`Pair<Size, B>`); answered at one
    /// global front like [`ShardedStore::range_agg`].
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max).0
    }

    /// The pre-front (stitched) count for `Pair<Size, B>` stores.
    pub fn stitched_count(&self, min: K, max: K) -> u64 {
        self.stitched_range_agg(min, max).0
    }
}

/// Squeezes a shard index into a trace event's 16-bit argument.
/// [`wft_obs::NO_SHARD`] means "no shard attributed", so indices at or past
/// it (never seen in practice — stores have a handful of shards) saturate
/// one below.
pub(crate) fn shard_trace_arg(shard: usize) -> u16 {
    u16::try_from(shard)
        .unwrap_or(wft_obs::NO_SHARD - 1)
        .min(wft_obs::NO_SHARD - 1)
}

/// Cached `available_parallelism`: on a single-core host the fan-out path
/// can only add spawn overhead, so batches always run on the caller.
fn hardware_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn apply_one<K: Key, V: Value, A: Augmentation<K, V>>(
    shard: &WaitFreeTree<K, V, A>,
    op: StoreOp<K, V>,
) -> OpOutcome<V> {
    match op {
        StoreOp::Insert { key, value } => OpOutcome::Inserted(shard.insert(key, value)),
        StoreOp::InsertOrReplace { key, value } => {
            OpOutcome::Replaced(shard.insert_or_replace(key, value))
        }
        StoreOp::Remove { key } => OpOutcome::Removed(shard.remove(&key)),
        StoreOp::RemoveEntry { key } => OpOutcome::RemovedEntry(shard.remove_entry(&key)),
    }
}

/// Picks up to `shards - 1` strictly increasing split keys from a sample of
/// the key distribution: the equi-depth quantiles of the sorted, deduplicated
/// sample. With fewer distinct keys than shards the result simply yields
/// fewer (possibly zero) splits — a store never has more shards than it can
/// fill meaningfully.
pub fn split_keys_from_sample<K: Key>(sample: &mut Vec<K>, shards: usize) -> Vec<K> {
    sample.sort_unstable();
    sample.dedup();
    equi_depth_split_keys(sample, shards, |k| *k)
}

/// [`split_keys_from_sample`] over an already sorted, deduplicated slice
/// (how `from_entries` calls it, sparing the second sort).
fn equi_depth_split_keys<T, K: Key>(
    sorted_unique: &[T],
    shards: usize,
    key_of: impl Fn(&T) -> K,
) -> Vec<K> {
    assert!(shards > 0, "a store needs at least one shard");
    if shards == 1 || sorted_unique.len() < shards {
        return Vec::new();
    }
    let mut bounds = Vec::with_capacity(shards - 1);
    for i in 1..shards {
        // Lower boundary of the i-th equi-depth bucket.
        let idx = i * sorted_unique.len() / shards;
        bounds.push(key_of(&sorted_unique[idx]));
    }
    bounds.dedup();
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BatchError, OpOutcome, StoreConfig, StoreOp};
    use wft_seq::{Pair, Sum};

    fn store_with_shards(shards: usize, keys: i64) -> ShardedStore<i64> {
        ShardedStore::from_entries((0..keys).map(|k| (k, ())), shards)
    }

    #[test]
    fn routing_respects_boundaries() {
        let store: ShardedStore<i64> = ShardedStore::with_boundaries(vec![0, 100]);
        assert_eq!(store.num_shards(), 3);
        assert_eq!(store.shard_of(&-5), 0);
        assert_eq!(store.shard_of(&0), 1);
        assert_eq!(store.shard_of(&99), 1);
        assert_eq!(store.shard_of(&100), 2);
        assert_eq!(store.shard_of(&i64::MAX), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_are_rejected() {
        let _: ShardedStore<i64> = ShardedStore::with_boundaries(vec![10, 10]);
    }

    #[test]
    fn from_entries_balances_shards() {
        let store = store_with_shards(4, 1000);
        assert_eq!(store.num_shards(), 4);
        assert_eq!(store.len(), 1000);
        let lens = store.shard_lens();
        assert!(
            lens.iter().all(|&l| l == 250),
            "uniform keys must split evenly, got {lens:?}"
        );
        store.check_invariants();
    }

    #[test]
    fn more_shards_than_keys_degrades_gracefully() {
        let store = ShardedStore::<i64>::from_entries((0..3).map(|k| (k, ())), 8);
        assert!(store.num_shards() <= 4);
        assert_eq!(store.len(), 3);
        store.check_invariants();
    }

    #[test]
    fn point_ops_route_and_report() {
        let store = store_with_shards(3, 300);
        assert!(!store.insert(5, ()));
        assert!(store.insert(1000, ()));
        assert!(store.contains(&1000));
        assert!(store.remove(&1000));
        assert!(!store.remove(&1000));
        assert_eq!(store.len(), 300);
    }

    #[test]
    fn cross_shard_count_splits_at_boundaries() {
        let store = store_with_shards(4, 1000);
        assert_eq!(store.count(0, 999), 1000);
        assert_eq!(store.count(100, 899), 800);
        assert_eq!(store.count(250, 250), 1);
        assert_eq!(store.count(600, 599), 0, "inverted range is empty");
        assert_eq!(store.count(-100, -1), 0);
    }

    #[test]
    fn cross_shard_collect_is_globally_sorted() {
        let store = store_with_shards(5, 500);
        let collected = store.collect_range(123, 456);
        let keys: Vec<i64> = collected.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (123..=456).collect::<Vec<_>>());
    }

    #[test]
    fn range_agg_combines_shard_aggregates() {
        let store: ShardedStore<i64, i64, Pair<Size, Sum>> =
            ShardedStore::from_entries((0..100).map(|k| (k, k)), 4);
        let (count, sum) = store.range_agg(10, 19);
        assert_eq!(count, 10);
        assert_eq!(sum, (10..=19).sum::<i64>() as i128);
    }

    #[test]
    fn batch_is_rejected_before_any_mutation() {
        let store = store_with_shards(4, 100);
        let batch = vec![
            StoreOp::Insert {
                key: 500,
                value: (),
            },
            StoreOp::Remove { key: 20 },
            StoreOp::Insert {
                key: 500,
                value: (),
            },
        ];
        let err = store.apply_batch(batch).unwrap_err();
        assert_eq!(err, BatchError::DuplicateKey { key: 500 });
        // Phase one failed, so neither the insert nor the remove happened.
        assert!(!store.contains(&500));
        assert!(store.contains(&20));
        assert_eq!(store.len(), 100);
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let config = StoreConfig {
            max_batch_ops: 2,
            ..StoreConfig::default()
        };
        let store: ShardedStore<i64> = ShardedStore::with_boundaries_and_config(vec![50], config);
        let batch = (0..3)
            .map(|k| StoreOp::Insert { key: k, value: () })
            .collect();
        assert_eq!(
            store.apply_batch(batch).unwrap_err(),
            BatchError::TooLarge { len: 3, max: 2 }
        );
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn batch_outcomes_align_with_submission_order() {
        let store = store_with_shards(3, 10);
        let outcomes = store
            .apply_batch(vec![
                StoreOp::Insert {
                    key: 100,
                    value: (),
                },
                StoreOp::Remove { key: 3 },
                StoreOp::Insert { key: 4, value: () },
                StoreOp::RemoveEntry { key: 999 },
            ])
            .unwrap();
        assert_eq!(
            outcomes,
            vec![
                OpOutcome::Inserted(true),
                OpOutcome::Removed(true),
                OpOutcome::Inserted(false),
                OpOutcome::RemovedEntry(None),
            ]
        );
    }

    #[test]
    fn large_batches_take_the_parallel_path() {
        let config = StoreConfig {
            // 0 forces the cross-shard fan-out even on single-core hosts.
            parallel_threshold: 0,
            ..StoreConfig::default()
        };
        let store: ShardedStore<i64, i64> =
            ShardedStore::with_boundaries_and_config(vec![100, 200, 300], config);
        let batch: Vec<StoreOp<i64, i64>> = (0..400)
            .map(|k| StoreOp::Insert {
                key: k,
                value: k * 2,
            })
            .collect();
        let plan = store.plan_batch(batch).unwrap();
        assert_eq!(plan.shards_touched(), 4);
        let outcomes = store.execute_plan(plan);
        assert!(outcomes.iter().all(|o| *o == OpOutcome::Inserted(true)));
        assert_eq!(store.len(), 400);
        assert_eq!(store.get(&123), Some(246));
        store.check_invariants();
    }

    #[test]
    fn insert_or_replace_reports_previous_value() {
        let store: ShardedStore<i64, i64> = ShardedStore::with_boundaries(vec![10]);
        assert_eq!(store.insert_or_replace(5, 50), None);
        assert_eq!(store.insert_or_replace(5, 51), Some(50));
        assert_eq!(store.get(&5), Some(51));
        let outcomes = store
            .apply_batch(vec![StoreOp::InsertOrReplace { key: 5, value: 52 }])
            .unwrap();
        assert_eq!(outcomes, vec![OpOutcome::Replaced(Some(51))]);
        assert_eq!(store.get(&5), Some(52));
    }

    #[test]
    fn global_front_validates_and_expires() {
        let store = store_with_shards(4, 1000);
        let front = store.acquire_front();
        assert_eq!(front.num_shards(), 4);
        assert!(store.front_valid(&front));
        assert_eq!(store.range_agg_at_front(&front, 0, 999), Some(1000));
        assert_eq!(
            store
                .collect_range_at_front(&front, 100, 899)
                .map(|v| v.len()),
            Some(800)
        );
        // An update to any touched shard expires the cut …
        store.insert(5000, ());
        assert!(!store.front_valid(&front));
        assert_eq!(store.range_agg_at_front(&front, 0, 5000), None);
        // … but a range that avoids the advanced shard still validates.
        let narrow_first = store.shard_of(&0);
        let advanced = store.shard_of(&5000);
        assert_ne!(narrow_first, advanced);
        let hi = store.boundaries()[0] - 1;
        assert!(store.range_agg_at_front(&front, 0, hi).is_some());
        // Inverted ranges answer the identity without touching shards.
        assert_eq!(store.range_agg_at_front(&front, 9, 3), Some(0));
        assert_eq!(store.collect_range_at_front(&front, 9, 3), Some(vec![]));
    }

    #[test]
    fn published_fronts_and_counters_advance() {
        let store = store_with_shards(4, 400);
        assert_eq!(store.store_stats().snapshot_acquires, 0);
        let before = store.shard_fronts();
        assert_eq!(before, vec![0; 4], "prefill does not occupy timestamps");
        store.insert(0, ()); // failed insert still linearizes on shard 0
        store.count(0, 399); // cross-shard: acquires a front
        let stats = store.store_stats();
        assert!(stats.snapshot_acquires >= 1);
        let after = store.shard_fronts();
        assert!(
            after[0] >= 1,
            "shard 0's published front advanced: {after:?}"
        );
    }

    #[test]
    fn single_shard_ranges_bypass_the_front() {
        let store = store_with_shards(4, 400);
        let hi = store.boundaries()[0] - 1;
        assert_eq!(store.count(0, hi), hi as u64 + 1);
        assert_eq!(
            store.store_stats().snapshot_acquires,
            0,
            "a single-shard range needs no global front"
        );
    }

    #[test]
    fn stitched_reads_match_on_a_quiescent_store() {
        let store = store_with_shards(4, 500);
        assert_eq!(store.stitched_count(10, 490), store.count(10, 490));
        assert_eq!(
            store.stitched_collect_range(10, 490),
            store.collect_range(10, 490)
        );
        assert_eq!(store.stitched_count(9, 3), 0);
    }

    #[test]
    fn split_keys_pick_equi_depth_quantiles() {
        let mut sample: Vec<i64> = (0..100).collect();
        assert_eq!(split_keys_from_sample(&mut sample, 4), vec![25, 50, 75]);
        let mut skewed: Vec<i64> = (0..90).map(|_| 7).chain(90..100).collect();
        let bounds = split_keys_from_sample(&mut skewed, 4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let mut tiny: Vec<i64> = vec![1, 2];
        assert_eq!(split_keys_from_sample(&mut tiny, 4), Vec::<i64>::new());
    }
}
