//! The range-partitioned store: a router over independent [`WaitFreeTree`]
//! shards.
//!
//! # Partitioning
//!
//! A store with split keys `b_0 < b_1 < … < b_{S-2}` owns `S` shards with
//! key ranges
//!
//! ```text
//! shard 0: (-∞, b_0)    shard i: [b_{i-1}, b_i)    shard S-1: [b_{S-2}, ∞)
//! ```
//!
//! Routing is a binary search over the split keys — **not** a hash: range
//! partitioning keeps each aggregate range query confined to the shards its
//! interval actually overlaps, so `count`/`range_agg` stay `O(Σ log n_i)`
//! over the touched shards and `collect_range` concatenates per-shard
//! results already in global key order. This is the contention-adapting
//! insight (Winblad et al.) applied statically: disjoint keyspace slices
//! mean disjoint root queues, so writers to different slices never contend
//! on one tree root.
//!
//! # Consistency
//!
//! Every *single-shard* operation (every point op, and every aggregate whose
//! range falls inside one shard) inherits the linearizability of the
//! underlying `WaitFreeTree`. A *cross-shard* aggregate is executed **at a
//! global timestamp front** (see [`crate::front`]): one settled per-shard
//! watermark cut is acquired, every touched shard is read at its front with
//! front-validated entry points, and the attempt retries on a fresh cut if
//! any shard advanced mid-read — so `count` / `range_agg` / `collect_range`
//! are linearizable across shards; `len()` takes the same discipline with a
//! **bounded** number of cut attempts, falling back to the stitched sum
//! under sustained contention (the pre-front
//! stitched behaviour remains available as
//! [`ShardedStore::stitched_range_agg`] /
//! [`ShardedStore::stitched_collect_range`] / [`ShardedStore::stitched_len`]).
//! Streaming reads take the same discipline shard-by-shard: the store's
//! [`wft_api::RangeScan`] cursor (see [`crate::scan`]) drains a range in
//! chunks at one cut.
//!
//! # Atomic batch commit
//!
//! Batches are all-or-nothing with respect to validation, and any batch
//! carrying more than one operation — or any transactional operation
//! ([`StoreOp::Patch`] / [`StoreOp::CompareAndSet`] / [`StoreOp::Get`]) —
//! commits **atomically**: [`ShardedStore::apply_batch`] applies it inside
//! a per-shard *commit window* (the commit gate on [`crate::front`]) that
//! excludes point operations and cut acquisitions on the touched shards,
//! then settles and publishes every touched shard's front before the
//! window is released. A validated cut reader therefore observes all of a
//! batch or none of it, never a half-applied prefix across shards — the
//! linearization argument lives in `DESIGN.md` ("Publish-at-front batch
//! commit"). Single-operation *classic* batches bypass the gate entirely
//! (one tree op is already atomic), and the old piecewise behaviour
//! remains available as [`ShardedStore::stitched_apply_batch`], matching
//! the other `stitched_*` baselines.

use std::thread;

use wft_core::{Timestamp, TreeStats, WaitFreeTree};
use wft_seq::{Augmentation, Key, Size, Value};

use crate::front::{FrontTable, GlobalFront, StoreStats};
use crate::op::{BatchError, OpOutcome, StoreConfig, StoreOp};

/// A range-partitioned, wait-free-sharded concurrent ordered map with
/// batched writes and cross-shard aggregate range queries.
pub struct ShardedStore<K: Key, V: Value = (), A: Augmentation<K, V> = Size> {
    pub(crate) shards: Vec<WaitFreeTree<K, V, A>>,
    /// `shards.len() - 1` strictly increasing split keys; `bounds[i]` is the
    /// first key owned by shard `i + 1`.
    pub(crate) bounds: Vec<K>,
    config: StoreConfig,
    /// Global-front bookkeeping: the monotone published front table and the
    /// snapshot counters (see [`crate::front`]).
    pub(crate) front: FrontTable,
}

/// The validated, shard-grouped form of a batch: the output of phase one.
///
/// Holding a plan proves the batch passed validation; executing it is
/// phase two. The plan borrows nothing from the store, so tests can assert
/// that a failed validation left every shard untouched.
pub struct BatchPlan<K: Key, V: Value> {
    /// One group per shard: `(original batch index, operation)`, in batch
    /// order (the grouping is stable).
    groups: Vec<Vec<(usize, StoreOp<K, V>)>>,
    len: usize,
}

impl<K: Key, V: Value> BatchPlan<K, V> {
    /// Number of operations in the planned batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the planned batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards the batch touches.
    pub fn shards_touched(&self) -> usize {
        self.groups.iter().filter(|g| !g.is_empty()).count()
    }

    /// Whether executing this plan requires the atomic commit gate:
    /// `true` for any multi-operation batch (cross-shard — or even
    /// same-shard multi-op — visibility must be all-or-nothing) and for
    /// any batch carrying a transactional operation (`Patch` /
    /// `CompareAndSet` / `Get` read current state, so their read-decide-
    /// write spans must exclude concurrent point writers). A single
    /// classic operation is already atomic as one tree op and bypasses
    /// the gate.
    pub fn needs_commit_gate(&self) -> bool {
        self.len > 1
            || self
                .groups
                .iter()
                .flatten()
                .any(|(_, op)| !op.is_physical())
    }

    /// Ascending indices of the shards the plan touches (the commit gate's
    /// required acquisition order).
    fn touched_shards(&self) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> ShardedStore<K, V, A> {
    /// A single-shard store (no split keys): behaves exactly like one
    /// `WaitFreeTree`, which makes it the natural baseline in sweeps.
    pub fn new() -> Self {
        Self::with_boundaries(Vec::new())
    }

    /// A store whose shard ranges are delimited by `bounds` (strictly
    /// increasing split keys; `bounds.len() + 1` shards).
    pub fn with_boundaries(bounds: Vec<K>) -> Self {
        Self::with_boundaries_and_config(bounds, StoreConfig::default())
    }

    /// [`ShardedStore::with_boundaries`] with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is not strictly increasing.
    pub fn with_boundaries_and_config(bounds: Vec<K>, config: StoreConfig) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let shards: Vec<WaitFreeTree<K, V, A>> = (0..=bounds.len())
            .map(|_| WaitFreeTree::with_config(config.tree))
            .collect();
        let front = FrontTable::new(shards.len());
        ShardedStore {
            shards,
            bounds,
            config,
            front,
        }
    }

    /// Builds a store over `entries` partitioned into (up to) `shards`
    /// balanced shards, with split keys chosen from the observed key
    /// distribution (equi-depth quantiles of the sorted key sample — see
    /// [`split_keys_from_sample`]).
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I, shards: usize) -> Self {
        Self::from_entries_with_config(entries, shards, StoreConfig::default())
    }

    /// [`ShardedStore::from_entries`] with explicit configuration.
    pub fn from_entries_with_config<I: IntoIterator<Item = (K, V)>>(
        entries: I,
        shards: usize,
        config: StoreConfig,
    ) -> Self {
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);

        let bounds = equi_depth_split_keys(&sorted, shards, |(k, _)| *k);

        // Feed each shard its contiguous slice through the tree's bulk
        // constructor instead of per-key inserts.
        let mut tree_shards = Vec::with_capacity(bounds.len() + 1);
        let mut rest = sorted.as_slice();
        for i in 0..=bounds.len() {
            let split = match bounds.get(i) {
                Some(bound) => rest.partition_point(|(k, _)| k < bound),
                None => rest.len(),
            };
            let (mine, tail) = rest.split_at(split);
            rest = tail;
            tree_shards.push(WaitFreeTree::from_entries_with_config(
                mine.iter().cloned(),
                config.tree,
            ));
        }
        let front = FrontTable::new(tree_shards.len());
        ShardedStore {
            shards: tree_shards,
            bounds,
            config,
            front,
        }
    }

    // -- routing ----------------------------------------------------------

    /// The index of the shard owning `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.bounds.partition_point(|b| b <= key)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The split keys delimiting the shard ranges.
    pub fn boundaries(&self) -> &[K] {
        &self.bounds
    }

    // -- point operations -------------------------------------------------

    /// Inserts `key → value`; returns `true` if the key was absent.
    pub fn insert(&self, key: K, value: V) -> bool {
        let shard = self.shard_of(&key);
        self.gated_write(shard, move || self.shards[shard].insert(key, value))
    }

    /// Inserts `key → value`, returning the value it replaced, if any.
    ///
    /// Atomic: delegates to the owning shard's
    /// [`WaitFreeTree::insert_or_replace`], which executes as a single
    /// `Replace` descriptor — there is no window in which a concurrent
    /// reader can observe the key absent.
    pub fn insert_or_replace(&self, key: K, value: V) -> Option<V> {
        let shard = self.shard_of(&key);
        self.gated_write(shard, move || {
            self.shards[shard].insert_or_replace(key, value)
        })
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        let shard = self.shard_of(key);
        self.gated_write(shard, || self.shards[shard].remove(key))
    }

    /// Removes `key` and returns its value, if any.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        let shard = self.shard_of(key);
        self.gated_write(shard, || self.shards[shard].remove_entry(key))
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let shard = self.shard_of(key);
        self.gated_read(shard, || self.shards[shard].contains(key))
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard_of(key);
        self.gated_read(shard, || self.shards[shard].get(key))
    }

    /// Atomic read-modify-write: stores `patch(current)` at `key` (`None`
    /// removes the key) and returns the value after the patch. Routed
    /// through the gated batch commit as a one-op transactional batch, so
    /// no concurrent point writer can slip between the read and the write
    /// (unlike the non-atomic [`wft_api::PointMap::patch`] default).
    pub fn patch(&self, key: K, patch: wft_api::PatchFn<V>) -> Option<V> {
        let outcomes = self
            .apply_batch(vec![StoreOp::Patch { key, patch }])
            .expect("a single-op batch always validates");
        match outcomes.into_iter().next() {
            Some(OpOutcome::Patched(after)) => after,
            other => unreachable!("a Patch op reports Patched, got {other:?}"),
        }
    }

    /// Atomically stores `value` at `key` iff the current value equals
    /// `expect` (`None` = "the key is absent"), reporting whether it
    /// applied. Routed through the gated batch commit like
    /// [`ShardedStore::patch`].
    pub fn compare_and_set(&self, key: K, expect: Option<V>, value: V) -> bool {
        let outcomes = self
            .apply_batch(vec![StoreOp::CompareAndSet { key, expect, value }])
            .expect("a single-op batch always validates");
        match outcomes.into_iter().next() {
            Some(OpOutcome::CompareSet(applied)) => applied,
            other => unreachable!("a CompareAndSet op reports CompareSet, got {other:?}"),
        }
    }

    /// Total number of keys, read **at one global front** when the front
    /// holds still long enough — linearizable in that case.
    ///
    /// Every shard's front is settled, every shard length is read, and the
    /// sum is returned only if no shard's advertised watermark moved in
    /// between (per-shard lengths are maintained at update linearization
    /// points, so an unchanged front pins them); otherwise the read retries
    /// on a fresh cut. The retry loop is **bounded**: under sustained
    /// multi-shard write traffic a validated cut may never materialise
    /// (each attempt is lock-free, not wait-free), so after
    /// [`LEN_CUT_ATTEMPTS`](Self::LEN_CUT_ATTEMPTS) expired cuts the read
    /// falls back to [`ShardedStore::stitched_len`] — still a sum of
    /// atomic per-shard lengths, just not one linearization point — and
    /// records the degradation in [`StoreStats::len_fallbacks`]. Callers
    /// polling a length on a hot path (metrics, balance probes) should
    /// call `stitched_len()` directly and skip the cut machinery entirely.
    /// Single-shard stores skip the front (one tree's `len` is already a
    /// single linearization point).
    pub fn len(&self) -> u64 {
        if self.shards.len() == 1 {
            return self.shards[0].len();
        }
        for _ in 0..Self::LEN_CUT_ATTEMPTS {
            let fronts = self.settle_all_stable();
            let sum: u64 = self.shards.iter().map(WaitFreeTree::len).sum();
            match self
                .shards
                .iter()
                .zip(&fronts)
                .position(|(shard, &front)| !shard.front_unchanged(Timestamp(front)))
            {
                None => return sum,
                Some(advanced) => self.note_snapshot_retry(advanced),
            }
            std::hint::spin_loop();
        }
        self.front.count_len_fallback();
        wft_obs::trace::emit(wft_obs::TraceKind::LenFallback, wft_obs::NO_SHARD);
        self.stitched_len()
    }

    /// How many settled cuts [`ShardedStore::len`] tries to validate
    /// before giving up on a single linearization point and answering with
    /// [`ShardedStore::stitched_len`] — bounds `len()`'s completion time
    /// under write traffic that expires every cut.
    pub const LEN_CUT_ATTEMPTS: usize = 32;

    /// Sum of the per-shard lengths with no global cut: each shard length
    /// is read atomically but the sum is not a single linearization point
    /// (the pre-front `len`, kept as the zero-cost baseline).
    pub fn stitched_len(&self) -> u64 {
        self.shards.iter().map(WaitFreeTree::len).sum()
    }

    /// `true` when every shard is empty, read through
    /// [`ShardedStore::len`] — so it inherits `len()`'s cut machinery: up
    /// to [`LEN_CUT_ATTEMPTS`](Self::LEN_CUT_ATTEMPTS) settle/validate
    /// rounds under multi-shard write traffic before the stitched
    /// fallback. Callers polling emptiness on a hot path should probe
    /// `stitched_len() == 0` instead and skip the cut.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // -- cross-shard aggregate queries (global timestamp front) -----------

    /// Aggregate of all entries with keys in `[min, max]`, combined across
    /// the overlapped shards **at one global front** — linearizable.
    ///
    /// The query interval is split at the shard boundaries: shard `i` in
    /// the overlap is asked for `[max(min, b_{i-1}), max]`, which its own
    /// augmented root answers in `O(log n_i)`. Shards outside
    /// `[shard_of(min), shard_of(max)]` are never touched. A range inside
    /// one shard is answered directly (the shard's own read is already
    /// linearizable); a multi-shard range acquires a settled per-shard
    /// front, reads every touched shard at it, and retries on a fresh front
    /// if any shard advanced mid-read (see [`crate::front`] for the
    /// argument and the progress guarantee; retries are counted in
    /// [`StoreStats::snapshot_retries`]).
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        if max < min {
            return A::identity();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        if first == last {
            // One shard's read is linearizable on its own, but it must not
            // land inside a commit window (a multi-op batch group on this
            // shard applies op by op) — the epoch sandwich excludes that.
            return self.gated_read(first, || self.shards[first].range_agg(min, max));
        }
        loop {
            let fronts = self.settle_touched_stable(first, last);
            match self.try_agg_at(first, last, min, max, &fronts) {
                Ok(acc) => return acc,
                Err(advanced) => self.note_snapshot_retry(advanced),
            }
            std::hint::spin_loop();
        }
    }

    /// All entries with keys in `[min, max]`, in ascending key order, read
    /// **at one global front** — linearizable.
    ///
    /// Range partitioning makes the global order free: per-shard results
    /// are already sorted and shard ranges are disjoint and ascending. The
    /// front discipline is the same as [`ShardedStore::range_agg`].
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if max < min {
            return Vec::new();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        if first == last {
            // Epoch-sandwiched for the same reason as `range_agg`'s
            // single-shard fast path.
            return self.gated_read(first, || self.shards[first].collect_range(min, max));
        }
        loop {
            let fronts = self.settle_touched_stable(first, last);
            match self.try_collect_at(first, last, min, max, &fronts) {
                Ok(out) => return out,
                Err(advanced) => self.note_snapshot_retry(advanced),
            }
            std::hint::spin_loop();
        }
    }

    /// Aggregate of all entries with keys in `[min, max]` assembled the
    /// **pre-front way**: one linearizable query per overlapped shard, each
    /// taken at a (slightly) different instant, with no global cut. Not a
    /// single atomic snapshot — kept as the explicitly named baseline for
    /// benchmarks and for callers that prefer zero retry cost over
    /// cross-shard atomicity.
    pub fn stitched_range_agg(&self, min: K, max: K) -> A::Agg {
        if max < min {
            return A::identity();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let mut acc = A::identity();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            acc = A::combine(&acc, &self.shards[i].range_agg(lo, max));
        }
        acc
    }

    /// [`ShardedStore::collect_range`] assembled the pre-front way (see
    /// [`ShardedStore::stitched_range_agg`]).
    pub fn stitched_collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if max < min {
            return Vec::new();
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let mut out = Vec::new();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            out.extend(self.shards[i].collect_range(lo, max));
        }
        out
    }

    // -- the global front --------------------------------------------------

    /// Acquires a [`GlobalFront`]: one settled watermark per shard (helping
    /// any mid-linearization update to completion — lock-free), published
    /// into the monotone front table. Reads against the front succeed while
    /// [`ShardedStore::front_valid`] holds; see [`crate::front`]. The
    /// acquisition is epoch-stable: it never lands inside a batch-commit
    /// window, so the cut cannot split an atomic batch.
    pub fn acquire_front(&self) -> GlobalFront {
        GlobalFront::new(self.settle_all_stable())
    }

    /// `true` while no shard has begun linearizing an update past its
    /// watermark in `front` — i.e. while the cut still describes the
    /// store's current state.
    pub fn front_valid(&self, front: &GlobalFront) -> bool {
        front.num_shards() == self.shards.len()
            && self
                .shards
                .iter()
                .enumerate()
                .all(|(i, shard)| shard.front_unchanged(Timestamp(front.of(i))))
    }

    /// [`ShardedStore::range_agg`] **at** an acquired front: the aggregate
    /// of the store's state at exactly that cut, or `None` once a *touched*
    /// shard advanced past it (acquire a fresh front and retry).
    pub fn range_agg_at_front(&self, front: &GlobalFront, min: K, max: K) -> Option<A::Agg> {
        if max < min {
            return Some(A::identity());
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let touched: Vec<u64> = (first..=last).map(|i| front.of(i)).collect();
        self.try_agg_at(first, last, min, max, &touched).ok()
    }

    /// [`ShardedStore::collect_range`] at an acquired front; `None` once a
    /// touched shard advanced past it.
    pub fn collect_range_at_front(
        &self,
        front: &GlobalFront,
        min: K,
        max: K,
    ) -> Option<Vec<(K, V)>> {
        if max < min {
            return Some(Vec::new());
        }
        let first = self.shard_of(&min);
        let last = self.shard_of(&max);
        let touched: Vec<u64> = (first..=last).map(|i| front.of(i)).collect();
        self.try_collect_at(first, last, min, max, &touched).ok()
    }

    /// The monotone **published** front: the highest watermark ever settled
    /// and published per shard (a lower bound on each shard's linearized
    /// prefix; diagnostics and tests).
    pub fn shard_fronts(&self) -> Vec<u64> {
        self.front.published()
    }

    /// Snapshot-front counters (acquisitions, retries).
    pub fn store_stats(&self) -> StoreStats {
        self.front.stats()
    }

    /// Sum of the per-shard settled fronts — the store's *scalar* front for
    /// the blanket [`wft_api::SnapshotRead`] (see the `TimestampFront` impl
    /// in `crate::api`). Monotone, and unchanged iff no shard advanced.
    /// Epoch-stable, so a scalar token is never minted mid-commit-window.
    pub(crate) fn settled_front_sum(&self) -> u64 {
        self.settle_all_stable().iter().sum()
    }

    /// Sum of the per-shard advertised watermarks.
    pub(crate) fn advertised_sum(&self) -> u64 {
        self.shards.iter().map(|s| s.advertised_ts().get()).sum()
    }

    /// Sum of the per-shard resolved watermarks.
    pub(crate) fn resolved_sum(&self) -> u64 {
        self.shards.iter().map(|s| s.stable_ts().get()).sum()
    }

    /// Settles the fronts of shards `first..=last` (acquire phase of one
    /// cross-shard read attempt, and of a scan cursor's suffix resume);
    /// `result[i - first]` is shard `i`'s watermark.
    ///
    /// **Raw**: takes no notice of the commit gate, so it may observe a
    /// batch-commit window in progress. Only the commit path itself (which
    /// owns its window) and the `*_stable` wrappers below may call it;
    /// every reader-facing acquisition goes through the stable variants.
    pub(crate) fn settle_touched(&self, first: usize, last: usize) -> Vec<u64> {
        self.front.count_acquire();
        (first..=last)
            .map(|i| {
                let f = self.shards[i].settle_front().get();
                self.front.publish(i, f);
                f
            })
            .collect()
    }

    /// [`ShardedStore::settle_all`] sandwiched in even commit epochs (see
    /// [`ShardedStore::settle_touched_stable`]).
    pub(crate) fn settle_all_stable(&self) -> Vec<u64> {
        self.settle_touched_stable(0, self.shards.len() - 1)
    }

    /// Settles the fronts of shards `first..=last` **outside any commit
    /// window**: the raw settle is sandwiched between matching even-epoch
    /// observations of every touched shard, so the returned cut can never
    /// have been acquired while an atomic batch was half-applied. Together
    /// with per-shard watermark validation this makes every cut read
    /// all-or-nothing with respect to gated batches: a batch's every
    /// mutation advances its shard's watermark inside the window, so a
    /// validated read over a cut acquired entirely before (after) the
    /// window sees none (all) of the batch — acquiring *during* the window
    /// was the only way to straddle it, and the sandwich excludes exactly
    /// that. Waits (bounded backoff) while a window is open on a touched
    /// shard, counting one [`StoreStats::commit_gate_waits`] per blocked
    /// call.
    pub(crate) fn settle_touched_stable(&self, first: usize, last: usize) -> Vec<u64> {
        let mut spins = 0u32;
        let mut waited = false;
        loop {
            let epochs: Option<Vec<u64>> =
                (first..=last).map(|i| self.front.epoch_open(i)).collect();
            if let Some(epochs) = epochs {
                let fronts = self.settle_touched(first, last);
                if (first..=last)
                    .zip(&epochs)
                    .all(|(i, &e)| self.front.epoch_is(i, e))
                {
                    return fronts;
                }
            }
            if !waited {
                waited = true;
                self.front.count_gate_wait();
                wft_obs::trace::emit(wft_obs::TraceKind::CommitGateWait, wft_obs::NO_SHARD);
            }
            crate::front::gate_backoff(&mut spins);
        }
    }

    // -- the commit gate (point-op side) ----------------------------------

    /// Runs one point mutation on `shard` under the commit gate: registers
    /// in the shard's writer count, verifies no commit window is open, and
    /// applies. Registration happens *before* the epoch check — the order
    /// that guarantees a committer's writer drain sees every writer that
    /// saw an open epoch (see [`crate::front`]'s gate invariant). A call
    /// that finds the window closed deregisters, backs off and retries,
    /// counting one [`StoreStats::commit_gate_waits`].
    pub(crate) fn gated_write<R>(&self, shard: usize, op: impl FnOnce() -> R) -> R {
        let mut op = Some(op);
        let mut spins = 0u32;
        let mut waited = false;
        loop {
            self.front.writer_enter(shard);
            if self.front.epoch_open(shard).is_some() {
                let out = (op.take().expect("the op runs exactly once"))();
                self.front.writer_exit(shard);
                return out;
            }
            self.front.writer_exit(shard);
            if !waited {
                waited = true;
                self.front.count_gate_wait();
                wft_obs::trace::emit(wft_obs::TraceKind::CommitGateWait, shard_trace_arg(shard));
            }
            crate::front::gate_backoff(&mut spins);
        }
    }

    /// Runs one point read on `shard` sandwiched in an even commit epoch:
    /// the read's result is returned only if no commit window opened on the
    /// shard across it, so a point read never observes a half-applied
    /// batch. (The underlying tree read is linearizable on its own; the
    /// sandwich only adds the batch-atomicity exclusion.)
    pub(crate) fn gated_read<R>(&self, shard: usize, read: impl Fn() -> R) -> R {
        let mut spins = 0u32;
        let mut waited = false;
        loop {
            if let Some(epoch) = self.front.epoch_open(shard) {
                let out = read();
                if self.front.epoch_is(shard, epoch) {
                    return out;
                }
            }
            if !waited {
                waited = true;
                self.front.count_gate_wait();
                wft_obs::trace::emit(wft_obs::TraceKind::CommitGateWait, shard_trace_arg(shard));
            }
            crate::front::gate_backoff(&mut spins);
        }
    }

    /// One front-validated aggregate attempt over shards `first..=last`
    /// (`fronts[i - first]` is shard `i`'s watermark). `Err(i)` as soon as
    /// touched shard `i` advanced past its front — the attribution feeds the
    /// retry loops' [`ShardedStore::note_snapshot_retry`] trace events.
    fn try_agg_at(
        &self,
        first: usize,
        last: usize,
        min: K,
        max: K,
        fronts: &[u64],
    ) -> Result<A::Agg, usize> {
        let mut acc = A::identity();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            let shard_agg = self.shards[i]
                .range_agg_at_front(lo, max, Timestamp(fronts[i - first]))
                .ok_or(i)?;
            acc = A::combine(&acc, &shard_agg);
        }
        Ok(acc)
    }

    /// One front-validated collect attempt (see
    /// [`ShardedStore::try_agg_at`]).
    fn try_collect_at(
        &self,
        first: usize,
        last: usize,
        min: K,
        max: K,
        fronts: &[u64],
    ) -> Result<Vec<(K, V)>, usize> {
        let mut out = Vec::new();
        for i in first..=last {
            let lo = if i == first { min } else { self.bounds[i - 1] };
            out.extend(
                self.shards[i]
                    .collect_range_at_front(lo, max, Timestamp(fronts[i - first]))
                    .ok_or(i)?,
            );
        }
        Ok(out)
    }

    /// Records one discarded cross-shard read attempt: bumps
    /// [`StoreStats::snapshot_retries`] and traces **which shard** expired
    /// the cut ([`wft_obs::TraceKind::SnapshotRetry`]) — the per-shard
    /// attribution the scalar counter cannot carry.
    pub(crate) fn note_snapshot_retry(&self, shard: usize) {
        self.front.count_retry();
        wft_obs::trace::emit(wft_obs::TraceKind::SnapshotRetry, shard_trace_arg(shard));
    }

    // -- two-phase batches ------------------------------------------------

    /// Phase one: validates `batch` and groups it by destination shard
    /// **without mutating any shard**.
    ///
    /// Validation rejects batches that exceed
    /// [`StoreConfig::max_batch_ops`] and batches addressing any key twice
    /// (per-shard groups execute concurrently, so a batch-internal order
    /// between same-key operations cannot be guaranteed).
    pub fn plan_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<BatchPlan<K, V>, BatchError<K>> {
        wft_api::validate_batch(&batch, self.config.max_batch_ops)?;
        let mut groups: Vec<Vec<(usize, StoreOp<K, V>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let len = batch.len();
        for (index, op) in batch.into_iter().enumerate() {
            let shard = self.shard_of(op.key());
            groups[shard].push((index, op));
        }
        Ok(BatchPlan { groups, len })
    }

    /// Phase two **without cross-shard atomicity**: executes a validated
    /// plan op by op, fanning the per-shard groups out across worker
    /// threads when the batch is large enough to pay for them
    /// ([`StoreConfig::parallel_threshold`]). Each operation individually
    /// respects the commit gate (so a piecewise execution can never
    /// corrupt a concurrent atomic commit's read-decide-write spans), but
    /// a concurrent reader may observe this batch half-applied —
    /// [`ShardedStore::apply_batch`] wraps the same executor in a commit
    /// window whenever the batch needs one.
    ///
    /// Returns one [`OpOutcome`] per submitted operation, in submission
    /// order. Transactional operations resolve against the state they find
    /// (same-shard groups run in batch order, so a `Get` observes earlier
    /// same-batch operations on its key — same key means same shard).
    pub fn execute_plan(&self, plan: BatchPlan<K, V>) -> Vec<OpOutcome<V>> {
        self.run_plan(plan, false)
    }

    /// The shared phase-two executor. `in_window == true` means the caller
    /// holds a commit window over every touched shard (the gated commit
    /// path) and ops apply raw; `false` routes every op through
    /// [`ShardedStore::gated_write`].
    fn run_plan(&self, plan: BatchPlan<K, V>, in_window: bool) -> Vec<OpOutcome<V>> {
        let mut results: Vec<Option<OpOutcome<V>>> = (0..plan.len).map(|_| None).collect();
        let parallel = plan.len >= self.config.parallel_threshold
            && plan.shards_touched() >= 2
            && (hardware_threads() > 1 || self.config.parallel_threshold == 0);
        if parallel {
            let outcomes: Vec<Vec<(usize, OpOutcome<V>)>> = thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .groups
                    .into_iter()
                    .enumerate()
                    .filter(|(_, group)| !group.is_empty())
                    .map(|(shard_idx, group)| {
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|(index, op)| {
                                    (index, self.apply_routed(shard_idx, op, in_window))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (index, outcome) in outcomes.into_iter().flatten() {
                results[index] = Some(outcome);
            }
        } else {
            for (shard_idx, group) in plan.groups.into_iter().enumerate() {
                for (index, op) in group {
                    results[index] = Some(self.apply_routed(shard_idx, op, in_window));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch index receives an outcome"))
            .collect()
    }

    /// Applies one planned op to its shard, raw inside a commit window and
    /// through the point-write gate outside one.
    fn apply_routed(&self, shard_idx: usize, op: StoreOp<K, V>, in_window: bool) -> OpOutcome<V> {
        if in_window {
            apply_one(&self.shards[shard_idx], op)
        } else {
            self.gated_write(shard_idx, move || apply_one(&self.shards[shard_idx], op))
        }
    }

    /// Executes a plan inside one atomic commit window: closes the commit
    /// gate over every touched shard (ascending order, waiting out
    /// in-flight point writers), applies the per-shard groups, settles and
    /// publishes the touched fronts, and releases the gate — at which
    /// point the whole batch becomes visible to cut readers at once. The
    /// guard releases the window even if an op panics, so waiters never
    /// deadlock on a poisoned commit.
    fn commit_plan(&self, plan: BatchPlan<K, V>) -> Vec<OpOutcome<V>> {
        let touched = plan.touched_shards();
        if touched.is_empty() {
            return Vec::new();
        }
        let guard = CommitGuard::begin(&self.front, touched);
        let outcomes = self.run_plan(plan, true);
        // Settle + publish every touched front *inside* the window: the
        // batch's effects sit below the published watermarks before any
        // reader can acquire a cut again, so the first post-release cut
        // already covers the whole batch.
        for &shard in &guard.touched {
            let f = self.shards[shard].settle_front().get();
            self.front.publish(shard, f);
        }
        let shards_touched = guard.touched.len();
        drop(guard);
        wft_obs::trace::emit(
            wft_obs::TraceKind::BatchCommit,
            shard_trace_arg(shards_touched),
        );
        outcomes
    }

    /// Validates and executes `batch`: [`ShardedStore::plan_batch`]
    /// followed by phase two. On `Err` no shard was mutated.
    ///
    /// A batch that needs atomicity ([`BatchPlan::needs_commit_gate`]:
    /// more than one operation, or any `Patch` / `CompareAndSet` / `Get`)
    /// commits through the publish-at-front commit window — concurrent
    /// cut readers see all of it or none of it. A single classic operation
    /// bypasses the gate (it is already atomic as one tree op), keeping
    /// the point-write-shaped fast path free of commit traffic.
    pub fn apply_batch(
        &self,
        batch: Vec<StoreOp<K, V>>,
    ) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        let plan = self.plan_batch(batch)?;
        Ok(if plan.needs_commit_gate() {
            self.commit_plan(plan)
        } else {
            self.execute_plan(plan)
        })
    }

    /// Validates and executes `batch` the pre-gate way: per-op gated
    /// application with **no** cross-shard commit window, so a concurrent
    /// reader may observe the batch half-applied across shards. Kept as
    /// the explicitly named baseline (like the other `stitched_*`
    /// methods) for benchmarks comparing the cost of atomicity.
    pub fn stitched_apply_batch(
        &self,
        batch: Vec<StoreOp<K, V>>,
    ) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        let plan = self.plan_batch(batch)?;
        Ok(self.execute_plan(plan))
    }

    // -- introspection ----------------------------------------------------

    /// Per-shard key counts, for balance inspection.
    pub fn shard_lens(&self) -> Vec<u64> {
        self.shards.iter().map(WaitFreeTree::len).collect()
    }

    /// Per-shard operational statistics.
    pub fn shard_stats(&self) -> Vec<TreeStats> {
        self.shards.iter().map(WaitFreeTree::stats).collect()
    }

    /// The per-shard [`TreeStats`] summed into one store-wide view: total
    /// descriptor traffic, fast-path hit/retry counts and rebuild work
    /// across every shard. The per-shard breakdown remains available as
    /// [`ShardedStore::shard_stats`].
    pub fn tree_stats(&self) -> TreeStats {
        let mut total = TreeStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.stats());
        }
        total
    }

    /// All entries in ascending key order. Callers must guarantee
    /// quiescence (no concurrent updates), like the underlying tree method.
    pub fn entries_quiescent(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.entries_quiescent());
        }
        out
    }

    /// Panics unless every shard's internal invariants hold **and** every
    /// key lives in the shard that owns its range.
    pub fn check_invariants(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants();
            for (key, _) in shard.entries_quiescent() {
                assert_eq!(
                    self.shard_of(&key),
                    i,
                    "key {key:?} stored in shard {i} but routed to {}",
                    self.shard_of(&key)
                );
            }
        }
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Default for ShardedStore<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> ShardedStore<K, V, Size> {
    /// Number of keys in `[min, max]`, the paper's headline aggregate,
    /// answered per overlapped shard at one global front and summed —
    /// linearizable (see [`ShardedStore::range_agg`]).
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }

    /// [`ShardedStore::count`] assembled the pre-front way (not a single
    /// atomic snapshot; see [`ShardedStore::stitched_range_agg`]).
    pub fn stitched_count(&self, min: K, max: K) -> u64 {
        self.stitched_range_agg(min, max)
    }
}

impl<K: Key, V: Value, B: Augmentation<K, V>> ShardedStore<K, V, wft_seq::Pair<Size, B>> {
    /// Number of keys in `[min, max]` for stores that track the subtree
    /// size alongside another aggregate (`Pair<Size, B>`); answered at one
    /// global front like [`ShardedStore::range_agg`].
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max).0
    }

    /// The pre-front (stitched) count for `Pair<Size, B>` stores.
    pub fn stitched_count(&self, min: K, max: K) -> u64 {
        self.stitched_range_agg(min, max).0
    }
}

/// Squeezes a shard index into a trace event's 16-bit argument.
/// [`wft_obs::NO_SHARD`] means "no shard attributed", so indices at or past
/// it (never seen in practice — stores have a handful of shards) saturate
/// one below.
pub(crate) fn shard_trace_arg(shard: usize) -> u16 {
    u16::try_from(shard)
        .unwrap_or(wft_obs::NO_SHARD - 1)
        .min(wft_obs::NO_SHARD - 1)
}

/// Cached `available_parallelism`: on a single-core host the fan-out path
/// can only add spawn overhead, so batches always run on the caller.
fn hardware_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// An open commit window over `touched` shards; dropping it releases the
/// window (also on unwind, so a panicking op cannot leave the gate closed
/// and deadlock every waiter).
struct CommitGuard<'a> {
    front: &'a FrontTable,
    touched: Vec<usize>,
}

impl<'a> CommitGuard<'a> {
    fn begin(front: &'a FrontTable, touched: Vec<usize>) -> Self {
        front.begin_commit(&touched);
        CommitGuard { front, touched }
    }
}

impl Drop for CommitGuard<'_> {
    fn drop(&mut self) {
        self.front.end_commit(&self.touched);
    }
}

fn apply_one<K: Key, V: Value, A: Augmentation<K, V>>(
    shard: &WaitFreeTree<K, V, A>,
    op: StoreOp<K, V>,
) -> OpOutcome<V> {
    match op {
        StoreOp::Insert { key, value } => OpOutcome::Inserted(shard.insert(key, value)),
        StoreOp::InsertOrReplace { key, value } => {
            OpOutcome::Replaced(shard.insert_or_replace(key, value))
        }
        StoreOp::Remove { key } => OpOutcome::Removed(shard.remove(&key)),
        StoreOp::RemoveEntry { key } => OpOutcome::RemovedEntry(shard.remove_entry(&key)),
        // Transactional ops: resolve against the shard's current value,
        // then apply the pinned physical effect. Inside a commit window the
        // read-decide-write span is exclusive; outside one the per-op gate
        // only excludes commit windows, which is exactly the piecewise
        // (`stitched`) contract.
        op => {
            let resolved = wft_api::resolve_op(&op, shard.get(op.key()));
            match resolved.physical {
                Some(StoreOp::InsertOrReplace { key, value }) => {
                    shard.insert_or_replace(key, value);
                }
                Some(StoreOp::Remove { key }) => {
                    shard.remove(&key);
                }
                Some(other) => unreachable!("resolve_op pins to upserts/removes, got {other:?}"),
                None => {}
            }
            resolved.outcome
        }
    }
}

/// Picks up to `shards - 1` strictly increasing split keys from a sample of
/// the key distribution: the equi-depth quantiles of the sorted, deduplicated
/// sample. With fewer distinct keys than shards the result simply yields
/// fewer (possibly zero) splits — a store never has more shards than it can
/// fill meaningfully.
pub fn split_keys_from_sample<K: Key>(sample: &mut Vec<K>, shards: usize) -> Vec<K> {
    sample.sort_unstable();
    sample.dedup();
    equi_depth_split_keys(sample, shards, |k| *k)
}

/// [`split_keys_from_sample`] over an already sorted, deduplicated slice
/// (how `from_entries` calls it, sparing the second sort).
fn equi_depth_split_keys<T, K: Key>(
    sorted_unique: &[T],
    shards: usize,
    key_of: impl Fn(&T) -> K,
) -> Vec<K> {
    assert!(shards > 0, "a store needs at least one shard");
    if shards == 1 || sorted_unique.len() < shards {
        return Vec::new();
    }
    let mut bounds = Vec::with_capacity(shards - 1);
    for i in 1..shards {
        // Lower boundary of the i-th equi-depth bucket.
        let idx = i * sorted_unique.len() / shards;
        bounds.push(key_of(&sorted_unique[idx]));
    }
    bounds.dedup();
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BatchError, OpOutcome, StoreConfig, StoreOp};
    use wft_seq::{Pair, Sum};

    fn store_with_shards(shards: usize, keys: i64) -> ShardedStore<i64> {
        ShardedStore::from_entries((0..keys).map(|k| (k, ())), shards)
    }

    #[test]
    fn routing_respects_boundaries() {
        let store: ShardedStore<i64> = ShardedStore::with_boundaries(vec![0, 100]);
        assert_eq!(store.num_shards(), 3);
        assert_eq!(store.shard_of(&-5), 0);
        assert_eq!(store.shard_of(&0), 1);
        assert_eq!(store.shard_of(&99), 1);
        assert_eq!(store.shard_of(&100), 2);
        assert_eq!(store.shard_of(&i64::MAX), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_are_rejected() {
        let _: ShardedStore<i64> = ShardedStore::with_boundaries(vec![10, 10]);
    }

    #[test]
    fn from_entries_balances_shards() {
        let store = store_with_shards(4, 1000);
        assert_eq!(store.num_shards(), 4);
        assert_eq!(store.len(), 1000);
        let lens = store.shard_lens();
        assert!(
            lens.iter().all(|&l| l == 250),
            "uniform keys must split evenly, got {lens:?}"
        );
        store.check_invariants();
    }

    #[test]
    fn more_shards_than_keys_degrades_gracefully() {
        let store = ShardedStore::<i64>::from_entries((0..3).map(|k| (k, ())), 8);
        assert!(store.num_shards() <= 4);
        assert_eq!(store.len(), 3);
        store.check_invariants();
    }

    #[test]
    fn point_ops_route_and_report() {
        let store = store_with_shards(3, 300);
        assert!(!store.insert(5, ()));
        assert!(store.insert(1000, ()));
        assert!(store.contains(&1000));
        assert!(store.remove(&1000));
        assert!(!store.remove(&1000));
        assert_eq!(store.len(), 300);
    }

    #[test]
    fn cross_shard_count_splits_at_boundaries() {
        let store = store_with_shards(4, 1000);
        assert_eq!(store.count(0, 999), 1000);
        assert_eq!(store.count(100, 899), 800);
        assert_eq!(store.count(250, 250), 1);
        assert_eq!(store.count(600, 599), 0, "inverted range is empty");
        assert_eq!(store.count(-100, -1), 0);
    }

    #[test]
    fn cross_shard_collect_is_globally_sorted() {
        let store = store_with_shards(5, 500);
        let collected = store.collect_range(123, 456);
        let keys: Vec<i64> = collected.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (123..=456).collect::<Vec<_>>());
    }

    #[test]
    fn range_agg_combines_shard_aggregates() {
        let store: ShardedStore<i64, i64, Pair<Size, Sum>> =
            ShardedStore::from_entries((0..100).map(|k| (k, k)), 4);
        let (count, sum) = store.range_agg(10, 19);
        assert_eq!(count, 10);
        assert_eq!(sum, (10..=19).sum::<i64>() as i128);
    }

    #[test]
    fn batch_is_rejected_before_any_mutation() {
        let store = store_with_shards(4, 100);
        let batch = vec![
            StoreOp::Insert {
                key: 500,
                value: (),
            },
            StoreOp::Remove { key: 20 },
            StoreOp::Insert {
                key: 500,
                value: (),
            },
        ];
        let err = store.apply_batch(batch).unwrap_err();
        assert_eq!(err, BatchError::DuplicateKey { key: 500 });
        // Phase one failed, so neither the insert nor the remove happened.
        assert!(!store.contains(&500));
        assert!(store.contains(&20));
        assert_eq!(store.len(), 100);
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let config = StoreConfig {
            max_batch_ops: 2,
            ..StoreConfig::default()
        };
        let store: ShardedStore<i64> = ShardedStore::with_boundaries_and_config(vec![50], config);
        let batch = (0..3)
            .map(|k| StoreOp::Insert { key: k, value: () })
            .collect();
        assert_eq!(
            store.apply_batch(batch).unwrap_err(),
            BatchError::TooLarge { len: 3, max: 2 }
        );
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn batch_outcomes_align_with_submission_order() {
        let store = store_with_shards(3, 10);
        let outcomes = store
            .apply_batch(vec![
                StoreOp::Insert {
                    key: 100,
                    value: (),
                },
                StoreOp::Remove { key: 3 },
                StoreOp::Insert { key: 4, value: () },
                StoreOp::RemoveEntry { key: 999 },
            ])
            .unwrap();
        assert_eq!(
            outcomes,
            vec![
                OpOutcome::Inserted(true),
                OpOutcome::Removed(true),
                OpOutcome::Inserted(false),
                OpOutcome::RemovedEntry(None),
            ]
        );
    }

    #[test]
    fn large_batches_take_the_parallel_path() {
        let config = StoreConfig {
            // 0 forces the cross-shard fan-out even on single-core hosts.
            parallel_threshold: 0,
            ..StoreConfig::default()
        };
        let store: ShardedStore<i64, i64> =
            ShardedStore::with_boundaries_and_config(vec![100, 200, 300], config);
        let batch: Vec<StoreOp<i64, i64>> = (0..400)
            .map(|k| StoreOp::Insert {
                key: k,
                value: k * 2,
            })
            .collect();
        let plan = store.plan_batch(batch).unwrap();
        assert_eq!(plan.shards_touched(), 4);
        let outcomes = store.execute_plan(plan);
        assert!(outcomes.iter().all(|o| *o == OpOutcome::Inserted(true)));
        assert_eq!(store.len(), 400);
        assert_eq!(store.get(&123), Some(246));
        store.check_invariants();
    }

    #[test]
    fn insert_or_replace_reports_previous_value() {
        let store: ShardedStore<i64, i64> = ShardedStore::with_boundaries(vec![10]);
        assert_eq!(store.insert_or_replace(5, 50), None);
        assert_eq!(store.insert_or_replace(5, 51), Some(50));
        assert_eq!(store.get(&5), Some(51));
        let outcomes = store
            .apply_batch(vec![StoreOp::InsertOrReplace { key: 5, value: 52 }])
            .unwrap();
        assert_eq!(outcomes, vec![OpOutcome::Replaced(Some(51))]);
        assert_eq!(store.get(&5), Some(52));
    }

    #[test]
    fn global_front_validates_and_expires() {
        let store = store_with_shards(4, 1000);
        let front = store.acquire_front();
        assert_eq!(front.num_shards(), 4);
        assert!(store.front_valid(&front));
        assert_eq!(store.range_agg_at_front(&front, 0, 999), Some(1000));
        assert_eq!(
            store
                .collect_range_at_front(&front, 100, 899)
                .map(|v| v.len()),
            Some(800)
        );
        // An update to any touched shard expires the cut …
        store.insert(5000, ());
        assert!(!store.front_valid(&front));
        assert_eq!(store.range_agg_at_front(&front, 0, 5000), None);
        // … but a range that avoids the advanced shard still validates.
        let narrow_first = store.shard_of(&0);
        let advanced = store.shard_of(&5000);
        assert_ne!(narrow_first, advanced);
        let hi = store.boundaries()[0] - 1;
        assert!(store.range_agg_at_front(&front, 0, hi).is_some());
        // Inverted ranges answer the identity without touching shards.
        assert_eq!(store.range_agg_at_front(&front, 9, 3), Some(0));
        assert_eq!(store.collect_range_at_front(&front, 9, 3), Some(vec![]));
    }

    #[test]
    fn published_fronts_and_counters_advance() {
        let store = store_with_shards(4, 400);
        assert_eq!(store.store_stats().snapshot_acquires, 0);
        let before = store.shard_fronts();
        assert_eq!(before, vec![0; 4], "prefill does not occupy timestamps");
        store.insert(0, ()); // failed insert still linearizes on shard 0
        store.count(0, 399); // cross-shard: acquires a front
        let stats = store.store_stats();
        assert!(stats.snapshot_acquires >= 1);
        let after = store.shard_fronts();
        assert!(
            after[0] >= 1,
            "shard 0's published front advanced: {after:?}"
        );
    }

    #[test]
    fn single_shard_ranges_bypass_the_front() {
        let store = store_with_shards(4, 400);
        let hi = store.boundaries()[0] - 1;
        assert_eq!(store.count(0, hi), hi as u64 + 1);
        assert_eq!(
            store.store_stats().snapshot_acquires,
            0,
            "a single-shard range needs no global front"
        );
    }

    #[test]
    fn stitched_reads_match_on_a_quiescent_store() {
        let store = store_with_shards(4, 500);
        assert_eq!(store.stitched_count(10, 490), store.count(10, 490));
        assert_eq!(
            store.stitched_collect_range(10, 490),
            store.collect_range(10, 490)
        );
        assert_eq!(store.stitched_count(9, 3), 0);
    }

    #[test]
    fn single_classic_ops_bypass_the_gate_and_batches_take_it() {
        let store = store_with_shards(4, 100);
        assert_eq!(store.store_stats().batch_commits, 0);
        store
            .apply_batch(vec![StoreOp::Insert {
                key: 500,
                value: (),
            }])
            .unwrap();
        assert_eq!(
            store.store_stats().batch_commits,
            0,
            "a lone classic op is already atomic and skips the commit gate"
        );
        store
            .apply_batch(vec![
                StoreOp::Insert {
                    key: 501,
                    value: (),
                },
                StoreOp::Remove { key: 3 },
            ])
            .unwrap();
        assert_eq!(store.store_stats().batch_commits, 1);
        // A lone transactional op also commits (its read-decide-write span
        // needs the writer drain).
        store.apply_batch(vec![StoreOp::Get { key: 501 }]).unwrap();
        assert_eq!(store.store_stats().batch_commits, 2);
    }

    #[test]
    fn transactional_batch_ops_resolve_against_batch_state() {
        let store: ShardedStore<i64, i64> = ShardedStore::with_boundaries(vec![100]);
        store.insert(5, 50);
        fn double_or_one(current: Option<i64>) -> Option<i64> {
            Some(current.map_or(1, |v| v * 2))
        }
        let outcomes = store
            .apply_batch(vec![
                StoreOp::Get { key: 5 },
                StoreOp::Patch {
                    key: 5,
                    patch: double_or_one,
                },
                // Same key, later in the batch: observes the patch (same
                // key means same shard, and same-shard groups run in
                // batch order).
                StoreOp::Get { key: 5 },
                StoreOp::CompareAndSet {
                    key: 200,
                    expect: None,
                    value: 7,
                },
                StoreOp::CompareAndSet {
                    key: 201,
                    expect: Some(9),
                    value: 8,
                },
            ])
            .unwrap();
        assert_eq!(
            outcomes,
            vec![
                OpOutcome::Got(Some(50)),
                OpOutcome::Patched(Some(100)),
                OpOutcome::Got(Some(100)),
                OpOutcome::CompareSet(true),
                OpOutcome::CompareSet(false),
            ]
        );
        assert_eq!(store.get(&5), Some(100));
        assert_eq!(store.get(&200), Some(7));
        assert_eq!(store.get(&201), None);
    }

    #[test]
    fn point_patch_and_compare_and_set_are_routed_through_the_gate() {
        let store: ShardedStore<i64, i64> = ShardedStore::with_boundaries(vec![10]);
        fn bump(current: Option<i64>) -> Option<i64> {
            Some(current.unwrap_or(0) + 1)
        }
        fn clear(_: Option<i64>) -> Option<i64> {
            None
        }
        assert_eq!(store.patch(5, bump), Some(1));
        assert_eq!(store.patch(5, bump), Some(2));
        assert!(store.compare_and_set(5, Some(2), 9));
        assert!(!store.compare_and_set(5, Some(2), 10));
        assert_eq!(store.get(&5), Some(9));
        assert_eq!(store.patch(5, clear), None);
        assert!(!store.contains(&5));
        assert!(store.store_stats().batch_commits >= 5);
    }

    #[test]
    fn gated_batches_are_atomic_under_a_concurrent_cut_reader() {
        // Two keys on two shards, always rewritten together to the same
        // round value by one atomic batch per round: a validated cut read
        // must never see the keys disagree.
        let store: ShardedStore<i64, i64> = ShardedStore::with_boundaries(vec![100]);
        store
            .apply_batch(vec![
                StoreOp::InsertOrReplace { key: 10, value: 0 },
                StoreOp::InsertOrReplace { key: 110, value: 0 },
            ])
            .unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|| {
                for round in 1..=2000i64 {
                    store
                        .apply_batch(vec![
                            StoreOp::InsertOrReplace {
                                key: 10,
                                value: round,
                            },
                            StoreOp::InsertOrReplace {
                                key: 110,
                                value: round,
                            },
                        ])
                        .unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let entries = store.collect_range(0, 200);
                assert_eq!(entries.len(), 2, "both keys always present");
                assert_eq!(
                    entries[0].1, entries[1].1,
                    "a cut read observed a half-applied batch: {entries:?}"
                );
            }
        });
        assert!(store.store_stats().batch_commits >= 2001);
    }

    #[test]
    fn split_keys_pick_equi_depth_quantiles() {
        let mut sample: Vec<i64> = (0..100).collect();
        assert_eq!(split_keys_from_sample(&mut sample, 4), vec![25, 50, 75]);
        let mut skewed: Vec<i64> = (0..90).map(|_| 7).chain(90..100).collect();
        let bounds = split_keys_from_sample(&mut skewed, 4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let mut tiny: Vec<i64> = vec![1, 2];
        assert_eq!(split_keys_from_sample(&mut tiny, 4), Vec::<i64>::new());
    }
}
